"""Unified job API: one typed :class:`JobSpec` + :func:`submit` facade.

The four flow producers of the ecosystem — HLS synthesis, the NXmap
backend flow, Eucalyptus characterization and the SEU campaigns (flat
and mega) — historically each grew their own entry-point signature,
JSON shape and exit-code convention.  This module is the single
construction path that replaced them:

* :class:`JobSpec` — a typed, canonicalizable description of one job
  (``kind``, ``params``, ``seed``) plus scheduling metadata (``tenant``,
  ``priority``).  ``spec.content_key()`` is the PR-4 content-addressed
  identity of the computation: two specs with equal kind/params/seed
  *are* the same job, which is what lets the service coalesce identical
  submissions from different tenants onto one in-flight computation.
* :func:`submit` — runs a spec through the registered *runner* for its
  kind and returns a :class:`JobResult` (itself Report-conforming),
  carrying the producer's report, a consolidated :class:`ExitCode` and
  the live artifact (HLS project, flow report, run list...).
* :class:`ExitCode` — the one documented exit-code enum.  The CLI
  returns these values; the service maps them onto HTTP statuses via
  :func:`http_status`.

Each producer's legacy entry point (``repro.hls.synthesize``,
``NXmapProject.run_all``, ``Eucalyptus.sweep``, ``Campaign.run``,
``MegaCampaign.run``) is now a thin shim that builds a ``JobSpec`` and
routes through :func:`submit`, passing its live objects (netlists,
campaign closures, component libraries) through the context's
``resources`` side-channel while their content fingerprints go into
``params`` so the content key stays honest.

Runners for new job kinds can be registered with :func:`register_kind`
(the service's test suite registers synthetic slow/failing kinds this
way).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .cache import CacheKeyError, FlowCache, canonicalize, content_key
from .telemetry import Tracer


class ApiError(Exception):
    """Job API misuse."""


class JobSpecError(ApiError):
    """A malformed or unprocessable job specification."""


# -- exit codes -------------------------------------------------------------


class ExitCode(IntEnum):
    """The consolidated process exit codes of every ``repro`` command.

    * ``OK`` — the job ran and its verdict is clean;
    * ``FAILURE`` — the job ran but the workload failed (campaign
      crashes, boot failure, lint findings at/above the gate);
    * ``USAGE`` — the invocation itself was invalid (unknown rule,
      missing cache for ``--resume``, malformed spec);
    * ``INSUFFICIENT_EVIDENCE`` — a statistics-gated campaign ended
      before reaching its confidence target (``seu --stop-ci``).

    The service maps the same enum onto HTTP statuses with
    :func:`http_status`, so a CLI caller and an HTTP client read the
    same verdict.
    """

    OK = 0
    FAILURE = 1
    USAGE = 2
    INSUFFICIENT_EVIDENCE = 4


#: ExitCode -> HTTP status served by the job server's report endpoint.
HTTP_STATUS_BY_EXIT: Dict[ExitCode, int] = {
    ExitCode.OK: 200,
    ExitCode.FAILURE: 422,
    ExitCode.USAGE: 400,
    ExitCode.INSUFFICIENT_EVIDENCE: 424,
}


def http_status(code: ExitCode) -> int:
    """The HTTP status the service serves for a job exit code."""
    return HTTP_STATUS_BY_EXIT.get(ExitCode(code), 500)


# -- the job spec -----------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One job submission: what to compute, plus scheduling metadata.

    ``kind`` selects the registered runner; ``params`` are the
    kind-specific inputs and must be canonicalizable (JSON scalars,
    lists, dicts, dataclasses — see :func:`repro.cache.canonicalize`);
    ``seed`` is the deterministic campaign/flow seed.  ``tenant`` and
    ``priority`` are *scheduling* metadata: they are deliberately
    excluded from :meth:`content_key`, which is exactly what makes
    identical submissions from different tenants coalesce onto one
    computation.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 13
    priority: int = 0
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise JobSpecError("spec.kind must be a non-empty string")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise JobSpecError("spec.tenant must be a non-empty string")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise JobSpecError("spec.seed must be an int")
        if not isinstance(self.priority, int) \
                or isinstance(self.priority, bool):
            raise JobSpecError("spec.priority must be an int")
        try:
            object.__setattr__(self, "params",
                               canonicalize(dict(self.params)))
        except (CacheKeyError, TypeError, ValueError) as error:
            raise JobSpecError(f"spec.params not canonicalizable: {error}")

    def content_key(self) -> str:
        """Content-addressed identity of this computation.

        Covers kind, params and seed — everything that determines the
        result — and nothing about who asked or how urgently.
        """
        return content_key("job", {"kind": self.kind,
                                   "params": self.params,
                                   "seed": self.seed})

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params,
                "seed": self.seed, "priority": self.priority,
                "tenant": self.tenant}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(payload, Mapping):
            raise JobSpecError("job spec payload must be an object")
        if "kind" not in payload:
            raise JobSpecError("job spec payload missing 'kind'")
        unknown = set(payload) - {"kind", "params", "seed", "priority",
                                  "tenant"}
        if unknown:
            raise JobSpecError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise JobSpecError("spec.params must be an object")
        return cls(kind=payload["kind"], params=dict(params),
                   seed=payload.get("seed", 13),
                   priority=payload.get("priority", 0),
                   tenant=payload.get("tenant", "default"))


# -- execution context and result -------------------------------------------


@dataclass
class JobContext:
    """How to run a job: execution knobs plus live resources.

    ``resources`` is the side-channel for objects that cannot travel in
    ``params`` (netlists, campaign closures, component libraries);
    legacy shims put their ``self`` here, while service-side submissions
    leave it empty and the runner reconstructs everything from params.
    """

    jobs: int = 1
    backend: str = "auto"
    timeout_s: Optional[float] = None
    retries: int = 0
    progress: Optional[Callable[[int, int], None]] = None
    tracer: Optional[Tracer] = None
    cache: Optional[FlowCache] = None
    resources: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JobResult:
    """Outcome of one submitted job (conforms to the Report protocol).

    ``report`` is the producer's own Report object; ``artifact`` is the
    richer live object callers of the legacy entry points expect (the
    HLS project, the runs list...).  ``exit_code`` is the consolidated
    verdict.
    """

    spec: JobSpec
    report: Any
    exit_code: ExitCode = ExitCode.OK
    artifact: Any = None
    key: str = ""
    wall_s: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        from .core.report import report_kind
        return {
            "spec": self.spec.to_json(),
            "key": self.key,
            "exit_code": int(self.exit_code),
            "report_kind": report_kind(self.report),
            "report": self.report.to_json(),
        }

    def summary(self) -> str:
        return (f"[{self.spec.kind}] exit={int(self.exit_code)} "
                f"{self.report.summary()}")


@dataclass
class JobOutcome:
    """What a runner hands back to :func:`submit`."""

    report: Any
    exit_code: ExitCode = ExitCode.OK
    artifact: Any = None


Runner = Callable[[JobSpec, JobContext], JobOutcome]

_RUNNERS: Dict[str, Runner] = {}


def register_kind(kind: str, runner: Optional[Runner] = None):
    """Register ``runner`` for job ``kind`` (usable as a decorator)."""

    def install(fn: Runner) -> Runner:
        _RUNNERS[kind] = fn
        return fn

    if runner is not None:
        return install(runner)
    return install


def unregister_kind(kind: str) -> None:
    """Remove a registered kind (test cleanup)."""
    _RUNNERS.pop(kind, None)


def job_kinds() -> Tuple[str, ...]:
    """Every registered job kind, sorted."""
    return tuple(sorted(_RUNNERS))


def submit(spec: JobSpec, context: Optional[JobContext] = None,
           **options: Any) -> JobResult:
    """Run ``spec`` through its kind's runner and return the result.

    The one facade every producer path routes through: CLI subcommands,
    the job service's workers and the legacy entry-point shims all call
    this.  ``options`` are :class:`JobContext` fields for convenience
    (``submit(spec, cache=..., jobs=4)``).  Producer exceptions
    propagate unchanged — the service layer is what turns them into
    failed-job states.
    """
    if context is None:
        context = JobContext(**options)
    elif options:
        raise ApiError("pass either a JobContext or keyword options, "
                       "not both")
    runner = _RUNNERS.get(spec.kind)
    if runner is None:
        raise JobSpecError(
            f"unknown job kind {spec.kind!r} "
            f"(known: {', '.join(job_kinds())})")
    start = time.perf_counter()
    outcome = runner(spec, context)
    return JobResult(spec=spec, report=outcome.report,
                     exit_code=outcome.exit_code,
                     artifact=outcome.artifact,
                     key=spec.content_key(),
                     wall_s=time.perf_counter() - start)


# -- HLS job report ---------------------------------------------------------


@dataclass
class HlsJobReport:
    """JSON-able summary of one HLS synthesis job.

    The live :class:`~repro.hls.flow.HlsProject` carries IR objects with
    no JSON codec; this is the wire-format projection the service (and
    the ``hls`` job kind) serves: per-function resource/state summary
    plus content hashes of every generated RTL file.
    """

    top: str
    clock_ns: float
    functions: Dict[str, Dict[str, int]]
    states: int
    static_latency: Optional[int]
    verilog_sha256: Dict[str, str]

    @classmethod
    def from_project(cls, project) -> "HlsJobReport":
        design = project.top_design
        hashes = {
            name: hashlib.sha256(text.encode("utf-8")).hexdigest()
            for name, text in sorted(project.verilog_files().items())}
        return cls(top=project.top, clock_ns=project.clock_ns,
                   functions=project.resource_summary(),
                   states=design.state_count,
                   static_latency=design.static_latency(),
                   verilog_sha256=hashes)

    def to_json(self) -> Dict[str, Any]:
        return {
            "top": self.top,
            "clock_ns": self.clock_ns,
            "functions": {name: dict(sorted(stats.items()))
                          for name, stats in sorted(self.functions.items())},
            "states": self.states,
            "static_latency": self.static_latency,
            "verilog_sha256": dict(sorted(self.verilog_sha256.items())),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "HlsJobReport":
        return cls(top=payload["top"], clock_ns=payload["clock_ns"],
                   functions={name: dict(stats) for name, stats
                              in payload["functions"].items()},
                   states=payload["states"],
                   static_latency=payload.get("static_latency"),
                   verilog_sha256=dict(payload["verilog_sha256"]))

    def summary(self) -> str:
        area = self.functions.get(self.top, {})
        return (f"hls {self.top}: {self.states} states, "
                f"latency {self.static_latency}, "
                f"{area.get('luts', 0)} LUTs, {area.get('ffs', 0)} FFs")


# -- built-in runners -------------------------------------------------------


def _require(params: Mapping[str, Any], *names: str) -> None:
    missing = [name for name in names if name not in params]
    if missing:
        raise JobSpecError(
            f"job params missing required field(s): "
            f"{', '.join(missing)}")


def _device_from(value: Any, grid_luts: Optional[int] = None):
    """Build a Device from params: a family name or an asdict payload."""
    from .fabric.device import Device, get_device, scaled_device
    if isinstance(value, Mapping):
        try:
            device = Device(**dict(value))
        except TypeError as error:
            raise JobSpecError(f"malformed device payload: {error}")
    else:
        try:
            device = get_device(str(value))
        except KeyError as error:
            raise JobSpecError(str(error.args[0]))
    if grid_luts:
        device = scaled_device(device, f"{device.name}-job{grid_luts}",
                               int(grid_luts))
    return device


@register_kind("hls")
def _run_hls(spec: JobSpec, ctx: JobContext) -> JobOutcome:
    """params: source, top, [clock_ns, opt_level, scheduling,
    axi_read_latency, library (fingerprint — live object travels in
    ``ctx.resources['library']``)]."""
    from .hls.flow import synthesize_pipeline
    params = spec.params
    _require(params, "source", "top")
    project = synthesize_pipeline(
        params["source"], params["top"],
        clock_ns=params.get("clock_ns", 10.0),
        opt_level=params.get("opt_level", 2),
        library=ctx.resources.get("library"),
        scheduling=params.get("scheduling", "list"),
        axi_read_latency=params.get("axi_read_latency"),
        tracer=ctx.tracer, cache=ctx.cache)
    return JobOutcome(report=HlsJobReport.from_project(project),
                      artifact=project)


@register_kind("flow")
def _run_flow(spec: JobSpec, ctx: JobContext) -> JobOutcome:
    """params: component/width/stages + device (name or asdict) +
    [grid_luts, target_clock_ns, effort, channel_width] — or a live
    project/netlist in ``ctx.resources``."""
    from .exec.cancel import check_cancelled
    params = spec.params
    project = ctx.resources.get("project")
    if project is None:
        from .fabric.nxmap import NXmapProject
        netlist = ctx.resources.get("netlist")
        if netlist is None:
            from .fabric.synthesis import synthesize_component
            _require(params, "component")
            netlist = synthesize_component(params["component"],
                                           params.get("width", 16),
                                           params.get("stages", 0))
        device = _device_from(params.get("device", "NG-ULTRA"),
                              params.get("grid_luts"))
        project = NXmapProject(netlist, device, seed=spec.seed,
                               tracer=ctx.tracer, cache=ctx.cache)
    target_clock_ns = params.get("target_clock_ns", 10.0)
    project.run_place(effort=params.get("effort", 1.0))
    check_cancelled()
    project.run_route(channel_width=params.get("channel_width", 16))
    check_cancelled()
    project.run_sta(target_clock_ns=target_clock_ns)
    check_cancelled()
    project.run_bitstream()
    return JobOutcome(report=project.report(target_clock_ns),
                      artifact=project)


@register_kind("eco")
def _run_eco(spec: JobSpec, ctx: JobContext) -> JobOutcome:
    """params: delta (canonical op list) + the base design — a live
    project/netlist in ``ctx.resources`` or ``component``/``width``/
    ``stages`` or ``synth_cells``/``synth_seed`` params — plus
    [device, grid_luts, target_clock_ns, effort, channel_width].

    The base flow's cached stages are reused when the cache holds them
    and recomputed cold otherwise; either way the ECO stage keys chain
    off the (re)computed base keys, so a repeated identical submission
    is a warm cache hit with a byte-identical report.
    """
    from .fabric.eco import DeltaError, EcoFlow, NetlistDelta
    from .fabric.netlist import NetlistError
    from .fabric.nxmap import FlowError
    params = spec.params
    _require(params, "delta")
    try:
        delta = NetlistDelta.from_json(params["delta"])
    except DeltaError as error:
        raise JobSpecError(f"bad eco delta: {error}")
    project = ctx.resources.get("project")
    if project is None:
        from .fabric.nxmap import NXmapProject
        netlist = ctx.resources.get("netlist")
        if netlist is None:
            if "synth_cells" in params:
                from .fabric.synthesis import synthesize_random
                netlist = synthesize_random(
                    int(params["synth_cells"]),
                    seed=params.get("synth_seed", 7))
            else:
                from .fabric.synthesis import synthesize_component
                _require(params, "component")
                netlist = synthesize_component(params["component"],
                                               params.get("width", 16),
                                               params.get("stages", 0))
        device = _device_from(params.get("device", "NG-ULTRA"),
                              params.get("grid_luts"))
        project = NXmapProject(netlist, device, seed=spec.seed,
                               tracer=ctx.tracer, cache=ctx.cache)
    flow = EcoFlow(project, delta, tracer=ctx.tracer)
    try:
        report = flow.run(
            target_clock_ns=params.get("target_clock_ns", 10.0),
            effort=params.get("effort", 1.0),
            channel_width=params.get("channel_width", 16))
    except (DeltaError, NetlistError, FlowError) as error:
        raise JobSpecError(f"eco delta not applicable: {error}")
    routing = report.flow.routing
    code = ExitCode.FAILURE if routing is not None \
        and routing.failed_connections else ExitCode.OK
    return JobOutcome(report=report, exit_code=code, artifact=flow)


@register_kind("characterize")
def _run_characterize(spec: JobSpec, ctx: JobContext) -> JobOutcome:
    """params: device (name or asdict) + [grid_luts, effort, components,
    widths, stages] — or a live Eucalyptus in ``ctx.resources['tool']``."""
    from .hls.characterization.eucalyptus import (
        DEFAULT_STAGES,
        DEFAULT_WIDTHS,
        Eucalyptus,
        SweepReport,
    )
    params = spec.params
    tool = ctx.resources.get("tool")
    if tool is None:
        device = _device_from(params.get("device", "NG-ULTRA"),
                              params.get("grid_luts"))
        tool = Eucalyptus(device=device, seed=spec.seed,
                          effort=params.get("effort", 0.3),
                          tracer=ctx.tracer, cache=ctx.cache)
    runs = tool._sweep_impl(
        components=params.get("components"),
        widths=tuple(params.get("widths", DEFAULT_WIDTHS)),
        stages=tuple(params.get("stages", DEFAULT_STAGES)),
        jobs=ctx.jobs, backend=ctx.backend, timeout_s=ctx.timeout_s,
        retries=ctx.retries, progress=ctx.progress)
    report = SweepReport(device=tool.device.name, effort=tool.effort,
                         runs=list(runs))
    return JobOutcome(report=report, artifact=runs)


def _campaign_from(spec: JobSpec, ctx: JobContext):
    campaign = ctx.resources.get("campaign")
    if campaign is not None:
        return campaign
    from .radhard.scenarios import build_scenario
    _require(spec.params, "scenario")
    factory_params = dict(spec.params.get("scenario_params") or {})
    try:
        return build_scenario(spec.params["scenario"], **factory_params)
    except KeyError as error:
        raise JobSpecError(str(error.args[0]))
    except TypeError as error:
        raise JobSpecError(f"bad scenario_params: {error}")


@register_kind("seu")
def _run_seu(spec: JobSpec, ctx: JobContext) -> JobOutcome:
    """params: scenario (factory id) + runs + [scenario_params] — or a
    live Campaign in ``ctx.resources['campaign']``."""
    params = spec.params
    _require(params, "runs")
    campaign = _campaign_from(spec, ctx)
    report = campaign._run_impl(
        int(params["runs"]), seed=spec.seed, jobs=ctx.jobs,
        backend=ctx.backend, timeout_s=ctx.timeout_s,
        retries=ctx.retries, progress=ctx.progress,
        tracer=ctx.tracer, cache=ctx.cache)
    code = ExitCode.FAILURE if report.counts.get("crash", 0) \
        else ExitCode.OK
    return JobOutcome(report=report, exit_code=code, artifact=report)


@register_kind("mega")
def _run_mega(spec: JobSpec, ctx: JobContext) -> JobOutcome:
    """params: scenario + runs + [shards, shard_size, stop_ci,
    stop_outcomes, min_stop_shards, scenario_params] — or live
    Campaign/MegaCampaign objects in ``ctx.resources``."""
    from .radhard.mega import FAILURE_OUTCOMES, MegaCampaign
    params = spec.params
    _require(params, "runs")
    mega = ctx.resources.get("mega")
    if mega is None:
        mega = MegaCampaign(_campaign_from(spec, ctx),
                            cache=ctx.cache, tracer=ctx.tracer)
    stop_outcomes = tuple(params.get("stop_outcomes") or FAILURE_OUTCOMES)
    result = mega._run_impl(
        int(params["runs"]), seed=spec.seed, jobs=ctx.jobs,
        backend=ctx.backend, shards=params.get("shards"),
        shard_size=params.get("shard_size"),
        timeout_s=ctx.timeout_s, retries=ctx.retries,
        stop_ci=params.get("stop_ci"), stop_outcomes=stop_outcomes,
        min_stop_shards=params.get("min_stop_shards", 2),
        progress=ctx.progress)
    if not result.reached_target:
        code = ExitCode.INSUFFICIENT_EVIDENCE
    elif result.report.counts.get("crash", 0):
        code = ExitCode.FAILURE
    else:
        code = ExitCode.OK
    return JobOutcome(report=result, exit_code=code, artifact=result)


__all__ = [
    "ApiError", "ExitCode", "HTTP_STATUS_BY_EXIT", "HlsJobReport",
    "JobContext", "JobOutcome", "JobResult", "JobSpec", "JobSpecError",
    "Runner", "http_status", "job_kinds", "register_kind", "submit",
    "unregister_kind",
]
