"""Partitions and their workload model.

A partition's software is modelled as a generator yielding *actions*; the
hypervisor consumes the generator inside the partition's time windows.
This mirrors the paper's partial virtualization: partition code runs
natively until it needs a para-virtualized service (a hypercall), where
control returns to the hypervisor.

Actions:

* ``Compute(us)``        — burn CPU time (preempted at window end);
* ``WritePort(name, m)`` — send a message (sampling or queuing);
* ``ReadPort(name)``     — receive; the hypervisor sends the result back
  into the generator wrapped in a 1-tuple so an empty port is
  distinguishable: ``(payload,) = yield ReadPort("gnc")`` where payload
  is ``None`` when nothing was available;
* ``EndActivation()``    — this periodic activation is complete; the
  partition idles until its next window;
* ``Fault(reason)``      — simulated software fault (drives the HM).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generator, List, Optional


class PartitionState(Enum):
    BOOT = "boot"
    NORMAL = "normal"
    IDLE = "idle"          # waiting for next activation
    SUSPENDED = "suspended"
    HALTED = "halted"
    FAULTED = "faulted"


# -- workload actions ----------------------------------------------------


@dataclass
class Compute:
    us: float


@dataclass
class WritePort:
    port: str
    message: object


@dataclass
class ReadPort:
    port: str


@dataclass
class EndActivation:
    pass


@dataclass
class Fault:
    reason: str = "software fault"


@dataclass
class ActivationRecord:
    """Timing of one periodic activation (for jitter/deadline metrics)."""

    release_us: float        # when the activation became ready
    start_us: float          # first CPU time it received
    finish_us: Optional[float] = None

    @property
    def response_us(self) -> Optional[float]:
        if self.finish_us is None:
            return None
        return self.finish_us - self.release_us

    @property
    def jitter_us(self) -> float:
        return self.start_us - self.release_us


WorkloadFactory = Callable[[], Generator]


class Partition:
    """Runtime state of one partition under the hypervisor."""

    def __init__(self, config, workload_factory: WorkloadFactory,
                 period_us: Optional[float] = None,
                 deadline_us: Optional[float] = None) -> None:
        self.config = config
        self.workload_factory = workload_factory
        self.period_us = period_us
        self.deadline_us = deadline_us
        self.state = PartitionState.BOOT
        self.generator: Optional[Generator] = None
        self._send_value: object = None
        self.cpu_time_us = 0.0
        self.activations: List[ActivationRecord] = []
        self.pending_compute_us = 0.0
        self.deadline_misses = 0
        self.fault_reason: Optional[str] = None
        self.restarts = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.generator = self.workload_factory()
        self.state = PartitionState.NORMAL
        self._send_value = None

    def restart(self) -> None:
        """Warm restart (health-monitor action)."""
        self.restarts += 1
        self.pending_compute_us = 0.0
        self.fault_reason = None
        self.start()

    def halt(self, reason: str = "") -> None:
        self.state = PartitionState.HALTED
        self.generator = None

    def suspend(self) -> None:
        if self.state is PartitionState.NORMAL:
            self.state = PartitionState.SUSPENDED

    def resume(self) -> None:
        if self.state is PartitionState.SUSPENDED:
            self.state = PartitionState.NORMAL

    def fault(self, reason: str) -> None:
        self.state = PartitionState.FAULTED
        self.fault_reason = reason

    @property
    def runnable(self) -> bool:
        return self.state in (PartitionState.NORMAL, PartitionState.IDLE)

    # -- generator stepping ---------------------------------------------------

    def next_action(self):
        """Advance the workload to its next action (or None when done)."""
        if self.generator is None:
            return None
        try:
            if self._send_value is not None:
                value, self._send_value = self._send_value, None
                return self.generator.send(value)
            return next(self.generator)
        except StopIteration:
            self.state = PartitionState.HALTED
            self.generator = None
            return None

    def feed(self, value: object) -> None:
        """Queue a value for the next ``generator.send`` (port reads)."""
        self._send_value = value

    # -- metrics ----------------------------------------------------------

    def response_times(self) -> List[float]:
        return [a.response_us for a in self.activations
                if a.response_us is not None]

    def worst_response_us(self) -> float:
        times = self.response_times()
        return max(times) if times else 0.0

    def average_response_us(self) -> float:
        times = self.response_times()
        return sum(times) / len(times) if times else 0.0
