"""Inter-partition communication: sampling and queuing ports.

ARINC-653-style semantics (what XtratuM implements): sampling ports hold
the latest message with a validity age; queuing ports are bounded FIFOs
whose overflow policy discards the newest message and flags the event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from .config import PortConfig, PortKind


class IpcError(Exception):
    pass


@dataclass
class Message:
    payload: object
    timestamp_us: float
    source: int


class SamplingPort:
    """Last-value semantics with freshness tracking."""

    def __init__(self, config: PortConfig) -> None:
        self.config = config
        self.last: Optional[Message] = None
        self.writes = 0
        self.reads = 0

    def write(self, payload: object, timestamp_us: float,
              source: int) -> None:
        self.last = Message(payload, timestamp_us, source)
        self.writes += 1

    def read(self, now_us: float,
             max_age_us: Optional[float] = None
             ) -> Tuple[Optional[object], bool]:
        """Returns (payload or None, valid)."""
        self.reads += 1
        if self.last is None:
            return None, False
        valid = True
        if max_age_us is not None:
            valid = (now_us - self.last.timestamp_us) <= max_age_us
        return self.last.payload, valid


class QueuingPort:
    """Bounded FIFO; overflow drops the new message and counts it."""

    def __init__(self, config: PortConfig) -> None:
        self.config = config
        self.fifo: Deque[Message] = deque()
        self.overflows = 0
        self.writes = 0
        self.reads = 0

    def write(self, payload: object, timestamp_us: float,
              source: int) -> bool:
        self.writes += 1
        if len(self.fifo) >= self.config.depth:
            self.overflows += 1
            return False
        self.fifo.append(Message(payload, timestamp_us, source))
        return True

    def read(self) -> Optional[object]:
        self.reads += 1
        if not self.fifo:
            return None
        return self.fifo.popleft().payload

    @property
    def depth_used(self) -> int:
        return len(self.fifo)


class PortTable:
    """All ports of a configured system, with access checking."""

    def __init__(self) -> None:
        self.sampling: Dict[str, SamplingPort] = {}
        self.queuing: Dict[str, QueuingPort] = {}
        self._configs: Dict[str, PortConfig] = {}

    def create(self, config: PortConfig) -> None:
        self._configs[config.name] = config
        if config.kind is PortKind.SAMPLING:
            self.sampling[config.name] = SamplingPort(config)
        else:
            self.queuing[config.name] = QueuingPort(config)

    def _config(self, name: str) -> PortConfig:
        if name not in self._configs:
            raise IpcError(f"unknown port {name!r}")
        return self._configs[name]

    def write(self, name: str, partition: int, payload: object,
              now_us: float) -> bool:
        config = self._config(name)
        if partition != config.source:
            raise IpcError(
                f"partition {partition} is not the source of {name!r}")
        if config.kind is PortKind.SAMPLING:
            self.sampling[name].write(payload, now_us, partition)
            return True
        return self.queuing[name].write(payload, now_us, partition)

    def read(self, name: str, partition: int, now_us: float):
        config = self._config(name)
        if partition not in config.destinations:
            raise IpcError(
                f"partition {partition} is not a destination of {name!r}")
        if config.kind is PortKind.SAMPLING:
            payload, _valid = self.sampling[name].read(now_us)
            return payload
        return self.queuing[name].read()
