"""XtratuM NextGeneration hypervisor model (paper §III)."""

from .config import (
    ConfigError,
    MemoryArea,
    PartitionConfig,
    Plan,
    PortConfig,
    PortKind,
    SystemConfig,
    Window,
)
from .health import (
    DEFAULT_ACTION_TABLE,
    HealthMonitor,
    HmAction,
    HmEvent,
    HmLogEntry,
)
from .hypercalls import (
    HYPERCALL_NAMES,
    HypercallApi,
    HypercallError,
    SvcBridge,
    XM_GET_PLAN,
    XM_GET_TIME,
    XM_HALT_PARTITION,
    XM_PARTITION_STATUS,
    XM_RAISE_HM_EVENT,
    XM_READ_PORT,
    XM_RESUME_PARTITION,
    XM_SUSPEND_PARTITION,
    XM_SWITCH_PLAN,
    XM_WRITE_PORT,
)
from .ipc import IpcError, PortTable, QueuingPort, SamplingPort
from .partition import (
    ActivationRecord,
    Compute,
    EndActivation,
    Fault,
    Partition,
    PartitionState,
    ReadPort,
    WritePort,
)
from .scheduler import (
    CyclicScheduler,
    PartitionMetrics,
    ScheduleMetrics,
    WindowExecution,
)
from .xmcf import config_from_xml, config_to_xml
from .xtratum import HypervisorError, XtratumHypervisor

__all__ = [
    "ConfigError", "MemoryArea", "PartitionConfig", "Plan", "PortConfig",
    "PortKind", "SystemConfig", "Window",
    "DEFAULT_ACTION_TABLE", "HealthMonitor", "HmAction", "HmEvent",
    "HmLogEntry",
    "HYPERCALL_NAMES", "HypercallApi", "HypercallError", "SvcBridge",
    "XM_GET_PLAN", "XM_GET_TIME", "XM_HALT_PARTITION",
    "XM_PARTITION_STATUS", "XM_RAISE_HM_EVENT", "XM_READ_PORT",
    "XM_RESUME_PARTITION", "XM_SUSPEND_PARTITION", "XM_SWITCH_PLAN",
    "XM_WRITE_PORT",
    "IpcError", "PortTable", "QueuingPort", "SamplingPort",
    "ActivationRecord", "Compute", "EndActivation", "Fault", "Partition",
    "PartitionState", "ReadPort", "WritePort",
    "CyclicScheduler", "PartitionMetrics", "ScheduleMetrics",
    "WindowExecution",
    "config_from_xml", "config_to_xml",
    "HypervisorError", "XtratumHypervisor",
]
