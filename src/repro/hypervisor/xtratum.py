"""XtratuM NextGeneration hypervisor facade (paper §III).

"XtratuM is a bare-metal space-qualified hypervisor aimed at safe and
efficient execution of embedded real-time systems" — this class is the
behavioural model: it owns the static configuration, the partitions, the
port table, the health monitor and the cyclic scheduler, and has been
"adapted to the NG-ULTRA SoC-based board, giving support to the four
cores provided by the board, thus enabling parallel computing".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..telemetry import Tracer
from .config import SystemConfig
from .health import HealthMonitor, HmAction, HmEvent
from .hypercalls import HypercallApi
from .ipc import PortTable
from .partition import Partition, WorkloadFactory
from .scheduler import CyclicScheduler, ScheduleMetrics


class HypervisorError(Exception):
    pass


class XtratumHypervisor:
    """One configured XtratuM instance."""

    def __init__(self, config: SystemConfig,
                 hm_table: Optional[Dict[HmEvent, HmAction]] = None,
                 tracer: Optional[Tracer] = None) -> None:
        problems = config.validate()
        if problems:
            raise HypervisorError("configuration rejected: "
                                  + "; ".join(problems[:5]))
        self.config = config
        self.tracer = tracer
        self.partitions: Dict[int, Partition] = {}
        self.ports = PortTable()
        for port_config in config.ports.values():
            self.ports.create(port_config)
        self.health = HealthMonitor(hm_table, tracer=tracer)
        self.scheduler = CyclicScheduler(config, self.partitions,
                                         self.ports, self.health,
                                         tracer=tracer)
        self.api = HypercallApi(self)
        self.active_plan_id: Optional[int] = None
        self.requested_plan: Optional[int] = None
        self._started = False

    # -- partition management -------------------------------------------------

    def load_partition(self, pid: int, workload: WorkloadFactory,
                       period_us: Optional[float] = None,
                       deadline_us: Optional[float] = None) -> Partition:
        if pid not in self.config.partitions:
            raise HypervisorError(f"partition {pid} not in configuration")
        if pid in self.partitions:
            raise HypervisorError(f"partition {pid} already loaded")
        partition = Partition(self.config.partitions[pid], workload,
                              period_us=period_us, deadline_us=deadline_us)
        self.partitions[pid] = partition
        return partition

    def boot(self) -> None:
        missing = [pid for pid in self.config.partitions
                   if pid not in self.partitions]
        if missing:
            raise HypervisorError(
                f"partitions without software: {missing}")
        self.scheduler.start_partitions()
        self._started = True

    # -- execution ----------------------------------------------------------

    def run(self, frames: int, plan_id: int = 0) -> ScheduleMetrics:
        """Run ``frames`` major frames of the given plan.

        Honors plan-switch requests (``XM_switch_sched_plan``) at major
        frame boundaries, as the real scheduler does.
        """
        if not self._started:
            self.boot()
        if plan_id not in self.config.plans:
            raise HypervisorError(f"unknown plan {plan_id}")
        self.active_plan_id = plan_id
        remaining = frames
        merged: Optional[ScheduleMetrics] = None
        while remaining > 0:
            plan = self.config.plans[self.active_plan_id]
            metrics = self.scheduler.run(plan, 1)
            merged = _merge_metrics(merged, metrics)
            remaining -= 1
            if self.requested_plan is not None:
                self.active_plan_id = self.requested_plan
                self.requested_plan = None
            if self.health.system_reset_requested:
                break
        assert merged is not None
        busy = sum(p.cpu_time_us for p in self.partitions.values())
        merged.idle_us = (merged.total_time_us * self.config.cores
                          - busy - merged.hypervisor_overhead_us)
        return merged

    # -- reporting ------------------------------------------------------------

    def summary(self, metrics: ScheduleMetrics) -> str:
        lines = [f"XtratuM schedule report — plan {self.active_plan_id}, "
                 f"{metrics.frames} frames x {metrics.major_frame_us}us "
                 f"on {self.config.cores} cores"]
        for pid in sorted(metrics.partitions):
            lines.append("  " + metrics.partitions[pid].row())
        lines.append(f"  hypervisor overhead: "
                     f"{metrics.hypervisor_overhead_us:.1f}us "
                     f"({100 * metrics.hypervisor_overhead_us / max(1e-9, metrics.total_time_us * self.config.cores):.2f}%)")
        lines.append(f"  HM events: {len(self.health.log)}")
        return "\n".join(lines)


def _merge_metrics(base: Optional[ScheduleMetrics],
                   new: ScheduleMetrics) -> ScheduleMetrics:
    if base is None:
        return new
    base.frames += new.frames
    base.requested_frames += new.requested_frames
    base.hypervisor_overhead_us += new.hypervisor_overhead_us
    base.idle_us += new.idle_us
    base.executions.extend(new.executions)
    base.partitions = new.partitions  # cumulative (partition objects)
    return base
