"""XtratuM-style system configuration.

XtratuM systems are statically configured: partitions, their memory
areas, the cyclic scheduling plans and the communication ports are all
declared up front (the XM_CF configuration of the real hypervisor).  The
checker enforces the same global rules the real configuration compiler
does: no overlapping windows per core, no overlapping memory areas, ports
wired to declared partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class ConfigError(Exception):
    pass


class PortKind(Enum):
    SAMPLING = "sampling"
    QUEUING = "queuing"


@dataclass(frozen=True)
class MemoryArea:
    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "MemoryArea") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class PartitionConfig:
    pid: int
    name: str
    memory: List[MemoryArea] = field(default_factory=list)
    criticality: str = "DAL-B"
    system_partition: bool = False   # may issue management hypercalls


@dataclass
class Window:
    partition: int
    core: int
    start_us: float
    duration_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class Plan:
    plan_id: int
    major_frame_us: float
    windows: List[Window] = field(default_factory=list)

    def add_window(self, partition: int, core: int, start_us: float,
                   duration_us: float) -> Window:
        window = Window(partition, core, start_us, duration_us)
        self.windows.append(window)
        return window

    def windows_for_core(self, core: int) -> List[Window]:
        return sorted((w for w in self.windows if w.core == core),
                      key=lambda w: w.start_us)

    def partition_budget_us(self, partition: int) -> float:
        return sum(w.duration_us for w in self.windows
                   if w.partition == partition)


@dataclass
class PortConfig:
    name: str
    kind: PortKind
    source: int              # partition id
    destinations: List[int]
    depth: int = 8           # queuing ports only
    message_words: int = 16


@dataclass
class SystemConfig:
    partitions: Dict[int, PartitionConfig] = field(default_factory=dict)
    plans: Dict[int, Plan] = field(default_factory=dict)
    ports: Dict[str, PortConfig] = field(default_factory=dict)
    cores: int = 4
    context_switch_us: float = 2.0   # hypervisor overhead per window

    # -- construction -------------------------------------------------------

    def add_partition(self, pid: int, name: str,
                      memory: Optional[List[MemoryArea]] = None,
                      criticality: str = "DAL-B",
                      system_partition: bool = False) -> PartitionConfig:
        if pid in self.partitions:
            raise ConfigError(f"duplicate partition id {pid}")
        config = PartitionConfig(pid=pid, name=name,
                                 memory=list(memory or []),
                                 criticality=criticality,
                                 system_partition=system_partition)
        self.partitions[pid] = config
        return config

    def add_plan(self, plan_id: int, major_frame_us: float) -> Plan:
        if plan_id in self.plans:
            raise ConfigError(f"duplicate plan id {plan_id}")
        plan = Plan(plan_id=plan_id, major_frame_us=major_frame_us)
        self.plans[plan_id] = plan
        return plan

    def add_port(self, name: str, kind: PortKind, source: int,
                 destinations: List[int], depth: int = 8) -> PortConfig:
        if name in self.ports:
            raise ConfigError(f"duplicate port {name!r}")
        port = PortConfig(name=name, kind=kind, source=source,
                          destinations=list(destinations), depth=depth)
        self.ports[name] = port
        return port

    # -- validation ---------------------------------------------------------

    def validate(self) -> List[str]:
        """Global consistency checks the configuration compiler enforces.

        Delegates to the ``repro.analysis`` XMCF pass pack and returns
        the ERROR-level findings as plain messages — the historical
        contract of this method.  ``repro lint`` additionally reports
        the advisory findings (unscheduled partitions, dangling ports).
        """
        from ..analysis.passes.xmcf import error_messages
        return error_messages(self)
