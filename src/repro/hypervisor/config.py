"""XtratuM-style system configuration.

XtratuM systems are statically configured: partitions, their memory
areas, the cyclic scheduling plans and the communication ports are all
declared up front (the XM_CF configuration of the real hypervisor).  The
checker enforces the same global rules the real configuration compiler
does: no overlapping windows per core, no overlapping memory areas, ports
wired to declared partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class ConfigError(Exception):
    pass


class PortKind(Enum):
    SAMPLING = "sampling"
    QUEUING = "queuing"


@dataclass(frozen=True)
class MemoryArea:
    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "MemoryArea") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class PartitionConfig:
    pid: int
    name: str
    memory: List[MemoryArea] = field(default_factory=list)
    criticality: str = "DAL-B"
    system_partition: bool = False   # may issue management hypercalls


@dataclass
class Window:
    partition: int
    core: int
    start_us: float
    duration_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class Plan:
    plan_id: int
    major_frame_us: float
    windows: List[Window] = field(default_factory=list)

    def add_window(self, partition: int, core: int, start_us: float,
                   duration_us: float) -> Window:
        window = Window(partition, core, start_us, duration_us)
        self.windows.append(window)
        return window

    def windows_for_core(self, core: int) -> List[Window]:
        return sorted((w for w in self.windows if w.core == core),
                      key=lambda w: w.start_us)

    def partition_budget_us(self, partition: int) -> float:
        return sum(w.duration_us for w in self.windows
                   if w.partition == partition)


@dataclass
class PortConfig:
    name: str
    kind: PortKind
    source: int              # partition id
    destinations: List[int]
    depth: int = 8           # queuing ports only
    message_words: int = 16


@dataclass
class SystemConfig:
    partitions: Dict[int, PartitionConfig] = field(default_factory=dict)
    plans: Dict[int, Plan] = field(default_factory=dict)
    ports: Dict[str, PortConfig] = field(default_factory=dict)
    cores: int = 4
    context_switch_us: float = 2.0   # hypervisor overhead per window

    # -- construction -------------------------------------------------------

    def add_partition(self, pid: int, name: str,
                      memory: Optional[List[MemoryArea]] = None,
                      criticality: str = "DAL-B",
                      system_partition: bool = False) -> PartitionConfig:
        if pid in self.partitions:
            raise ConfigError(f"duplicate partition id {pid}")
        config = PartitionConfig(pid=pid, name=name,
                                 memory=list(memory or []),
                                 criticality=criticality,
                                 system_partition=system_partition)
        self.partitions[pid] = config
        return config

    def add_plan(self, plan_id: int, major_frame_us: float) -> Plan:
        if plan_id in self.plans:
            raise ConfigError(f"duplicate plan id {plan_id}")
        plan = Plan(plan_id=plan_id, major_frame_us=major_frame_us)
        self.plans[plan_id] = plan
        return plan

    def add_port(self, name: str, kind: PortKind, source: int,
                 destinations: List[int], depth: int = 8) -> PortConfig:
        if name in self.ports:
            raise ConfigError(f"duplicate port {name!r}")
        port = PortConfig(name=name, kind=kind, source=source,
                          destinations=list(destinations), depth=depth)
        self.ports[name] = port
        return port

    # -- validation ---------------------------------------------------------

    def validate(self) -> List[str]:
        problems: List[str] = []
        for plan in self.plans.values():
            for window in plan.windows:
                if window.partition not in self.partitions:
                    problems.append(
                        f"plan {plan.plan_id}: window for unknown "
                        f"partition {window.partition}")
                if not 0 <= window.core < self.cores:
                    problems.append(
                        f"plan {plan.plan_id}: core {window.core} out of "
                        f"range")
                if window.end_us > plan.major_frame_us + 1e-9:
                    problems.append(
                        f"plan {plan.plan_id}: window exceeds major frame")
            for core in range(self.cores):
                windows = plan.windows_for_core(core)
                for a, b in zip(windows, windows[1:]):
                    if b.start_us < a.end_us - 1e-9:
                        problems.append(
                            f"plan {plan.plan_id} core {core}: windows "
                            f"for partitions {a.partition}/{b.partition} "
                            f"overlap")
        for pid, partition in self.partitions.items():
            areas = partition.memory
            for i, a in enumerate(areas):
                for b in areas[i + 1:]:
                    if a.overlaps(b):
                        problems.append(
                            f"partition {pid}: areas {a.name}/{b.name} "
                            f"overlap")
        seen_areas: List[Tuple[int, MemoryArea]] = []
        for pid, partition in self.partitions.items():
            for area in partition.memory:
                for other_pid, other in seen_areas:
                    if area.overlaps(other):
                        problems.append(
                            f"partitions {pid} and {other_pid} share "
                            f"memory ({area.name}/{other.name}) — spatial "
                            f"isolation violated")
                seen_areas.append((pid, area))
        for name, port in self.ports.items():
            if port.source not in self.partitions:
                problems.append(f"port {name!r}: unknown source "
                                f"{port.source}")
            for dest in port.destinations:
                if dest not in self.partitions:
                    problems.append(f"port {name!r}: unknown destination "
                                    f"{dest}")
        return problems
