"""Cyclic (time-partitioned) scheduling over the quad-core platform.

Implements the XtratuM TSP execution model: per-core window timelines
inside a repeating major frame, strict preemption at window boundaries,
fixed hypervisor overhead per partition context switch, periodic
activation accounting (release/start/finish) and health-monitor coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..telemetry import Tracer
from .config import Plan, SystemConfig, Window
from .health import HealthMonitor, HmAction, HmEvent
from .ipc import IpcError, PortTable
from .partition import (
    ActivationRecord,
    Compute,
    EndActivation,
    Fault,
    Partition,
    ReadPort,
    WritePort,
)

# CPU time charged for one para-virtualized port operation.
PORT_OP_US = 0.5


class ScheduleRuntimeError(Exception):
    pass


@dataclass
class WindowExecution:
    window: Window
    frame: int
    used_us: float
    preempted: bool


@dataclass
class PartitionMetrics:
    name: str
    cpu_time_us: float
    activations: int
    worst_response_us: float
    average_response_us: float
    max_jitter_us: float
    deadline_misses: int
    restarts: int
    state: str

    def row(self) -> str:
        return (f"{self.name:<12} cpu={self.cpu_time_us:>9.1f}us "
                f"act={self.activations:<5} wcrt={self.worst_response_us:>8.1f}us "
                f"avg={self.average_response_us:>8.1f}us "
                f"jitter={self.max_jitter_us:>6.1f}us "
                f"miss={self.deadline_misses} restarts={self.restarts} "
                f"[{self.state}]")


@dataclass
class ScheduleMetrics:
    """Accounting for one scheduler run.

    ``frames`` is the number of major frames *actually executed*: a
    health-monitor system reset that stops the run early leaves it lower
    than ``requested_frames``, so ``total_time_us`` (and with it the idle
    figure) covers only the time that really elapsed.
    """

    frames: int
    major_frame_us: float
    requested_frames: int = 0
    partitions: Dict[int, PartitionMetrics] = field(default_factory=dict)
    hypervisor_overhead_us: float = 0.0
    idle_us: float = 0.0
    executions: List[WindowExecution] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.requested_frames:
            self.requested_frames = self.frames

    @property
    def total_time_us(self) -> float:
        return self.frames * self.major_frame_us

    def utilization(self, pid: int) -> float:
        if self.total_time_us == 0:
            return 0.0
        return self.partitions[pid].cpu_time_us / self.total_time_us


class CyclicScheduler:
    """Executes one plan over the partition set."""

    def __init__(self, config: SystemConfig,
                 partitions: Dict[int, Partition],
                 ports: PortTable,
                 health: HealthMonitor,
                 tracer: Optional[Tracer] = None) -> None:
        self.config = config
        self.partitions = partitions
        self.ports = ports
        self.health = health
        self.tracer = tracer
        self.time_us = 0.0
        self._next_release: Dict[int, float] = {}
        self._current_activation: Dict[int, Optional[ActivationRecord]] = {}
        self.requested_plan: Optional[int] = None

    def start_partitions(self) -> None:
        for pid, partition in self.partitions.items():
            partition.start()
            self._next_release[pid] = 0.0
            self._current_activation[pid] = None

    def run(self, plan: Plan, frames: int) -> ScheduleMetrics:
        metrics = ScheduleMetrics(frames=frames,
                                  major_frame_us=plan.major_frame_us,
                                  requested_frames=frames)
        executed = 0
        for frame in range(frames):
            frame_base = self.time_us
            # Execute windows in global start order (cores interleaved).
            windows = sorted(plan.windows,
                             key=lambda w: (w.start_us, w.core))
            for window in windows:
                self._execute_window(window, frame, frame_base, metrics)
            self.time_us = frame_base + plan.major_frame_us
            executed += 1
            if self.health.system_reset_requested:
                break
        # Idle accounting must cover only the frames that actually ran:
        # a system reset that stops the loop early would otherwise leave
        # total_time_us at the requested length and inflate idle_us.
        metrics.frames = executed
        busy = sum(p.cpu_time_us for p in self.partitions.values())
        metrics.idle_us = (metrics.total_time_us * self.config.cores
                           - busy - metrics.hypervisor_overhead_us)
        for pid, partition in self.partitions.items():
            jitters = [a.jitter_us for a in partition.activations]
            metrics.partitions[pid] = PartitionMetrics(
                name=partition.config.name,
                cpu_time_us=partition.cpu_time_us,
                activations=len(partition.activations),
                worst_response_us=partition.worst_response_us(),
                average_response_us=partition.average_response_us(),
                max_jitter_us=max(jitters) if jitters else 0.0,
                deadline_misses=partition.deadline_misses,
                restarts=partition.restarts,
                state=partition.state.value)
        return metrics

    # -- window execution -----------------------------------------------------

    def _execute_window(self, window: Window, frame: int, frame_base: float,
                        metrics: ScheduleMetrics) -> None:
        partition = self.partitions[window.partition]
        start = frame_base + window.start_us
        end = frame_base + window.end_us
        if not partition.runnable:
            # A partition that cannot run is never context-switched in,
            # so the window passes with no hypervisor overhead at all.
            metrics.executions.append(WindowExecution(window, frame, 0.0,
                                                      False))
            if self.tracer is not None:
                self.tracer.event(
                    f"window-skipped:{partition.config.name}",
                    "scheduler", at=start, partition=window.partition,
                    core=window.core, frame=frame,
                    state=partition.state.value)
            return
        overhead = min(self.config.context_switch_us, window.duration_us)
        metrics.hypervisor_overhead_us += overhead
        if self.tracer is not None:
            self.tracer.counter("scheduler.context_switches",
                                "scheduler").add()
        t = start + overhead
        used = 0.0
        preempted = False
        while t < end - 1e-9:
            # Release handling for periodic partitions.
            if self._current_activation[window.partition] is None:
                release = self._next_release[window.partition]
                if partition.period_us is not None and release > t + 1e-9:
                    break  # next activation not due inside this window
                record = ActivationRecord(release_us=release, start_us=t)
                partition.activations.append(record)
                self._current_activation[window.partition] = record
                if self.tracer is not None:
                    self.tracer.event(
                        f"release:{partition.config.name}", "scheduler",
                        at=t, partition=window.partition,
                        release_us=release)
            # Resume leftover compute before asking for new actions.
            if partition.pending_compute_us > 1e-9:
                available = end - t
                chunk = min(partition.pending_compute_us, available)
                t += chunk
                partition.cpu_time_us += chunk
                partition.pending_compute_us -= chunk
                if partition.pending_compute_us > 1e-9:
                    preempted = True
                    break
                continue
            action = partition.next_action()
            if action is None:
                break  # workload generator finished -> halted
            t, stop, preempted = self._apply_action(
                partition, window, action, t, end)
            if stop:
                break
        used = max(0.0, t - (start + overhead))
        if partition.pending_compute_us > 1e-9:
            self.health.report(t, window.partition, HmEvent.WINDOW_OVERRUN,
                               f"{partition.pending_compute_us:.1f}us left")
        metrics.executions.append(
            WindowExecution(window, frame, max(0.0, used), preempted))
        if self.tracer is not None:
            self.tracer.counter("scheduler.windows", "scheduler").add()
            self.tracer.add_span(
                f"window:{partition.config.name}", "scheduler",
                start, start + overhead + max(0.0, used),
                partition=window.partition, core=window.core, frame=frame,
                overhead_us=overhead, used_us=round(max(0.0, used), 6),
                preempted=preempted)

    def _apply_action(self, partition: Partition, window: Window, action,
                      t: float, end: float) -> Tuple[float, bool, bool]:
        """Returns (new time, stop window, preempted)."""
        pid = window.partition
        if isinstance(action, Compute):
            available = end - t
            if action.us <= available:
                partition.cpu_time_us += action.us
                return t + action.us, False, False
            partition.cpu_time_us += available
            partition.pending_compute_us = action.us - available
            return end, True, True
        if isinstance(action, WritePort):
            try:
                self.ports.write(action.port, pid, action.message, t)
            except IpcError as error:
                self._hm(t, pid, HmEvent.PORT_VIOLATION, str(error),
                         partition)
                return t, True, False
            partition.cpu_time_us += PORT_OP_US
            return t + PORT_OP_US, False, False
        if isinstance(action, ReadPort):
            try:
                value = self.ports.read(action.port, pid, t)
            except IpcError as error:
                self._hm(t, pid, HmEvent.PORT_VIOLATION, str(error),
                         partition)
                return t, True, False
            partition.feed((value,))
            partition.cpu_time_us += PORT_OP_US
            return t + PORT_OP_US, False, False
        if isinstance(action, EndActivation):
            record = self._current_activation[pid]
            if record is not None:
                record.finish_us = t
                if partition.deadline_us is not None and \
                        record.response_us is not None and \
                        record.response_us > partition.deadline_us + 1e-9:
                    partition.deadline_misses += 1
                    self.health.report(t, pid, HmEvent.DEADLINE_MISS,
                                       f"response {record.response_us:.1f}us")
            self._current_activation[pid] = None
            if partition.period_us is not None:
                release = self._next_release[pid] + partition.period_us
                # Skip releases that are already in the past (overload).
                while release < t - partition.period_us:
                    release += partition.period_us
                self._next_release[pid] = release
                return t, release > end, False
            return t, False, False
        if isinstance(action, Fault):
            self._hm(t, pid, HmEvent.PARTITION_FAULT, action.reason,
                     partition)
            return t, True, False
        raise ScheduleRuntimeError(f"unknown action {action!r}")

    def _hm(self, t: float, pid: int, event: HmEvent, detail: str,
            partition: Partition) -> None:
        action = self.health.report(t, pid, event, detail)
        if action is HmAction.RESTART_PARTITION:
            partition.restart()
            self._current_activation[pid] = None
        elif action is HmAction.HALT_PARTITION:
            partition.halt(detail)
        elif action is HmAction.SUSPEND_PARTITION:
            partition.suspend()
        # LOG / IGNORE / SYSTEM_RESET handled by the monitor itself.
