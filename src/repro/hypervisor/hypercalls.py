"""Para-virtualized service layer (the XM_* hypercall API).

Partitions under partial virtualization request hypervisor services
through hypercalls.  The table below mirrors the XtratuM API surface the
use cases need; ``SvcBridge`` additionally maps R52-lite ``SVC``
instructions (see ``repro.soc.cpu``) onto the same services so native
code running on the modelled cores can reach the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

XM_GET_TIME = 0x01
XM_PARTITION_STATUS = 0x02
XM_WRITE_PORT = 0x03
XM_READ_PORT = 0x04
XM_HALT_PARTITION = 0x05
XM_SUSPEND_PARTITION = 0x06
XM_RESUME_PARTITION = 0x07
XM_RAISE_HM_EVENT = 0x08
XM_SWITCH_PLAN = 0x09
XM_GET_PLAN = 0x0A

HYPERCALL_NAMES = {
    XM_GET_TIME: "XM_get_time",
    XM_PARTITION_STATUS: "XM_partition_get_status",
    XM_WRITE_PORT: "XM_write_port",
    XM_READ_PORT: "XM_read_port",
    XM_HALT_PARTITION: "XM_halt_partition",
    XM_SUSPEND_PARTITION: "XM_suspend_partition",
    XM_RESUME_PARTITION: "XM_resume_partition",
    XM_RAISE_HM_EVENT: "XM_raise_hm_event",
    XM_SWITCH_PLAN: "XM_switch_sched_plan",
    XM_GET_PLAN: "XM_get_sched_plan",
}


class HypercallError(Exception):
    pass


class HypercallApi:
    """Service dispatcher bound to a hypervisor instance."""

    def __init__(self, hypervisor) -> None:
        self.hypervisor = hypervisor
        self.calls: Dict[int, int] = {}

    def invoke(self, number: int, caller_pid: int, *args):
        self.calls[number] = self.calls.get(number, 0) + 1
        hv = self.hypervisor
        if number == XM_GET_TIME:
            return hv.scheduler.time_us
        if number == XM_PARTITION_STATUS:
            pid = args[0] if args else caller_pid
            partition = hv.partitions.get(pid)
            if partition is None:
                raise HypercallError(f"unknown partition {pid}")
            return partition.state.value
        if number == XM_WRITE_PORT:
            name, payload = args
            return hv.ports.write(name, caller_pid, payload,
                                  hv.scheduler.time_us)
        if number == XM_READ_PORT:
            (name,) = args
            return hv.ports.read(name, caller_pid, hv.scheduler.time_us)
        if number == XM_HALT_PARTITION:
            pid = args[0] if args else caller_pid
            self._check_management(caller_pid, pid)
            hv.partitions[pid].halt("hypercall")
            return 0
        if number == XM_SUSPEND_PARTITION:
            pid = args[0] if args else caller_pid
            self._check_management(caller_pid, pid)
            hv.partitions[pid].suspend()
            return 0
        if number == XM_RESUME_PARTITION:
            pid = args[0] if args else caller_pid
            self._check_management(caller_pid, pid)
            hv.partitions[pid].resume()
            return 0
        if number == XM_RAISE_HM_EVENT:
            from .health import HmEvent
            (event_name,) = args
            hv.health.report(hv.scheduler.time_us, caller_pid,
                             HmEvent(event_name), "raised by partition")
            return 0
        if number == XM_SWITCH_PLAN:
            (plan_id,) = args
            self._check_management(caller_pid, caller_pid, allow_self=False)
            if plan_id not in hv.config.plans:
                raise HypercallError(f"unknown plan {plan_id}")
            hv.requested_plan = plan_id
            return 0
        if number == XM_GET_PLAN:
            return hv.active_plan_id
        raise HypercallError(f"unknown hypercall {number}")

    def _check_management(self, caller_pid: int, target_pid: int,
                          allow_self: bool = True) -> None:
        caller = self.hypervisor.config.partitions[caller_pid]
        if caller.system_partition:
            return
        if allow_self and caller_pid == target_pid:
            return
        raise HypercallError(
            f"partition {caller_pid} lacks system rights for management "
            f"hypercalls")


@dataclass
class SvcBinding:
    """Maps an SVC immediate to a hypercall with fixed register ABI."""

    svc_imm: int
    hypercall: int


class SvcBridge:
    """Connects R52-lite SVC traps to the hypercall API.

    ABI: r0 = hypercall number, r1/r2 = arguments, result in r0.
    Install as the core's ``svc_handler``.
    """

    def __init__(self, api: HypercallApi, partition_of_core: Dict[int, int]
                 ) -> None:
        self.api = api
        self.partition_of_core = partition_of_core
        self.trap_count = 0

    def __call__(self, core, imm: int) -> None:
        self.trap_count += 1
        pid = self.partition_of_core.get(core.core_id, 0)
        number = core.regs[0]
        try:
            result = self.api.invoke(number, pid)
            core.regs[0] = int(result) & 0xFFFFFFFF \
                if isinstance(result, (int, float)) else 0
        except HypercallError:
            core.regs[0] = 0xFFFFFFFF
