"""XM_CF: the XtratuM XML configuration format.

Real XtratuM systems are configured through an XML file (XM_CF) compiled
into a binary configuration table.  This module serializes and parses the
:class:`SystemConfig` model in that style, so configurations can be
stored with a mission's datapack and round-tripped through review tools.
"""

from __future__ import annotations

from typing import List
from xml.etree import ElementTree

from .config import (
    ConfigError,
    MemoryArea,
    Plan,
    PortKind,
    SystemConfig,
)


def config_to_xml(config: SystemConfig) -> str:
    """Render a SystemConfig as an XM_CF-style XML document."""
    root = ElementTree.Element(
        "SystemDescription", version="1.0",
        name="hermes-ngultra")
    hw = ElementTree.SubElement(root, "HwDescription")
    ElementTree.SubElement(
        hw, "Processor", cores=str(config.cores),
        contextSwitchUs=f"{config.context_switch_us}")

    partitions_el = ElementTree.SubElement(root, "PartitionTable")
    for pid in sorted(config.partitions):
        partition = config.partitions[pid]
        part_el = ElementTree.SubElement(
            partitions_el, "Partition", id=str(pid), name=partition.name,
            criticality=partition.criticality,
            system=("yes" if partition.system_partition else "no"))
        for area in partition.memory:
            ElementTree.SubElement(
                part_el, "MemoryArea", name=area.name,
                start=f"0x{area.base:08x}", size=str(area.size))

    plans_el = ElementTree.SubElement(root, "CyclicPlanTable")
    for plan_id in sorted(config.plans):
        plan = config.plans[plan_id]
        plan_el = ElementTree.SubElement(
            plans_el, "Plan", id=str(plan_id),
            majorFrameUs=f"{plan.major_frame_us}")
        for window in plan.windows:
            ElementTree.SubElement(
                plan_el, "Slot", partitionId=str(window.partition),
                vCpuId=str(window.core), startUs=f"{window.start_us}",
                durationUs=f"{window.duration_us}")

    channels_el = ElementTree.SubElement(root, "Channels")
    for name in sorted(config.ports):
        port = config.ports[name]
        ElementTree.SubElement(
            channels_el,
            "SamplingChannel" if port.kind is PortKind.SAMPLING
            else "QueuingChannel",
            name=name, source=str(port.source),
            destinations=",".join(str(d) for d in port.destinations),
            depth=str(port.depth))
    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")


def config_from_xml(text: str) -> SystemConfig:
    """Parse an XM_CF document back into a SystemConfig (validated)."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise ConfigError(f"malformed XM_CF document: {error}") from None
    if root.tag != "SystemDescription":
        raise ConfigError(f"unexpected root element {root.tag!r}")
    processor = root.find("HwDescription/Processor")
    config = SystemConfig(
        cores=int(processor.get("cores", "4")),
        context_switch_us=float(processor.get("contextSwitchUs", "2.0")))

    for part_el in root.findall("PartitionTable/Partition"):
        memory: List[MemoryArea] = []
        for area_el in part_el.findall("MemoryArea"):
            memory.append(MemoryArea(
                name=area_el.get("name"),
                base=int(area_el.get("start"), 0),
                size=int(area_el.get("size"))))
        config.add_partition(
            int(part_el.get("id")), part_el.get("name"), memory,
            criticality=part_el.get("criticality", "DAL-B"),
            system_partition=part_el.get("system") == "yes")

    for plan_el in root.findall("CyclicPlanTable/Plan"):
        plan = config.add_plan(int(plan_el.get("id")),
                               float(plan_el.get("majorFrameUs")))
        for slot_el in plan_el.findall("Slot"):
            plan.add_window(
                int(slot_el.get("partitionId")),
                int(slot_el.get("vCpuId")),
                float(slot_el.get("startUs")),
                float(slot_el.get("durationUs")))

    for channel_el in root.findall("Channels/*"):
        kind = PortKind.SAMPLING if channel_el.tag == "SamplingChannel" \
            else PortKind.QUEUING
        destinations = [int(d) for d in
                        channel_el.get("destinations", "").split(",") if d]
        config.add_port(channel_el.get("name"), kind,
                        int(channel_el.get("source")), destinations,
                        depth=int(channel_el.get("depth", "8")))

    problems = config.validate()
    if problems:
        raise ConfigError("XM_CF failed validation: "
                          + "; ".join(problems[:3]))
    return config
