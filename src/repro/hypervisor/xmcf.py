"""XM_CF: the XtratuM XML configuration format.

Real XtratuM systems are configured through an XML file (XM_CF) compiled
into a binary configuration table.  This module serializes and parses the
:class:`SystemConfig` model in that style, so configurations can be
stored with a mission's datapack and round-tripped through review tools.
"""

from __future__ import annotations

from typing import List
from xml.etree import ElementTree

from .config import (
    ConfigError,
    MemoryArea,
    Plan,
    PortKind,
    SystemConfig,
)


def config_to_xml(config: SystemConfig) -> str:
    """Render a SystemConfig as an XM_CF-style XML document."""
    root = ElementTree.Element(
        "SystemDescription", version="1.0",
        name="hermes-ngultra")
    hw = ElementTree.SubElement(root, "HwDescription")
    ElementTree.SubElement(
        hw, "Processor", cores=str(config.cores),
        contextSwitchUs=f"{config.context_switch_us}")

    partitions_el = ElementTree.SubElement(root, "PartitionTable")
    for pid in sorted(config.partitions):
        partition = config.partitions[pid]
        part_el = ElementTree.SubElement(
            partitions_el, "Partition", id=str(pid), name=partition.name,
            criticality=partition.criticality,
            system=("yes" if partition.system_partition else "no"))
        for area in partition.memory:
            ElementTree.SubElement(
                part_el, "MemoryArea", name=area.name,
                start=f"0x{area.base:08x}", size=str(area.size))

    plans_el = ElementTree.SubElement(root, "CyclicPlanTable")
    for plan_id in sorted(config.plans):
        plan = config.plans[plan_id]
        plan_el = ElementTree.SubElement(
            plans_el, "Plan", id=str(plan_id),
            majorFrameUs=f"{plan.major_frame_us}")
        for window in plan.windows:
            ElementTree.SubElement(
                plan_el, "Slot", partitionId=str(window.partition),
                vCpuId=str(window.core), startUs=f"{window.start_us}",
                durationUs=f"{window.duration_us}")

    channels_el = ElementTree.SubElement(root, "Channels")
    for name in sorted(config.ports):
        port = config.ports[name]
        ElementTree.SubElement(
            channels_el,
            "SamplingChannel" if port.kind is PortKind.SAMPLING
            else "QueuingChannel",
            name=name, source=str(port.source),
            destinations=",".join(str(d) for d in port.destinations),
            depth=str(port.depth))
    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")


def _require(element: ElementTree.Element, attribute: str) -> str:
    """Fetch a mandatory attribute or fail with a locatable message."""
    value = element.get(attribute)
    if value is None:
        raise ConfigError(
            f"XM_CF element <{element.tag}> is missing required "
            f"attribute {attribute!r}")
    return value


def config_from_xml(text: str, validate: bool = True) -> SystemConfig:
    """Parse an XM_CF document back into a SystemConfig.

    Raises :class:`ConfigError` with a locatable message on any missing
    mandatory element or attribute (never an ``AttributeError``).  With
    ``validate=False`` the global consistency checks are skipped, so
    review tools (``repro lint``) can inspect a *broken* configuration
    instead of being stopped at the door.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise ConfigError(f"malformed XM_CF document: {error}") from None
    if root.tag != "SystemDescription":
        raise ConfigError(f"unexpected root element {root.tag!r}")
    processor = root.find("HwDescription/Processor")
    if processor is None:
        raise ConfigError(
            "XM_CF document has no HwDescription/Processor element")
    config = SystemConfig(
        cores=int(processor.get("cores", "4")),
        context_switch_us=float(processor.get("contextSwitchUs", "2.0")))

    for part_el in root.findall("PartitionTable/Partition"):
        memory: List[MemoryArea] = []
        for area_el in part_el.findall("MemoryArea"):
            memory.append(MemoryArea(
                name=_require(area_el, "name"),
                base=int(_require(area_el, "start"), 0),
                size=int(_require(area_el, "size"))))
        config.add_partition(
            int(_require(part_el, "id")), _require(part_el, "name"),
            memory,
            criticality=part_el.get("criticality", "DAL-B"),
            system_partition=part_el.get("system") == "yes")

    for plan_el in root.findall("CyclicPlanTable/Plan"):
        plan = config.add_plan(int(_require(plan_el, "id")),
                               float(_require(plan_el, "majorFrameUs")))
        for slot_el in plan_el.findall("Slot"):
            plan.add_window(
                int(_require(slot_el, "partitionId")),
                int(_require(slot_el, "vCpuId")),
                float(_require(slot_el, "startUs")),
                float(_require(slot_el, "durationUs")))

    for channel_el in root.findall("Channels/*"):
        kind = PortKind.SAMPLING if channel_el.tag == "SamplingChannel" \
            else PortKind.QUEUING
        destinations = [int(d) for d in
                        channel_el.get("destinations", "").split(",") if d]
        config.add_port(_require(channel_el, "name"), kind,
                        int(_require(channel_el, "source")), destinations,
                        depth=int(channel_el.get("depth", "8")))

    if validate:
        problems = config.validate()
        if problems:
            raise ConfigError("XM_CF failed validation: "
                              + "; ".join(problems[:3]))
    return config
