"""Health monitor: event classification and recovery actions.

XtratuM's health monitor maps detected events (partition faults, window
overruns, memory violations...) to configured actions.  The default table
follows safety practice for DAL-B systems: contain the fault at partition
level, never let it propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Tracer


class HmEvent(Enum):
    PARTITION_FAULT = "partition_fault"
    WINDOW_OVERRUN = "window_overrun"
    MEMORY_VIOLATION = "memory_violation"
    PORT_VIOLATION = "port_violation"
    DEADLINE_MISS = "deadline_miss"
    NUMERIC_ERROR = "numeric_error"


class HmAction(Enum):
    IGNORE = "ignore"
    LOG = "log"
    SUSPEND_PARTITION = "suspend"
    RESTART_PARTITION = "restart"
    HALT_PARTITION = "halt"
    SYSTEM_RESET = "system_reset"


DEFAULT_ACTION_TABLE: Dict[HmEvent, HmAction] = {
    HmEvent.PARTITION_FAULT: HmAction.RESTART_PARTITION,
    HmEvent.WINDOW_OVERRUN: HmAction.LOG,
    HmEvent.MEMORY_VIOLATION: HmAction.HALT_PARTITION,
    HmEvent.PORT_VIOLATION: HmAction.SUSPEND_PARTITION,
    HmEvent.DEADLINE_MISS: HmAction.LOG,
    HmEvent.NUMERIC_ERROR: HmAction.LOG,
}


@dataclass
class HmLogEntry:
    time_us: float
    partition: Optional[int]
    event: HmEvent
    action: HmAction
    detail: str = ""


class HealthMonitor:
    def __init__(self,
                 table: Optional[Dict[HmEvent, HmAction]] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        self.table = dict(DEFAULT_ACTION_TABLE)
        if table:
            self.table.update(table)
        self.tracer = tracer
        self.log: List[HmLogEntry] = []
        self.system_reset_requested = False

    def report(self, time_us: float, partition: Optional[int],
               event: HmEvent, detail: str = "") -> HmAction:
        action = self.table.get(event, HmAction.LOG)
        self.log.append(HmLogEntry(time_us=time_us, partition=partition,
                                   event=event, action=action,
                                   detail=detail))
        if self.tracer is not None:
            self.tracer.event(event.value, "hm", at=time_us,
                              partition=partition, action=action.value,
                              detail=detail)
            self.tracer.counter(f"hm.{event.value}", "hm").add()
        if action is HmAction.SYSTEM_RESET:
            self.system_reset_requested = True
        return action

    def events_for(self, partition: int) -> List[HmLogEntry]:
        return [e for e in self.log if e.partition == partition]

    def count(self, event: HmEvent) -> int:
        return sum(1 for e in self.log if e.event is event)
