"""Static timing analysis over the placed (and optionally routed) netlist.

Levelized arrival-time propagation from timing start points (primary
inputs and flip-flop outputs) to end points (flip-flop inputs and primary
outputs).  Cell delays come from the device model; interconnect delay is
the Manhattan distance between placed cells (or the actual routed path
length when routing results are supplied) times the per-tile wire delay.
This is the STA step NXmap runs after place and route (paper Fig. 3).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .device import Device
from .netlist import BRAM, CARRY, DFF, DSP, IOB, LUT4, Cell, Netlist
from .routing import RoutingResult

#: Bumped whenever the STA algorithm changes in a way that can alter
#: reports for identical inputs; salts the flow-cache stage key so stale
#: artifacts from older kernels are never served.
STA_KERNEL_VERSION = 2


class TimingError(Exception):
    pass


@dataclass
class TimingPathSegment:
    cell: str
    kind: str
    arrival_ns: float


@dataclass
class TimingReport:
    critical_path_ns: float
    fmax_mhz: float
    target_clock_ns: Optional[float]
    slack_ns: Optional[float]
    critical_path: List[TimingPathSegment] = field(default_factory=list)
    endpoint: Optional[str] = None

    @property
    def timing_met(self) -> bool:
        return self.slack_ns is None or self.slack_ns >= 0

    def render(self) -> str:
        """STA report text (the ``staReport`` artifact of the NXmap flow)."""
        lines = [f"Static timing report",
                 f"  critical path : {self.critical_path_ns:.3f} ns",
                 f"  Fmax          : {self.fmax_mhz:.1f} MHz"]
        if self.target_clock_ns is not None:
            status = "MET" if self.timing_met else "VIOLATED"
            lines.append(f"  target        : {self.target_clock_ns:.3f} ns "
                         f"(slack {self.slack_ns:+.3f} ns, {status})")
        if self.endpoint:
            lines.append(f"  endpoint      : {self.endpoint}")
        if self.critical_path:
            lines.append("  path:")
            for segment in self.critical_path[-12:]:
                lines.append(f"    {segment.arrival_ns:8.3f} ns  "
                             f"{segment.kind:<6} {segment.cell}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "critical_path_ns": self.critical_path_ns,
            "fmax_mhz": self.fmax_mhz,
            "target_clock_ns": self.target_clock_ns,
            "slack_ns": self.slack_ns,
            "critical_path": [
                {"cell": s.cell, "kind": s.kind, "arrival_ns": s.arrival_ns}
                for s in self.critical_path],
            "endpoint": self.endpoint,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TimingReport":
        return cls(
            critical_path_ns=payload["critical_path_ns"],
            fmax_mhz=payload["fmax_mhz"],
            target_clock_ns=payload["target_clock_ns"],
            slack_ns=payload["slack_ns"],
            critical_path=[
                TimingPathSegment(cell=s["cell"], kind=s["kind"],
                                  arrival_ns=s["arrival_ns"])
                for s in payload["critical_path"]],
            endpoint=payload["endpoint"],
        )


def _cell_delay(cell: Cell, device: Device) -> float:
    if cell.kind in (LUT4, CARRY, IOB):
        return device.lut_delay_ns
    if cell.kind == DSP:
        return device.dsp_delay_ns
    if cell.kind == BRAM:
        return device.bram_delay_ns
    if cell.kind == DFF:
        return 0.2  # clock-to-out
    raise TimingError(f"no delay model for {cell.kind}")


def _cell_tile(cell: Cell,
               locations: Optional[Dict[str, Tuple[int, int]]]
               ) -> Optional[Tuple[int, int]]:
    """A cell's placed tile: the explicit map, else the legacy annotation.

    ``cell.location`` is a deprecation shim — placement no longer writes
    it (mutating the input netlist poisons content-addressed stage
    reuse); callers pass ``PlacementResult.locations`` instead.

    When an explicit map is given but does not cover the cell, a stale
    ``cell.location`` annotation is an error, not a fallback: silently
    mixing the map's tiles with annotation tiles from some *other*
    placement produces wire delays no placement ever had.
    """
    if locations is not None:
        tile = locations.get(cell.name)
        if tile is None and cell.location is not None:
            raise TimingError(
                f"cell {cell.name!r} is missing from the placement map "
                f"but carries a stale location annotation "
                f"{cell.location!r}; refusing the legacy fallback "
                f"(see the netlist.stale-placement lint rule)")
        return tile
    return cell.location


def _net_route_lengths(routing: RoutingResult) -> Dict[str, int]:
    """Routed length of every net, computed once per analysis.

    ``RoutingResult.route_length`` walks the net's path list on every
    call; the old STA invoked it per *edge*, so a fanout-N net was
    rescanned N times.  One pass over ``routes`` here makes the per-edge
    lookup O(1).
    """
    return {net_name: sum(max(0, len(path) - 1) for path in paths)
            for net_name, paths in routing.routes.items()}


def _wire_delay(netlist: Netlist, driver: Cell, sink: Cell, device: Device,
                net_lengths: Optional[Dict[str, int]],
                locations: Optional[Dict[str, Tuple[int, int]]] = None
                ) -> float:
    driver_tile = _cell_tile(driver, locations)
    sink_tile = _cell_tile(sink, locations)
    if driver_tile is None or sink_tile is None:
        return device.wire_delay_per_tile_ns  # unplaced: nominal hop
    if net_lengths is not None and driver.output in net_lengths:
        length = net_lengths[driver.output]
        fanout = max(1, netlist.nets[driver.output].fanout)
        return device.wire_delay_per_tile_ns * max(1, length / fanout)
    dx = abs(driver_tile[0] - sink_tile[0])
    dy = abs(driver_tile[1] - sink_tile[1])
    return device.wire_delay_per_tile_ns * max(1, dx + dy)


@dataclass
class StaState:
    """The reusable intermediate state of one full timing analysis.

    ``arrivals``/``parents`` cover every combinational cell;
    ``endpoint_delays``/``endpoint_sources`` cover every timing end
    point, keyed ``cell:<name>`` (a sequential cell's data input) or
    ``out:<net>`` (a primary output).  The ECO flow caches this state so
    a later edit re-propagates only the fan-out cone of the changed
    cells and *merges* the recomputed slacks into it
    (:func:`analyze_timing_cone`).
    """

    arrivals: Dict[str, float] = field(default_factory=dict)
    parents: Dict[str, Optional[str]] = field(default_factory=dict)
    endpoint_delays: Dict[str, float] = field(default_factory=dict)
    endpoint_sources: Dict[str, Optional[str]] = \
        field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "arrivals": dict(sorted(self.arrivals.items())),
            "parents": dict(sorted(self.parents.items())),
            "endpoint_delays": dict(sorted(self.endpoint_delays.items())),
            "endpoint_sources": dict(
                sorted(self.endpoint_sources.items())),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StaState":
        return cls(
            arrivals=dict(payload["arrivals"]),
            parents=dict(payload["parents"]),
            endpoint_delays=dict(payload["endpoint_delays"]),
            endpoint_sources=dict(payload["endpoint_sources"]),
        )


def _endpoint_keys(netlist: Netlist) -> List[str]:
    """Every endpoint key in the canonical scan order.

    The order (sequential cells in netlist order, then primary outputs)
    is the tie-breaking order of the critical-path selection, so full
    and cone-merged analyses pick identical endpoints on equal delays.
    """
    keys = [f"cell:{cell.name}" for cell in netlist.cells.values()
            if cell.is_sequential]
    keys.extend(f"out:{net_name}" for net_name in netlist.outputs)
    return keys


def _propagate(netlist: Netlist, device: Device,
               net_lengths: Optional[Dict[str, int]],
               locations: Optional[Dict[str, Tuple[int, int]]]
               ) -> Tuple[Dict[str, float], Dict[str, Optional[str]]]:
    """Levelized arrival propagation over combinational cells."""
    indegree: Dict[str, int] = {}
    for cell in netlist.cells.values():
        if cell.is_sequential:
            continue
        count = 0
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if net and net.driver:
                driver = netlist.cells[net.driver]
                if not driver.is_sequential:
                    count += 1
        indegree[cell.name] = count

    arrival: Dict[str, float] = {}
    parent: Dict[str, Optional[str]] = {}

    def input_arrival(cell: Cell) -> Tuple[float, Optional[str]]:
        worst = 0.0
        source: Optional[str] = None
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if not net or not net.driver:
                continue
            driver = netlist.cells[net.driver]
            wire = _wire_delay(netlist, driver, cell, device, net_lengths,
                               locations)
            if driver.is_sequential:
                candidate = _cell_delay(driver, device) + wire
            else:
                candidate = arrival.get(driver.name, 0.0) + wire
            if candidate > worst:
                worst = candidate
                source = driver.name
        return worst, source

    queue = deque(name for name, deg in indegree.items() if deg == 0)
    processed = 0
    while queue:
        name = queue.popleft()
        processed += 1
        cell = netlist.cells[name]
        base, source = input_arrival(cell)
        arrival[name] = base + _cell_delay(cell, device)
        parent[name] = source
        if cell.output:
            for sink_name in netlist.nets[cell.output].sinks:
                sink = netlist.cells[sink_name]
                if sink.is_sequential:
                    continue
                indegree[sink_name] -= 1
                if indegree[sink_name] == 0:
                    queue.append(sink_name)
    if processed < len(indegree):
        raise TimingError("combinational loop detected during STA")
    return arrival, parent


def _endpoint_delay(netlist: Netlist, device: Device,
                    net_lengths: Optional[Dict[str, int]],
                    locations: Optional[Dict[str, Tuple[int, int]]],
                    arrival: Dict[str, float], key: str
                    ) -> Optional[Tuple[float, str]]:
    """(delay, source cell) of one endpoint, or None if undriven."""
    kind, _, name = key.partition(":")
    if kind == "cell":
        cell = netlist.cells[name]
        worst: Optional[float] = None
        source: Optional[str] = None
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if not net or not net.driver:
                continue
            driver = netlist.cells[net.driver]
            wire = _wire_delay(netlist, driver, cell, device, net_lengths,
                               locations)
            if driver.is_sequential:
                path = _cell_delay(driver, device) + wire
            else:
                path = arrival.get(driver.name, 0.0) + wire
            path += device.ff_setup_ns
            if worst is None or path > worst:
                worst = path
                source = net.driver
        if worst is None or source is None:
            return None
        return worst, source
    net = netlist.nets.get(name)
    if not net or not net.driver:
        return None
    driver = netlist.cells[net.driver]
    return arrival.get(driver.name, _cell_delay(driver, device)), net.driver


def _report_from_state(netlist: Netlist, device: Device,
                       target_clock_ns: Optional[float],
                       state: StaState) -> TimingReport:
    """Critical-path selection + report rendering from analysis state."""
    critical = 0.0
    endpoint = None
    end_source = None
    for key in _endpoint_keys(netlist):
        value = state.endpoint_delays.get(key)
        if value is None:
            continue
        if value > critical:
            critical = value
            endpoint = key.partition(":")[2]
            end_source = state.endpoint_sources.get(key)

    critical = max(critical, device.lut_delay_ns + device.ff_setup_ns)
    segments: List[TimingPathSegment] = []
    cursor = end_source
    while cursor is not None and cursor in netlist.cells \
            and len(segments) < 256:
        cell = netlist.cells[cursor]
        segments.append(TimingPathSegment(
            cell=cursor, kind=cell.kind,
            arrival_ns=state.arrivals.get(cursor, 0.0)))
        cursor = state.parents.get(cursor)
    segments.reverse()

    slack = None
    if target_clock_ns is not None:
        slack = target_clock_ns - critical
    return TimingReport(
        critical_path_ns=critical,
        fmax_mhz=1000.0 / critical,
        target_clock_ns=target_clock_ns,
        slack_ns=slack,
        critical_path=segments,
        endpoint=endpoint)


def analyze_timing_state(netlist: Netlist, device: Device,
                         target_clock_ns: Optional[float] = None,
                         routing: Optional[RoutingResult] = None,
                         locations: Optional[Dict[str, Tuple[int, int]]]
                         = None) -> Tuple[TimingReport, StaState]:
    """Full analysis returning the report *and* the reusable state."""
    net_lengths = (_net_route_lengths(routing)
                   if routing is not None else None)
    arrival, parent = _propagate(netlist, device, net_lengths, locations)
    delays: Dict[str, float] = {}
    sources: Dict[str, Optional[str]] = {}
    for key in _endpoint_keys(netlist):
        found = _endpoint_delay(netlist, device, net_lengths, locations,
                                arrival, key)
        if found is not None:
            delays[key] = found[0]
            sources[key] = found[1]
    state = StaState(arrivals=arrival, parents=parent,
                     endpoint_delays=delays, endpoint_sources=sources)
    return _report_from_state(netlist, device, target_clock_ns,
                              state), state


def analyze_timing(netlist: Netlist, device: Device,
                   target_clock_ns: Optional[float] = None,
                   routing: Optional[RoutingResult] = None,
                   locations: Optional[Dict[str, Tuple[int, int]]] = None
                   ) -> TimingReport:
    """Compute the critical register-to-register (or I/O) path.

    ``locations`` is the placement map (``PlacementResult.locations``);
    without it the analysis assumes nominal one-tile hops, matching the
    pre-placement estimate.  The netlist itself is treated as immutable.
    """
    report, _state = analyze_timing_state(
        netlist, device, target_clock_ns=target_clock_ns,
        routing=routing, locations=locations)
    return report


def analyze_timing_cone(netlist: Netlist, device: Device, base: StaState,
                        changed_cells: Iterable[str],
                        changed_nets: Iterable[str],
                        target_clock_ns: Optional[float] = None,
                        routing: Optional[RoutingResult] = None,
                        locations: Optional[Dict[str, Tuple[int, int]]]
                        = None) -> Tuple[TimingReport, StaState, int]:
    """Cone-limited re-analysis after an incremental edit.

    Worklist-driven: seeds with the changed cells and the sinks of the
    changed nets, recomputes each reached cell's arrival against the
    merged state, and follows fan-out only where the value *actually
    changed* — the cone is the damped ripple of the edit, not the full
    static forward closure (which on deep combinational designs is most
    of the netlist even for a one-cell edit).  Results merge into
    ``base`` — the cached state of the full analysis of the *pre-edit*
    design.  ``changed_nets`` must name every net whose routed length
    or fanout differs from the base analysis (the ECO flow passes its
    rip-up set); under that contract the merged report equals a full
    re-analysis of the edited design exactly.

    Returns ``(report, merged state, cone size)`` — cone size counts
    the cells whose arrival was recomputed.
    """
    net_lengths = (_net_route_lengths(routing)
                   if routing is not None else None)
    changed_cell_set = {name for name in changed_cells
                        if name in netlist.cells}
    changed_net_set = {name for name in changed_nets
                       if name in netlist.nets}

    # Start from the base state pruned to surviving cells.
    merged_arrivals: Dict[str, float] = {}
    merged_parents: Dict[str, Optional[str]] = {}
    for name, value in base.arrivals.items():
        if name in netlist.cells:
            merged_arrivals[name] = value
            merged_parents[name] = base.parents.get(name)

    def input_arrival(cell: Cell) -> Tuple[float, Optional[str]]:
        worst = 0.0
        source: Optional[str] = None
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if not net or not net.driver:
                continue
            driver = netlist.cells[net.driver]
            wire = _wire_delay(netlist, driver, cell, device, net_lengths,
                               locations)
            if driver.is_sequential:
                candidate = _cell_delay(driver, device) + wire
            else:
                candidate = merged_arrivals.get(driver.name, 0.0) + wire
            if candidate > worst:
                worst = candidate
                source = driver.name
        return worst, source

    # Topological levels of the combinational cells (one cheap Kahn
    # pass — no delay arithmetic).  Processing the worklist in level
    # order guarantees every predecessor's final value lands before a
    # cell is recomputed, so each reached cell is visited exactly once;
    # a plain FIFO fixpoint would revisit deep cells once per upstream
    # change.  The pass also detects combinational loops.
    level: Dict[str, int] = {}
    indegree: Dict[str, int] = {}
    for cell in netlist.cells.values():
        if cell.is_sequential:
            continue
        count = 0
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if net and net.driver \
                    and not netlist.cells[net.driver].is_sequential:
                count += 1
        indegree[cell.name] = count
    kahn = deque(name for name, deg in indegree.items() if deg == 0)
    processed = 0
    while kahn:
        name = kahn.popleft()
        processed += 1
        output = netlist.cells[name].output
        if not output:
            continue
        depth = level.get(name, 0) + 1
        for sink in netlist.nets[output].sinks:
            sink_cell = netlist.cells.get(sink)
            if sink_cell is None or sink_cell.is_sequential:
                continue
            if depth > level.get(sink, 0):
                level[sink] = depth
            indegree[sink] -= 1
            if indegree[sink] == 0:
                kahn.append(sink)
    if processed < len(indegree):
        raise TimingError(
            "combinational loop detected during incremental STA")

    heap: List[Tuple[int, str]] = []
    queued: Set[str] = set()

    def enqueue(name: str) -> None:
        if name not in queued:
            queued.add(name)
            heapq.heappush(heap, (level.get(name, 0), name))

    for name in sorted(changed_cell_set):
        if not netlist.cells[name].is_sequential:
            enqueue(name)
    for net_name in sorted(changed_net_set):
        for sink in netlist.nets[net_name].sinks:
            sink_cell = netlist.cells.get(sink)
            if sink_cell is not None and not sink_cell.is_sequential:
                enqueue(sink)

    # Damped ripple: fan-out is followed only where the recomputed
    # value actually differs from the stored one, so the cone stops
    # where the edit's effect dies out.  Untouched cells keep base
    # values that are still correct (their inputs' values and net
    # lengths are unchanged under the changed-nets contract).
    cone: Set[str] = set()
    value_changed: Set[str] = set()
    while heap:
        _depth, name = heapq.heappop(heap)
        queued.discard(name)
        cell = netlist.cells[name]
        cone.add(name)
        arrival_in, source = input_arrival(cell)
        value = arrival_in + _cell_delay(cell, device)
        known = name in merged_arrivals
        old = merged_arrivals.get(name)
        merged_arrivals[name] = value
        merged_parents[name] = source
        if known and old == value:
            continue
        value_changed.add(name)
        if cell.output:
            for sink in netlist.nets[cell.output].sinks:
                sink_cell = netlist.cells.get(sink)
                if sink_cell is not None \
                        and not sink_cell.is_sequential:
                    enqueue(sink)

    # Endpoints to recompute: those fed by a changed net or by a cell
    # whose arrival changed (plus the changed cells themselves).
    affected_nets = set(changed_net_set)
    for name in value_changed:
        output = netlist.cells[name].output
        if output:
            affected_nets.add(output)
    valid_keys = _endpoint_keys(netlist)
    recompute: List[str] = []
    for key in valid_keys:
        kind, _, name = key.partition(":")
        if kind == "cell":
            cell = netlist.cells[name]
            if name in changed_cell_set or \
                    any(net in affected_nets for net in cell.inputs):
                recompute.append(key)
        elif name in affected_nets:
            recompute.append(key)

    recompute_set = set(recompute)
    valid_set = set(valid_keys)
    merged_delays: Dict[str, float] = {}
    merged_sources: Dict[str, Optional[str]] = {}
    for key, value in base.endpoint_delays.items():
        if key in valid_set and key not in recompute_set:
            merged_delays[key] = value
            merged_sources[key] = base.endpoint_sources.get(key)
    for key in recompute:
        found = _endpoint_delay(netlist, device, net_lengths, locations,
                                merged_arrivals, key)
        if found is not None:
            merged_delays[key] = found[0]
            merged_sources[key] = found[1]

    state = StaState(arrivals=merged_arrivals, parents=merged_parents,
                     endpoint_delays=merged_delays,
                     endpoint_sources=merged_sources)
    return _report_from_state(netlist, device, target_clock_ns,
                              state), state, len(cone)
