"""Static timing analysis over the placed (and optionally routed) netlist.

Levelized arrival-time propagation from timing start points (primary
inputs and flip-flop outputs) to end points (flip-flop inputs and primary
outputs).  Cell delays come from the device model; interconnect delay is
the Manhattan distance between placed cells (or the actual routed path
length when routing results are supplied) times the per-tile wire delay.
This is the STA step NXmap runs after place and route (paper Fig. 3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .device import Device
from .netlist import BRAM, CARRY, DFF, DSP, IOB, LUT4, Cell, Netlist
from .routing import RoutingResult

#: Bumped whenever the STA algorithm changes in a way that can alter
#: reports for identical inputs; salts the flow-cache stage key so stale
#: artifacts from older kernels are never served.
STA_KERNEL_VERSION = 2


class TimingError(Exception):
    pass


@dataclass
class TimingPathSegment:
    cell: str
    kind: str
    arrival_ns: float


@dataclass
class TimingReport:
    critical_path_ns: float
    fmax_mhz: float
    target_clock_ns: Optional[float]
    slack_ns: Optional[float]
    critical_path: List[TimingPathSegment] = field(default_factory=list)
    endpoint: Optional[str] = None

    @property
    def timing_met(self) -> bool:
        return self.slack_ns is None or self.slack_ns >= 0

    def render(self) -> str:
        """STA report text (the ``staReport`` artifact of the NXmap flow)."""
        lines = [f"Static timing report",
                 f"  critical path : {self.critical_path_ns:.3f} ns",
                 f"  Fmax          : {self.fmax_mhz:.1f} MHz"]
        if self.target_clock_ns is not None:
            status = "MET" if self.timing_met else "VIOLATED"
            lines.append(f"  target        : {self.target_clock_ns:.3f} ns "
                         f"(slack {self.slack_ns:+.3f} ns, {status})")
        if self.endpoint:
            lines.append(f"  endpoint      : {self.endpoint}")
        if self.critical_path:
            lines.append("  path:")
            for segment in self.critical_path[-12:]:
                lines.append(f"    {segment.arrival_ns:8.3f} ns  "
                             f"{segment.kind:<6} {segment.cell}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "critical_path_ns": self.critical_path_ns,
            "fmax_mhz": self.fmax_mhz,
            "target_clock_ns": self.target_clock_ns,
            "slack_ns": self.slack_ns,
            "critical_path": [
                {"cell": s.cell, "kind": s.kind, "arrival_ns": s.arrival_ns}
                for s in self.critical_path],
            "endpoint": self.endpoint,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TimingReport":
        return cls(
            critical_path_ns=payload["critical_path_ns"],
            fmax_mhz=payload["fmax_mhz"],
            target_clock_ns=payload["target_clock_ns"],
            slack_ns=payload["slack_ns"],
            critical_path=[
                TimingPathSegment(cell=s["cell"], kind=s["kind"],
                                  arrival_ns=s["arrival_ns"])
                for s in payload["critical_path"]],
            endpoint=payload["endpoint"],
        )


def _cell_delay(cell: Cell, device: Device) -> float:
    if cell.kind in (LUT4, CARRY, IOB):
        return device.lut_delay_ns
    if cell.kind == DSP:
        return device.dsp_delay_ns
    if cell.kind == BRAM:
        return device.bram_delay_ns
    if cell.kind == DFF:
        return 0.2  # clock-to-out
    raise TimingError(f"no delay model for {cell.kind}")


def _cell_tile(cell: Cell,
               locations: Optional[Dict[str, Tuple[int, int]]]
               ) -> Optional[Tuple[int, int]]:
    """A cell's placed tile: the explicit map, else the legacy annotation.

    ``cell.location`` is a deprecation shim — placement no longer writes
    it (mutating the input netlist poisons content-addressed stage
    reuse); callers pass ``PlacementResult.locations`` instead.
    """
    if locations is not None:
        return locations.get(cell.name)
    return cell.location


def _net_route_lengths(routing: RoutingResult) -> Dict[str, int]:
    """Routed length of every net, computed once per analysis.

    ``RoutingResult.route_length`` walks the net's path list on every
    call; the old STA invoked it per *edge*, so a fanout-N net was
    rescanned N times.  One pass over ``routes`` here makes the per-edge
    lookup O(1).
    """
    return {net_name: sum(max(0, len(path) - 1) for path in paths)
            for net_name, paths in routing.routes.items()}


def _wire_delay(netlist: Netlist, driver: Cell, sink: Cell, device: Device,
                net_lengths: Optional[Dict[str, int]],
                locations: Optional[Dict[str, Tuple[int, int]]] = None
                ) -> float:
    driver_tile = _cell_tile(driver, locations)
    sink_tile = _cell_tile(sink, locations)
    if driver_tile is None or sink_tile is None:
        return device.wire_delay_per_tile_ns  # unplaced: nominal hop
    if net_lengths is not None and driver.output in net_lengths:
        length = net_lengths[driver.output]
        fanout = max(1, netlist.nets[driver.output].fanout)
        return device.wire_delay_per_tile_ns * max(1, length / fanout)
    dx = abs(driver_tile[0] - sink_tile[0])
    dy = abs(driver_tile[1] - sink_tile[1])
    return device.wire_delay_per_tile_ns * max(1, dx + dy)


def analyze_timing(netlist: Netlist, device: Device,
                   target_clock_ns: Optional[float] = None,
                   routing: Optional[RoutingResult] = None,
                   locations: Optional[Dict[str, Tuple[int, int]]] = None
                   ) -> TimingReport:
    """Compute the critical register-to-register (or I/O) path.

    ``locations`` is the placement map (``PlacementResult.locations``);
    without it the analysis assumes nominal one-tile hops, matching the
    pre-placement estimate.  The netlist itself is treated as immutable.
    """
    net_lengths = (_net_route_lengths(routing)
                   if routing is not None else None)
    # Topological order over combinational cells.
    indegree: Dict[str, int] = {}
    for cell in netlist.cells.values():
        if cell.is_sequential:
            continue
        count = 0
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if net and net.driver:
                driver = netlist.cells[net.driver]
                if not driver.is_sequential:
                    count += 1
        indegree[cell.name] = count

    arrival: Dict[str, float] = {}
    parent: Dict[str, Optional[str]] = {}

    def input_arrival(cell: Cell) -> Tuple[float, Optional[str]]:
        worst = 0.0
        source: Optional[str] = None
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if not net or not net.driver:
                continue
            driver = netlist.cells[net.driver]
            wire = _wire_delay(netlist, driver, cell, device, net_lengths,
                               locations)
            if driver.is_sequential:
                candidate = _cell_delay(driver, device) + wire
            else:
                candidate = arrival.get(driver.name, 0.0) + wire
            if candidate > worst:
                worst = candidate
                source = driver.name
        return worst, source

    queue = deque(name for name, deg in indegree.items() if deg == 0)
    processed = 0
    while queue:
        name = queue.popleft()
        processed += 1
        cell = netlist.cells[name]
        base, source = input_arrival(cell)
        arrival[name] = base + _cell_delay(cell, device)
        parent[name] = source
        if cell.output:
            for sink_name in netlist.nets[cell.output].sinks:
                sink = netlist.cells[sink_name]
                if sink.is_sequential:
                    continue
                indegree[sink_name] -= 1
                if indegree[sink_name] == 0:
                    queue.append(sink_name)
    if processed < len(indegree):
        raise TimingError("combinational loop detected during STA")

    # End points: sequential cell inputs and primary outputs.
    critical = 0.0
    endpoint = None
    end_source = None
    for cell in netlist.cells.values():
        if not cell.is_sequential:
            continue
        for net_name in cell.inputs:
            net = netlist.nets.get(net_name)
            if not net or not net.driver:
                continue
            driver = netlist.cells[net.driver]
            wire = _wire_delay(netlist, driver, cell, device, net_lengths,
                               locations)
            if driver.is_sequential:
                path = _cell_delay(driver, device) + wire
            else:
                path = arrival.get(driver.name, 0.0) + wire
            path += device.ff_setup_ns
            if path > critical:
                critical = path
                endpoint = cell.name
                end_source = net.driver
    for net_name in netlist.outputs:
        net = netlist.nets.get(net_name)
        if not net or not net.driver:
            continue
        driver = netlist.cells[net.driver]
        path = arrival.get(driver.name, _cell_delay(driver, device))
        if path > critical:
            critical = path
            endpoint = net_name
            end_source = net.driver

    critical = max(critical, device.lut_delay_ns + device.ff_setup_ns)
    segments: List[TimingPathSegment] = []
    cursor = end_source
    while cursor is not None and len(segments) < 256:
        cell = netlist.cells[cursor]
        segments.append(TimingPathSegment(
            cell=cursor, kind=cell.kind,
            arrival_ns=arrival.get(cursor, 0.0)))
        cursor = parent.get(cursor)
    segments.reverse()

    slack = None
    if target_clock_ns is not None:
        slack = target_clock_ns - critical
    return TimingReport(
        critical_path_ns=critical,
        fmax_mhz=1000.0 / critical,
        target_clock_ns=target_clock_ns,
        slack_ns=slack,
        critical_path=segments,
        endpoint=endpoint)
