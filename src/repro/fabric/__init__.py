"""NG-ULTRA fabric model and NXmap-equivalent backend flow (paper Fig. 3)."""

from .bitstream import Bitstream, Frame, generate_bitstream
from .device import (
    DEVICE_FAMILY,
    LEGACY_RADHARD,
    NG_LARGE,
    NG_MEDIUM,
    NG_ULTRA,
    Device,
    get_device,
    scaled_device,
)
from .netlist import BRAM, CARRY, DFF, DSP, IOB, LUT4, Cell, Net, Netlist
from .nxmap import (
    FlowError,
    FlowReport,
    NXmapProject,
    PowerReport,
    generate_backend_script,
)
from .placement import PLACE_KERNEL_VERSION, PlacementResult, place
from .routing import ROUTE_KERNEL_VERSION, RoutingResult, route
from .synthesis import (
    SynthesisError,
    supported_components,
    synthesize_component,
    synthesize_design,
)
from .timing import STA_KERNEL_VERSION, TimingReport, analyze_timing

__all__ = [
    "Bitstream", "Frame", "generate_bitstream",
    "DEVICE_FAMILY", "LEGACY_RADHARD", "NG_LARGE", "NG_MEDIUM", "NG_ULTRA",
    "Device", "get_device", "scaled_device",
    "BRAM", "CARRY", "DFF", "DSP", "IOB", "LUT4", "Cell", "Net", "Netlist",
    "FlowError", "FlowReport", "NXmapProject", "PowerReport",
    "generate_backend_script",
    "PLACE_KERNEL_VERSION", "PlacementResult", "place",
    "ROUTE_KERNEL_VERSION", "RoutingResult", "route",
    "STA_KERNEL_VERSION",
    "SynthesisError", "supported_components", "synthesize_component",
    "synthesize_design",
    "TimingReport", "analyze_timing",
]
