"""NG-ULTRA fabric model and NXmap-equivalent backend flow (paper Fig. 3)."""

from .bitstream import Bitstream, Frame, generate_bitstream
from .device import (
    DEVICE_FAMILY,
    LEGACY_RADHARD,
    NG_LARGE,
    NG_MEDIUM,
    NG_ULTRA,
    Device,
    get_device,
    scaled_device,
)
from .eco import (
    ECO_KERNEL_VERSION,
    AddCell,
    DeltaError,
    DeltaImpact,
    EcoFlow,
    EcoReport,
    NetlistDelta,
    ReconnectInput,
    RemoveCell,
    ResizeCell,
    RetargetOutput,
    SetConstraint,
    eco_place,
    random_delta,
)
from .netlist import BRAM, CARRY, DFF, DSP, IOB, LUT4, Cell, Net, Netlist
from .nxmap import (
    FlowError,
    FlowReport,
    NXmapProject,
    PowerReport,
    generate_backend_script,
)
from .placement import PLACE_KERNEL_VERSION, PlacementResult, place
from .routing import ROUTE_KERNEL_VERSION, RoutingResult, route
from .synthesis import (
    SynthesisError,
    supported_components,
    synthesize_component,
    synthesize_design,
    synthesize_random,
)
from .timing import (
    STA_KERNEL_VERSION,
    StaState,
    TimingReport,
    analyze_timing,
    analyze_timing_cone,
    analyze_timing_state,
)

__all__ = [
    "Bitstream", "Frame", "generate_bitstream",
    "DEVICE_FAMILY", "LEGACY_RADHARD", "NG_LARGE", "NG_MEDIUM", "NG_ULTRA",
    "Device", "get_device", "scaled_device",
    "ECO_KERNEL_VERSION", "AddCell", "DeltaError", "DeltaImpact",
    "EcoFlow", "EcoReport", "NetlistDelta", "ReconnectInput", "RemoveCell",
    "ResizeCell", "RetargetOutput", "SetConstraint", "eco_place",
    "random_delta",
    "BRAM", "CARRY", "DFF", "DSP", "IOB", "LUT4", "Cell", "Net", "Netlist",
    "FlowError", "FlowReport", "NXmapProject", "PowerReport",
    "generate_backend_script",
    "PLACE_KERNEL_VERSION", "PlacementResult", "place",
    "ROUTE_KERNEL_VERSION", "RoutingResult", "route",
    "STA_KERNEL_VERSION", "StaState",
    "SynthesisError", "supported_components", "synthesize_component",
    "synthesize_design", "synthesize_random",
    "TimingReport", "analyze_timing", "analyze_timing_cone",
    "analyze_timing_state",
]
