"""Pre-PR-5 baseline physical-implementation kernels.

These are the original (naive) placement and routing algorithms kept as
the QoR/perf oracle for ``benchmarks/bench_flow_kernels.py``: the
incremental kernels in :mod:`.placement` / :mod:`.routing` must beat
them ≥3x in wall time on a large design while staying within 5% on HPWL
and routed wirelength.  Nothing in the production flow calls these.

Baseline behaviour (what the incremental kernels replaced):

* ``reference_place`` re-derives the HPWL of every net touching a cell
  from scratch on each annealing move and rejection-samples free sites
  (up to 200 tries per move on dense grids).
* ``reference_route`` clears all edge usage and re-routes **every**
  connection on each negotiation pass, routing each sink of a multi-pin
  net as an independent driver→sink A* with no sharing.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, List, Optional, Tuple

from .device import Device
from .netlist import Netlist
from .placement import (
    PlacementError,
    PlacementResult,
    _Grid,
    _net_hpwl,
    total_hpwl,
)
from .routing import Edge, RoutingResult, Tile, _edge


def _random_tile(grid: _Grid, kind: str, rng: random.Random
                 ) -> Tuple[int, int]:
    """The original rejection sampler: up to 200 uniform draws."""
    for _ in range(200):
        col = rng.randrange(grid.cols)
        row = rng.randrange(grid.rows)
        if grid.capacity_left(kind, (col, row)):
            return (col, row)
    raise PlacementError("no free site found (grid saturated)")


def reference_place(netlist: Netlist, device: Device, seed: int = 1,
                    effort: float = 1.0) -> PlacementResult:
    """The original O(net-size)-per-move annealer (baseline oracle)."""
    rng = random.Random(seed)
    grid = _Grid(device, netlist)
    locations: Dict[str, Tuple[int, int]] = {}

    for cell in netlist.cells.values():
        tile = _random_tile(grid, cell.kind, rng)
        grid.occupy(cell.kind, tile)
        locations[cell.name] = tile

    nets_of_cell: Dict[str, List[str]] = {name: [] for name in netlist.cells}
    for net in netlist.nets.values():
        if net.driver in nets_of_cell:
            nets_of_cell[net.driver].append(net.name)
        for sink in net.sinks:
            if sink in nets_of_cell:
                nets_of_cell[sink].append(net.name)

    cost = total_hpwl(netlist, locations)
    initial = cost
    cell_names = list(netlist.cells)
    if not cell_names:
        return PlacementResult(locations, 0.0, 0.0, 0,
                               (grid.cols, grid.rows))
    moves = max(200, int(100 * effort * len(cell_names)))
    temperature = max(1.0, cost / max(1, len(cell_names)) * 2)
    cooling = 0.95 ** (1.0 / max(1, moves // 100))
    iterations = 0
    for _ in range(moves):
        iterations += 1
        name = rng.choice(cell_names)
        cell = netlist.cells[name]
        old_tile = locations[name]
        try:
            new_tile = _random_tile(grid, cell.kind, rng)
        except PlacementError:
            continue
        affected = nets_of_cell[name]
        before = sum(_net_hpwl(netlist, locations, n) for n in affected)
        locations[name] = new_tile
        after = sum(_net_hpwl(netlist, locations, n) for n in affected)
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            grid.release(cell.kind, old_tile)
            grid.occupy(cell.kind, new_tile)
            cost += delta
        else:
            locations[name] = old_tile
        temperature = max(0.01, temperature * cooling)
    return PlacementResult(locations=locations, hpwl=cost,
                           initial_hpwl=initial, iterations=iterations,
                           grid=(grid.cols, grid.rows))


def _astar(start: Tile, goal: Tile, grid: Tuple[int, int],
           usage: Dict[Edge, int], channel_width: int,
           congestion_penalty: float) -> Optional[List[Tile]]:
    cols, rows = grid
    frontier: List[Tuple[float, float, int, Tile]] = [(0.0, 0.0, 0, start)]
    came: Dict[Tile, Tile] = {}
    best: Dict[Tile, float] = {start: 0.0}
    counter = 0
    while frontier:
        _f, g, _, tile = heapq.heappop(frontier)
        if tile == goal:
            path = [tile]
            while tile in came:
                tile = came[tile]
                path.append(tile)
            path.reverse()
            return path
        if g > best.get(tile, float("inf")):
            continue  # stale entry
        col, row = tile
        for neighbour in ((col + 1, row), (col - 1, row),
                          (col, row + 1), (col, row - 1)):
            ncol, nrow = neighbour
            if not (0 <= ncol < cols and 0 <= nrow < rows):
                continue
            used = usage.get(_edge(tile, neighbour), 0)
            step = 1.0
            if used >= channel_width:
                step += congestion_penalty * (used - channel_width + 1)
            new_cost = g + step
            if new_cost < best.get(neighbour, float("inf")):
                best[neighbour] = new_cost
                came[neighbour] = tile
                counter += 1
                heuristic = abs(ncol - goal[0]) + abs(nrow - goal[1])
                heapq.heappush(frontier,
                               (new_cost + heuristic, new_cost, counter,
                                neighbour))
    return None


def reference_route(netlist: Netlist, locations: Dict[str, Tile],
                    grid: Tuple[int, int], channel_width: int = 16,
                    max_iterations: int = 3) -> RoutingResult:
    """The original full-reroute negotiation loop (baseline oracle)."""
    connections: List[Tuple[str, Tile, Tile]] = []
    for net in netlist.nets.values():
        if net.driver is None or net.driver not in locations:
            continue
        source = locations[net.driver]
        for sink in net.sinks:
            if sink not in locations:
                continue
            target = locations[sink]
            if target != source:
                connections.append((net.name, source, target))

    usage: Dict[Edge, int] = {}
    routes: Dict[str, List[List[Tile]]] = {}
    failed = 0
    iterations = 0
    penalty = 0.5
    for _iteration in range(max_iterations):
        iterations += 1
        usage.clear()
        routes.clear()
        failed = 0
        for net_name, source, target in connections:
            path = _astar(source, target, grid, usage, channel_width,
                          penalty)
            if path is None:
                failed += 1
                continue
            for a, b in zip(path, path[1:]):
                edge = _edge(a, b)
                usage[edge] = usage.get(edge, 0) + 1
            routes.setdefault(net_name, []).append(path)
        overflow = sum(1 for used in usage.values()
                       if used > channel_width)
        if overflow == 0 and failed == 0:
            break
        penalty *= 4
    wirelength = sum(count for count in usage.values())
    max_congestion = max(usage.values(), default=0)
    overflow_edges = sum(1 for used in usage.values()
                         if used > channel_width)
    return RoutingResult(
        wirelength=wirelength, max_congestion=max_congestion,
        overflow_edges=overflow_edges,
        routed_connections=len(connections) - failed,
        failed_connections=failed, iterations=iterations,
        channel_width=channel_width, routes=routes)
