"""Configuration bitstream generation.

Frame-oriented layout like real SRAM FPGAs: one frame per tile column,
each tile contributing LUT init tables, FF configuration and routing
switch bits.  Every frame carries a CRC32, which is what the configuration
scrubber and the BL1 boot loader check ("management of ... proper eFPGA
matrix programming", paper §IV).  The bitstream tracks *essential* bits
(bits that belong to used logic) so SEU campaigns can report meaningful
cross-sections.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .device import LUTS_PER_TILE
from .netlist import BRAM, CARRY, DFF, DSP, LUT4, Netlist

# Per-tile configuration budget (bits).
_LUT_INIT_BITS = 16
_FF_CFG_BITS = 2
_ROUTING_BITS = 64
TILE_CONFIG_BITS = (LUTS_PER_TILE * (_LUT_INIT_BITS + _FF_CFG_BITS)
                    + _ROUTING_BITS)


class BitstreamError(Exception):
    pass


@dataclass
class Frame:
    index: int
    data: bytearray
    crc: int = 0

    def compute_crc(self) -> int:
        return zlib.crc32(bytes(self.data)) & 0xFFFFFFFF

    def seal(self) -> None:
        self.crc = self.compute_crc()

    @property
    def intact(self) -> bool:
        return self.crc == self.compute_crc()


@dataclass
class Bitstream:
    device_name: str
    grid: Tuple[int, int]
    frames: List[Frame] = field(default_factory=list)
    essential: Set[int] = field(default_factory=set)   # global bit indices
    golden: Optional[bytes] = None

    @property
    def frame_bits(self) -> int:
        return self.grid[1] * TILE_CONFIG_BITS

    @property
    def total_bits(self) -> int:
        return len(self.frames) * self.frame_bits

    @property
    def essential_bits(self) -> int:
        return len(self.essential)

    def _locate(self, bit_index: int) -> Tuple[int, int]:
        if not 0 <= bit_index < self.total_bits:
            raise BitstreamError(f"bit {bit_index} out of range")
        return divmod(bit_index, self.frame_bits)

    def get_bit(self, bit_index: int) -> int:
        frame_idx, offset = self._locate(bit_index)
        byte, bit = divmod(offset, 8)
        return (self.frames[frame_idx].data[byte] >> bit) & 1

    def flip_bit(self, bit_index: int) -> None:
        """Inject an SEU: toggle one configuration bit."""
        frame_idx, offset = self._locate(bit_index)
        byte, bit = divmod(offset, 8)
        self.frames[frame_idx].data[byte] ^= (1 << bit)

    def corrupted_frames(self) -> List[int]:
        """Frames whose CRC no longer matches (scrubber detection)."""
        return [f.index for f in self.frames if not f.intact]

    def is_essential(self, bit_index: int) -> bool:
        return bit_index in self.essential

    def snapshot_golden(self) -> None:
        self.golden = b"".join(bytes(f.data) for f in self.frames)

    def scrub(self) -> int:
        """Repair corrupted frames from the golden copy; returns count."""
        if self.golden is None:
            raise BitstreamError("no golden copy captured")
        frame_bytes = len(self.frames[0].data) if self.frames else 0
        repaired = 0
        for frame in self.frames:
            if frame.intact:
                continue
            start = frame.index * frame_bytes
            frame.data[:] = self.golden[start:start + frame_bytes]
            frame.seal()
            repaired += 1
        return repaired

    def to_json(self) -> dict:
        return {
            "device_name": self.device_name,
            "grid": list(self.grid),
            "frames": [{"index": f.index, "data": bytes(f.data).hex(),
                        "crc": f.crc} for f in self.frames],
            "essential": sorted(self.essential),
            "golden": self.golden.hex() if self.golden is not None else None,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Bitstream":
        golden = payload["golden"]
        return cls(
            device_name=payload["device_name"],
            grid=(int(payload["grid"][0]), int(payload["grid"][1])),
            frames=[Frame(index=f["index"],
                          data=bytearray.fromhex(f["data"]), crc=f["crc"])
                    for f in payload["frames"]],
            essential=set(payload["essential"]),
            golden=bytes.fromhex(golden) if golden is not None else None,
        )

    def to_bytes(self) -> bytes:
        """Serialized bitstream: header + frames with CRCs.

        Header: magic, device name (16 B), cols, rows, frame payload
        bytes (4 B) — the explicit frame length lets loaders tolerate
        trailing padding from word-aligned transports.
        """
        frame_bytes = len(self.frames[0].data) if self.frames else 0
        header = (b"NGBS"
                  + self.device_name.encode()[:16].ljust(16, b"\0")
                  + self.grid[0].to_bytes(2, "little")
                  + self.grid[1].to_bytes(2, "little")
                  + frame_bytes.to_bytes(4, "little"))
        body = b""
        for frame in self.frames:
            body += frame.crc.to_bytes(4, "little") + bytes(frame.data)
        return header + body


def generate_bitstream(netlist: Netlist, locations: Dict[str, Tuple[int, int]],
                       grid: Tuple[int, int], device_name: str,
                       seed: int = 0) -> Bitstream:
    """Build the configuration bitstream for a placed design.

    Used LUTs write their init tables into the owning tile's config space;
    placed cells mark their bits (plus a routing share) as essential.
    """
    cols, rows = grid
    frame_bytes = (rows * TILE_CONFIG_BITS + 7) // 8
    bitstream = Bitstream(device_name=device_name, grid=grid)
    for col in range(cols):
        bitstream.frames.append(Frame(index=col,
                                      data=bytearray(frame_bytes)))

    # Track per-tile LUT slot allocation.
    slot_of_tile: Dict[Tuple[int, int], int] = {}
    for name, cell in netlist.cells.items():
        tile = locations.get(name)
        if tile is None:
            continue
        col, row = tile
        tile_base = row * TILE_CONFIG_BITS
        frame = bitstream.frames[col]
        global_base = col * bitstream.frame_bits + tile_base
        if cell.kind in (LUT4, CARRY):
            slot = slot_of_tile.get(tile, 0)
            slot_of_tile[tile] = slot + 1
            slot %= LUTS_PER_TILE
            offset = tile_base + slot * _LUT_INIT_BITS
            init = cell.init & 0xFFFF
            for bit in range(_LUT_INIT_BITS):
                if (init >> bit) & 1:
                    byte, sub = divmod(offset + bit, 8)
                    frame.data[byte] |= (1 << sub)
                bitstream.essential.add(global_base
                                        + slot * _LUT_INIT_BITS + bit)
        elif cell.kind == DFF:
            base = tile_base + LUTS_PER_TILE * _LUT_INIT_BITS
            byte, sub = divmod(base, 8)
            frame.data[byte] |= (1 << sub)
            bitstream.essential.add(global_base
                                    + LUTS_PER_TILE * _LUT_INIT_BITS)
        elif cell.kind in (DSP, BRAM):
            base = tile_base + LUTS_PER_TILE * (_LUT_INIT_BITS + _FF_CFG_BITS)
            for bit in range(16):
                bitstream.essential.add(global_base + LUTS_PER_TILE
                                        * (_LUT_INIT_BITS + _FF_CFG_BITS)
                                        + bit)
            byte, sub = divmod(base, 8)
            frame.data[byte] |= (1 << sub)
        # Routing share: mark a slice of the tile routing bits essential.
        routing_base = (tile_base + LUTS_PER_TILE
                        * (_LUT_INIT_BITS + _FF_CFG_BITS))
        for bit in range(8):
            bitstream.essential.add(global_base + LUTS_PER_TILE
                                    * (_LUT_INIT_BITS + _FF_CFG_BITS) + bit)
        del routing_base
    for frame in bitstream.frames:
        frame.seal()
    bitstream.snapshot_golden()
    return bitstream
