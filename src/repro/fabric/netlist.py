"""Technology netlist: the cell-level representation consumed by the
NXmap-equivalent backend (synthesis output, place/route/STA input)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Cell kinds of the modelled NG fabric.
LUT4 = "LUT4"
DFF = "DFF"
DSP = "DSP"
BRAM = "BRAM"
IOB = "IOB"
CARRY = "CARRY"

CELL_KINDS = {LUT4, DFF, DSP, BRAM, IOB, CARRY}

# How many fabric placement sites each cell kind consumes.
_SEQUENTIAL = {DFF, DSP, BRAM}


class NetlistError(Exception):
    pass


@dataclass
class Cell:
    name: str
    kind: str
    inputs: List[str] = field(default_factory=list)    # net names
    output: Optional[str] = None                       # net name
    init: int = 0            # LUT truth table / config word
    location: Optional[tuple] = None                   # set by placement

    @property
    def is_sequential(self) -> bool:
        return self.kind in _SEQUENTIAL

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise NetlistError(f"unknown cell kind {self.kind!r}")
        if self.kind == LUT4 and len(self.inputs) > 4:
            raise NetlistError(
                f"{self.name}: LUT4 has {len(self.inputs)} inputs")


@dataclass
class Net:
    name: str
    driver: Optional[str] = None          # cell name
    sinks: List[str] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.sinks)


class Netlist:
    """A flat technology netlist."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self.nets: Dict[str, Net] = {}
        self.inputs: List[str] = []       # primary input net names
        self.outputs: List[str] = []      # primary output net names
        self._counter = itertools.count()

    # -- construction ------------------------------------------------------

    def new_net(self, hint: str = "n") -> str:
        name = f"{hint}{next(self._counter)}"
        self.nets[name] = Net(name)
        return name

    def ensure_net(self, name: str) -> Net:
        if name not in self.nets:
            self.nets[name] = Net(name)
        return self.nets[name]

    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self.cells:
            raise NetlistError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell
        for net_name in cell.inputs:
            self.ensure_net(net_name).sinks.append(cell.name)
        if cell.output is not None:
            net = self.ensure_net(cell.output)
            if net.driver is not None:
                raise NetlistError(
                    f"net {net.name!r} driven twice "
                    f"({net.driver} and {cell.name})")
            net.driver = cell.name
        return cell

    def add_input(self, net_name: str) -> str:
        self.ensure_net(net_name)
        self.inputs.append(net_name)
        return net_name

    def add_output(self, net_name: str) -> str:
        self.ensure_net(net_name)
        self.outputs.append(net_name)
        return net_name

    # -- editing -----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """A structural deep copy (cells, nets, ports).

        The fresh net-name counter restarts at zero; callers that keep
        generating nets on the copy should use explicit names (as the
        ECO delta ops do) to avoid colliding with inherited ones.
        """
        duplicate = Netlist(name or self.name)
        for cell in self.cells.values():
            duplicate.cells[cell.name] = Cell(
                name=cell.name, kind=cell.kind, inputs=list(cell.inputs),
                output=cell.output, init=cell.init, location=cell.location)
        for net in self.nets.values():
            duplicate.nets[net.name] = Net(
                name=net.name, driver=net.driver, sinks=list(net.sinks))
        duplicate.inputs = list(self.inputs)
        duplicate.outputs = list(self.outputs)
        return duplicate

    def apply_delta(self, delta) -> "Netlist":
        """The netlist with an ECO :class:`~repro.fabric.eco.NetlistDelta`
        applied; ``self`` is never mutated, so its content fingerprint
        stays stable.  Equal (netlist, delta) pairs produce structurally
        identical results — the property the delta-chained cache keys
        rely on.  See :mod:`repro.fabric.eco` for the edit taxonomy."""
        edited, _impact = delta.apply(self)
        return edited

    # -- queries -----------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for c in self.cells.values() if c.kind == kind)

    @property
    def lut_count(self) -> int:
        return self.count(LUT4) + self.count(CARRY)

    @property
    def ff_count(self) -> int:
        return self.count(DFF)

    @property
    def dsp_count(self) -> int:
        return self.count(DSP)

    @property
    def bram_count(self) -> int:
        return self.count(BRAM)

    def stats(self) -> Dict[str, int]:
        return {
            "luts": self.lut_count,
            "ffs": self.ff_count,
            "dsps": self.dsp_count,
            "brams": self.bram_count,
            "nets": len(self.nets),
            "cells": len(self.cells),
        }

    def combinational_cells(self) -> List[Cell]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def validate(self) -> List[str]:
        """Structural checks: drivers present, no combinational loops.

        Delegates to the ``repro.analysis`` netlist pass pack (iterative
        SCC loop detection — every loop is reported with its cycle path,
        with no recursion-limit games) and returns the ERROR-level
        findings as plain messages, the historical contract of this
        method.  Run ``repro lint`` for the full diagnostic set.
        """
        from ..analysis.passes.netlist import error_messages
        return error_messages(self)
