"""NXmap-equivalent design flow facade (paper Fig. 3).

``NXmapProject`` drives the backend steps the paper shows for the NXmap
suite — logic synthesis (macro elaboration), placement, routing, static
timing analysis and bitstream generation — over one of the NanoXplore
device models.  ``generate_backend_script`` reproduces the Bambu↔NXmap
integration artifact: the automatically generated backend synthesis
script (paper §II, "seamless integration between Bambu and NXmap through
the automatic generation of backend synthesis scripts").
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..cache import FlowCache, content_key, device_fingerprint, \
    netlist_fingerprint
from ..telemetry import Tracer
from .bitstream import Bitstream, generate_bitstream
from .device import Device, get_device
from .netlist import Netlist
from .placement import PLACE_KERNEL_VERSION, PlacementResult, place
from .routing import ROUTE_KERNEL_VERSION, RoutingResult, route
from .timing import STA_KERNEL_VERSION, TimingReport, analyze_timing

#: Per-stage kernel versions folded into the stage cache keys.  When a
#: kernel's algorithm changes (and so its results for identical inputs),
#: bumping its version constant retires every cached artifact produced by
#: the older kernel — downstream stages chain off the parent key, so a
#: place-kernel bump also invalidates cached routes/STA/bitstreams.
_KERNEL_VERSIONS: Dict[str, int] = {
    "place": PLACE_KERNEL_VERSION,
    "route": ROUTE_KERNEL_VERSION,
    "sta": STA_KERNEL_VERSION,
    # Cached full-STA propagation state (arrival times, endpoint
    # delays) reused by the ECO cone-limited STA; versioned with the
    # STA kernel because it is that kernel's intermediate product.
    "sta-state": STA_KERNEL_VERSION,
}


class FlowError(Exception):
    pass


@dataclass
class PowerReport:
    """Activity-based power estimate."""

    dynamic_mw: float
    static_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw

    def to_json(self) -> Dict[str, Any]:
        return {"dynamic_mw": self.dynamic_mw, "static_mw": self.static_mw}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "PowerReport":
        return cls(dynamic_mw=payload["dynamic_mw"],
                   static_mw=payload["static_mw"])


@dataclass
class FlowReport:
    device: str
    stats: Dict[str, int]
    utilization: Dict[str, float]
    placement: Optional[PlacementResult] = None
    routing: Optional[RoutingResult] = None
    timing: Optional[TimingReport] = None
    power: Optional[PowerReport] = None
    bitstream_bits: int = 0
    essential_bits: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "device": self.device,
            "stats": dict(sorted(self.stats.items())),
            "utilization": dict(sorted(self.utilization.items())),
            "placement": (self.placement.to_json()
                          if self.placement else None),
            "routing": self.routing.to_json() if self.routing else None,
            "timing": self.timing.to_json() if self.timing else None,
            "power": self.power.to_json() if self.power else None,
            "bitstream_bits": self.bitstream_bits,
            "essential_bits": self.essential_bits,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "FlowReport":
        return cls(
            device=payload["device"],
            stats=dict(payload["stats"]),
            utilization=dict(payload["utilization"]),
            placement=(PlacementResult.from_json(payload["placement"])
                       if payload.get("placement") else None),
            routing=(RoutingResult.from_json(payload["routing"])
                     if payload.get("routing") else None),
            timing=(TimingReport.from_json(payload["timing"])
                    if payload.get("timing") else None),
            power=(PowerReport.from_json(payload["power"])
                   if payload.get("power") else None),
            bitstream_bits=payload.get("bitstream_bits", 0),
            essential_bits=payload.get("essential_bits", 0),
        )

    def summary(self) -> str:
        parts = [f"{self.device}: {self.stats.get('luts', 0)} LUTs, "
                 f"{self.stats.get('ffs', 0)} FFs"]
        if self.timing is not None:
            parts.append(f"fmax {self.timing.fmax_mhz:.1f} MHz")
        if self.power is not None:
            parts.append(f"{self.power.total_mw:.1f} mW")
        if self.bitstream_bits:
            parts.append(f"{self.bitstream_bits} cfg bits "
                         f"({self.essential_bits} essential)")
        return ", ".join(parts)


class NXmapProject:
    """One backend compilation: netlist → placed/routed/timed bitstream.

    With a :class:`~repro.cache.FlowCache` attached, every stage result is
    content-addressed under a *stage-granular* key: place hashes the
    netlist/device/seed plus its own options, and each later stage chains
    off its parent stage's key plus its own options only.  Changing a
    routing option therefore reuses the cached placement; changing the
    STA clock reuses both placement and routing.
    """

    def __init__(self, netlist: Netlist, device: Device | str,
                 seed: int = 1, tracer: Optional[Tracer] = None,
                 cache: Optional[FlowCache] = None) -> None:
        self.netlist = netlist
        self.device = get_device(device) if isinstance(device, str) else device
        self.seed = seed
        self.tracer = tracer
        self.cache = cache
        self.placement: Optional[PlacementResult] = None
        self.routing: Optional[RoutingResult] = None
        self.timing: Optional[TimingReport] = None
        self.bitstream: Optional[Bitstream] = None
        self._base_material: Optional[Dict[str, Any]] = None
        self._place_key: Optional[str] = None
        self._route_key: Optional[str] = None
        self._validate()

    # -- content addressing ------------------------------------------------

    def _base(self) -> Dict[str, Any]:
        """Fingerprint of the flow inputs shared by every stage."""
        if self._base_material is None:
            self._base_material = {
                "netlist": netlist_fingerprint(self.netlist),
                "device": device_fingerprint(self.device),
                "seed": self.seed,
            }
        return self._base_material

    def _stage_key(self, stage: str, parent: Optional[str],
                   **options: Any) -> str:
        """Key for one stage: parent stage's key + this stage's options."""
        material: Dict[str, Any] = {"stage": stage, "parent": parent,
                                    "options": options}
        version = _KERNEL_VERSIONS.get(stage)
        if version is not None:
            material["kernel"] = version
        if parent is None:
            material["base"] = self._base()
        return content_key("fabric", material)

    def _cached(self, stage: str, key: Optional[str], decoder,
                compute, encoder):
        """Run ``compute`` through the cache when one is attached."""
        if self.cache is None or key is None:
            return compute()
        hit, value = self.cache.get("fabric", key, decoder)
        if hit:
            return value
        value = compute()
        self.cache.put("fabric", key, value, encoder)
        return value

    def _validate(self) -> None:
        problems = self.netlist.validate()
        if problems:
            raise FlowError(f"netlist check failed: {problems[0]}")
        stats = self.netlist.stats()
        if not self.device.fits(stats["luts"], stats["ffs"], stats["dsps"],
                                stats["brams"]):
            raise FlowError(
                f"{self.netlist.name} does not fit {self.device.name}: "
                f"{stats}")

    # -- flow steps (paper Fig. 3) ----------------------------------------

    def _span(self, name: str, **attributes):
        if self.tracer is None:
            return nullcontext(None)
        return self.tracer.span(name, "fabric", design=self.netlist.name,
                                **attributes)

    def run_place(self, effort: float = 1.0) -> PlacementResult:
        stats = self.netlist.stats()
        key = (self._stage_key("place", None, effort=effort)
               if self.cache is not None else None)
        with self._span("place", effort=effort,
                        cells=stats["luts"] + stats["ffs"]) as span:
            self.placement = self._cached(
                "place", key, PlacementResult.from_json,
                lambda: place(self.netlist, self.device,
                              seed=self.seed, effort=effort,
                              tracer=self.tracer),
                PlacementResult.to_json)
            if span is not None:
                span.attributes["hpwl"] = round(self.placement.hpwl, 3)
                span.attributes["iterations"] = self.placement.iterations
                moves = self.placement.stats.get("moves", 0)
                if moves:
                    span.attributes["accept_rate"] = round(
                        self.placement.stats.get("accepted", 0) / moves, 4)
                    span.attributes["bbox_rescans"] = \
                        self.placement.stats.get("rescans", 0)
        self._place_key = key
        return self.placement

    def run_route(self, channel_width: int = 16) -> RoutingResult:
        if self.placement is None:
            self.run_place()
        key = (self._stage_key("route", self._place_key,
                               channel_width=channel_width)
               if self.cache is not None else None)
        with self._span("route", channel_width=channel_width) as span:
            self.routing = self._cached(
                "route", key, RoutingResult.from_json,
                lambda: route(self.netlist, self.placement.locations,
                              self.placement.grid,
                              channel_width=channel_width,
                              tracer=self.tracer),
                RoutingResult.to_json)
            if span is not None:
                span.attributes["wirelength"] = self.routing.wirelength
                span.attributes["overflow_edges"] = \
                    self.routing.overflow_edges
                span.attributes["expanded_nodes"] = \
                    self.routing.expanded_nodes
                span.attributes["ripped_connections"] = \
                    self.routing.ripped_connections
        self._route_key = key
        return self.routing

    def run_sta(self, target_clock_ns: Optional[float] = None
                ) -> TimingReport:
        key = None
        if self.cache is not None:
            parent = self._route_key or self._place_key
            key = self._stage_key("sta", parent,
                                  target_clock_ns=target_clock_ns,
                                  routed=self.routing is not None,
                                  placed=self.placement is not None)
        with self._span("sta") as span:
            locations = (self.placement.locations
                         if self.placement is not None else None)
            self.timing = self._cached(
                "sta", key, TimingReport.from_json,
                lambda: analyze_timing(self.netlist, self.device,
                                       target_clock_ns=target_clock_ns,
                                       routing=self.routing,
                                       locations=locations),
                TimingReport.to_json)
            if span is not None:
                span.attributes["critical_path_ns"] = \
                    round(self.timing.critical_path_ns, 6)
                span.attributes["fmax_mhz"] = \
                    round(self.timing.fmax_mhz, 3)
                if self.timing.slack_ns is not None:
                    span.attributes["slack_ns"] = \
                        round(self.timing.slack_ns, 6)
        return self.timing

    def run_bitstream(self) -> Bitstream:
        if self.placement is None:
            self.run_place()
        key = (self._stage_key("bitstream", self._place_key)
               if self.cache is not None else None)
        with self._span("bitstream") as span:
            self.bitstream = self._cached(
                "bitstream", key, Bitstream.from_json,
                lambda: generate_bitstream(
                    self.netlist, self.placement.locations,
                    self.placement.grid, self.device.name, seed=self.seed),
                Bitstream.to_json)
            if span is not None:
                span.attributes["total_bits"] = self.bitstream.total_bits
                span.attributes["essential_bits"] = \
                    self.bitstream.essential_bits
        return self.bitstream

    def estimate_power(self, clock_mhz: float,
                       toggle_rate: float = 0.125) -> PowerReport:
        """Activity-based dynamic power plus device static power.

        dynamic = cells × toggle × energy-per-toggle × f.  BRAM/DSP cells
        weigh ~20× a LUT toggle (wide datapaths behind one cell object).
        """
        stats = self.netlist.stats()
        weighted = (stats["luts"] + stats["ffs"] * 0.6
                    + stats["dsps"] * 20 + stats["brams"] * 20)
        dynamic_mw = (weighted * toggle_rate * self.device.lut_energy_pj
                      * clock_mhz * 1e-6)
        # Static power scales with the occupied fraction of the die.
        occupancy = max(stats["luts"] / self.device.luts, 0.01)
        static_mw = self.device.static_mw * (0.25 + 0.75 * occupancy)
        return PowerReport(dynamic_mw=dynamic_mw, static_mw=static_mw)

    def run_all(self, target_clock_ns: float = 10.0,
                effort: float = 1.0, channel_width: int = 16) -> FlowReport:
        """Complete flow: place → route → STA → bitstream → report.

        Thin shim over the unified job facade (:func:`repro.api.submit`,
        kind ``"flow"``): the spec carries netlist/device content
        fingerprints plus the stage options, and this live project rides
        in the context's resources so the runner drives *these* stage
        methods (each stage keeps its own PR-4 cache lookups).
        """
        from ..api import JobSpec, submit
        from ..cache import device_fingerprint, netlist_fingerprint
        spec = JobSpec(kind="flow", params={
            "netlist": netlist_fingerprint(self.netlist),
            "device": device_fingerprint(self.device),
            "target_clock_ns": target_clock_ns, "effort": effort,
            "channel_width": channel_width}, seed=self.seed)
        result = submit(spec, tracer=self.tracer, cache=self.cache,
                        resources={"project": self})
        return result.report

    def report(self, target_clock_ns: Optional[float] = None) -> FlowReport:
        stats = self.netlist.stats()
        clock_mhz = (self.timing.fmax_mhz if self.timing
                     else 1000.0 / (target_clock_ns or 10.0))
        return FlowReport(
            device=self.device.name,
            stats=stats,
            utilization=self.device.utilization(
                stats["luts"], stats["ffs"], stats["dsps"], stats["brams"]),
            placement=self.placement,
            routing=self.routing,
            timing=self.timing,
            power=self.estimate_power(min(clock_mhz, 1000.0)),
            bitstream_bits=self.bitstream.total_bits if self.bitstream else 0,
            essential_bits=(self.bitstream.essential_bits
                            if self.bitstream else 0),
        )


def generate_backend_script(design_name: str, device: Device | str,
                            target_clock_ns: float,
                            verilog_files: Optional[list] = None) -> str:
    """The NXmap backend script Bambu emits for its NXmap integration.

    Mirrors the NXmap python API surface: createProject, setVariantName,
    addFiles, setOption, synthesize/place/route, STA and bitstream
    generation.
    """
    device = get_device(device) if isinstance(device, str) else device
    files = verilog_files or [f"{design_name}.v"]
    lines = [
        "# Backend synthesis script automatically generated by the",
        "# HERMES HLS flow (Bambu -> NXmap integration, paper Fig. 3)",
        "from nxmap import createProject",
        "",
        f"project = createProject('{design_name}')",
        f"project.setVariantName('{device.name}')",
    ]
    for file_name in files:
        lines.append(f"project.addFiles('rtl', ['{file_name}'])")
    lines += [
        f"project.setTopCellName('{design_name}')",
        f"project.createClock('clk', period_ns={target_clock_ns})",
        "project.setOption('MappingEffort', 'High')",
        "project.setOption('RoutingEffort', 'High')",
        "project.synthesize()",
        "project.place()",
        "project.route()",
        "project.reportInstances()",
        "project.staReport('sta.rpt')",
        f"project.generateBitstream('{design_name}.nxb')",
        "project.save()",
    ]
    return "\n".join(lines) + "\n"
