"""NanoXplore rad-hard FPGA device models.

The paper's headline platform claims (Fig. 1): NG-ULTRA is a 28nm FD-SOI
rad-hard SoC FPGA with ~550k LUTs, running about twice as fast as current
rad-hard FPGAs at a quarter of the power, with a quad-core ARM R52 at
600 MHz.  This module models the NanoXplore portfolio (NG-MEDIUM /
NG-LARGE / NG-ULTRA) plus a legacy rad-hard baseline representative of the
65nm anti-fuse/flash generation, so the Fig. 1 comparison can be
regenerated from executable models.

Geometry model: the fabric is a grid of tiles.  Logic tiles hold
``LUTS_PER_TILE`` LUT4+FF pairs; dedicated columns hold DSP and RAM
blocks.  Timing and energy parameters drive STA and the power report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

LUTS_PER_TILE = 8


@dataclass(frozen=True)
class Device:
    """One FPGA device model."""

    name: str
    process: str
    luts: int
    ffs: int
    dsps: int
    brams: int                 # 18 Kib true-dual-port RAM blocks
    # Timing (ns)
    lut_delay_ns: float
    ff_setup_ns: float
    wire_delay_per_tile_ns: float
    dsp_delay_ns: float
    bram_delay_ns: float
    # Energy (pJ); switching energy per cell toggle and static mW
    lut_energy_pj: float
    static_mw: float
    # Radiation hardening
    rad_hard: bool = True
    seu_cross_section_cm2_per_bit: float = 1e-14
    # Embedded processing system
    cpu: str = ""
    cpu_cores: int = 0
    cpu_mhz: int = 0

    @property
    def grid_size(self) -> Tuple[int, int]:
        """(columns, rows) of logic tiles (square-ish floorplan)."""
        tiles = max(1, math.ceil(self.luts / LUTS_PER_TILE))
        cols = max(1, math.ceil(math.sqrt(tiles)))
        rows = max(1, math.ceil(tiles / cols))
        return cols, rows

    def fits(self, luts: int, ffs: int, dsps: int, brams: int) -> bool:
        return (luts <= self.luts and ffs <= self.ffs
                and dsps <= self.dsps and brams <= self.brams)

    def utilization(self, luts: int, ffs: int, dsps: int,
                    brams: int) -> Dict[str, float]:
        return {
            "luts": luts / self.luts,
            "ffs": ffs / self.ffs,
            "dsps": dsps / max(1, self.dsps),
            "brams": brams / max(1, self.brams),
        }


# The NanoXplore portfolio supported by NXmap (paper §II) plus the legacy
# baseline used for the Fig. 1 "2x speed / 4x lower power" comparison.
NG_MEDIUM = Device(
    name="NG-MEDIUM", process="65nm", luts=34_272, ffs=34_272, dsps=112,
    brams=56, lut_delay_ns=0.60, ff_setup_ns=0.30,
    wire_delay_per_tile_ns=0.045, dsp_delay_ns=4.4, bram_delay_ns=2.4,
    lut_energy_pj=3.0, static_mw=280.0,
    seu_cross_section_cm2_per_bit=6e-15,
)

NG_LARGE = Device(
    name="NG-LARGE", process="65nm", luts=137_088, ffs=129_024, dsps=384,
    brams=192, lut_delay_ns=0.55, ff_setup_ns=0.28,
    wire_delay_per_tile_ns=0.040, dsp_delay_ns=4.0, bram_delay_ns=2.2,
    lut_energy_pj=2.8, static_mw=620.0,
    seu_cross_section_cm2_per_bit=6e-15,
)

NG_ULTRA = Device(
    name="NG-ULTRA", process="28nm FD-SOI", luts=544_320, ffs=544_320,
    dsps=1_632, brams=672, lut_delay_ns=0.35, ff_setup_ns=0.18,
    wire_delay_per_tile_ns=0.022, dsp_delay_ns=2.4, bram_delay_ns=1.1,
    lut_energy_pj=0.7, static_mw=900.0,
    seu_cross_section_cm2_per_bit=2e-15,
    cpu="ARM Cortex-R52", cpu_cores=4, cpu_mhz=600,
)

# Representative of the previous rad-hard generation that NG-ULTRA is
# compared against in the paper's introduction ("twice as fast ... power
# consumption four times smaller").
LEGACY_RADHARD = Device(
    name="LEGACY-RH (65nm gen)", process="65nm", luts=150_000, ffs=150_000,
    dsps=462, brams=210, lut_delay_ns=0.70, ff_setup_ns=0.38,
    wire_delay_per_tile_ns=0.050, dsp_delay_ns=5.2, bram_delay_ns=2.8,
    lut_energy_pj=2.8, static_mw=1_100.0,
    seu_cross_section_cm2_per_bit=8e-15,
)

DEVICE_FAMILY: Dict[str, Device] = {
    d.name: d for d in (NG_MEDIUM, NG_LARGE, NG_ULTRA, LEGACY_RADHARD)
}


def get_device(name: str) -> Device:
    if name not in DEVICE_FAMILY:
        known = ", ".join(sorted(DEVICE_FAMILY))
        raise KeyError(f"unknown device {name!r} (known: {known})")
    return DEVICE_FAMILY[name]


def scaled_device(base: Device, name: str, luts: int) -> Device:
    """A reduced-capacity variant of a device (same speed/energy).

    Used by tests and characterization runs to keep placement grids small
    while exercising the same timing model.
    """
    ratio = luts / base.luts
    return Device(
        name=name, process=base.process, luts=luts,
        ffs=max(luts, 1), dsps=max(4, int(base.dsps * ratio)),
        brams=max(2, int(base.brams * ratio)),
        lut_delay_ns=base.lut_delay_ns, ff_setup_ns=base.ff_setup_ns,
        wire_delay_per_tile_ns=base.wire_delay_per_tile_ns,
        dsp_delay_ns=base.dsp_delay_ns, bram_delay_ns=base.bram_delay_ns,
        lut_energy_pj=base.lut_energy_pj, static_mw=base.static_mw * ratio,
        rad_hard=base.rad_hard,
        seu_cross_section_cm2_per_bit=base.seu_cross_section_cm2_per_bit,
        cpu=base.cpu, cpu_cores=base.cpu_cores, cpu_mhz=base.cpu_mhz,
    )
