"""Capacity-aware maze routing over the tile grid.

The routing fabric is modelled as a grid graph: each tile connects to its
four neighbours through channels of ``channel_width`` tracks.  Nets are
routed as driver→sink two-pin connections with A* over the grid; edge
congestion raises the cost (negotiated-congestion flavour) and a bounded
rip-up/retry loop resolves overflow.  Reports wirelength, congestion and
overflow — the numbers the NXmap flow report exposes after routing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .netlist import Netlist

Tile = Tuple[int, int]
Edge = Tuple[Tile, Tile]


class RoutingError(Exception):
    pass


@dataclass
class RoutingResult:
    wirelength: int
    max_congestion: int
    overflow_edges: int
    routed_connections: int
    failed_connections: int
    iterations: int
    channel_width: int
    # net name -> list of per-connection paths (each a list of tiles)
    routes: Dict[str, List[List[Tile]]] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return self.failed_connections == 0 and self.overflow_edges == 0

    def route_length(self, net_name: str) -> int:
        paths = self.routes.get(net_name, [])
        return sum(max(0, len(p) - 1) for p in paths)

    def to_json(self) -> dict:
        return {
            "wirelength": self.wirelength,
            "max_congestion": self.max_congestion,
            "overflow_edges": self.overflow_edges,
            "routed_connections": self.routed_connections,
            "failed_connections": self.failed_connections,
            "iterations": self.iterations,
            "channel_width": self.channel_width,
            "routes": {net: [[list(tile) for tile in path]
                             for path in paths]
                       for net, paths in sorted(self.routes.items())},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RoutingResult":
        return cls(
            wirelength=payload["wirelength"],
            max_congestion=payload["max_congestion"],
            overflow_edges=payload["overflow_edges"],
            routed_connections=payload["routed_connections"],
            failed_connections=payload["failed_connections"],
            iterations=payload["iterations"],
            channel_width=payload["channel_width"],
            routes={net: [[(int(t[0]), int(t[1])) for t in path]
                          for path in paths]
                    for net, paths in payload["routes"].items()},
        )


def _edge(a: Tile, b: Tile) -> Edge:
    return (a, b) if a <= b else (b, a)


def _astar(start: Tile, goal: Tile, grid: Tuple[int, int],
           usage: Dict[Edge, int], channel_width: int,
           congestion_penalty: float) -> Optional[List[Tile]]:
    cols, rows = grid
    # Heap entries: (f = g + heuristic, g, tiebreak, tile).
    frontier: List[Tuple[float, float, int, Tile]] = [(0.0, 0.0, 0, start)]
    came: Dict[Tile, Tile] = {}
    best: Dict[Tile, float] = {start: 0.0}
    counter = 0
    while frontier:
        _f, g, _, tile = heapq.heappop(frontier)
        if tile == goal:
            path = [tile]
            while tile in came:
                tile = came[tile]
                path.append(tile)
            path.reverse()
            return path
        if g > best.get(tile, float("inf")):
            continue  # stale entry
        col, row = tile
        for neighbour in ((col + 1, row), (col - 1, row),
                          (col, row + 1), (col, row - 1)):
            ncol, nrow = neighbour
            if not (0 <= ncol < cols and 0 <= nrow < rows):
                continue
            used = usage.get(_edge(tile, neighbour), 0)
            step = 1.0
            if used >= channel_width:
                step += congestion_penalty * (used - channel_width + 1)
            new_cost = g + step
            if new_cost < best.get(neighbour, float("inf")):
                best[neighbour] = new_cost
                came[neighbour] = tile
                counter += 1
                heuristic = abs(ncol - goal[0]) + abs(nrow - goal[1])
                heapq.heappush(frontier,
                               (new_cost + heuristic, new_cost, counter,
                                neighbour))
    return None


def route(netlist: Netlist, locations: Dict[str, Tile],
          grid: Tuple[int, int], channel_width: int = 16,
          max_iterations: int = 3) -> RoutingResult:
    """Route all nets; negotiation loop raises congestion cost each pass."""
    connections: List[Tuple[str, Tile, Tile]] = []
    for net in netlist.nets.values():
        if net.driver is None or net.driver not in locations:
            continue
        source = locations[net.driver]
        for sink in net.sinks:
            if sink not in locations:
                continue
            target = locations[sink]
            if target != source:
                connections.append((net.name, source, target))

    usage: Dict[Edge, int] = {}
    routes: Dict[str, List[List[Tile]]] = {}
    failed = 0
    iterations = 0
    penalty = 0.5
    for iteration in range(max_iterations):
        iterations += 1
        usage.clear()
        routes.clear()
        failed = 0
        for net_name, source, target in connections:
            path = _astar(source, target, grid, usage, channel_width,
                          penalty)
            if path is None:
                failed += 1
                continue
            for a, b in zip(path, path[1:]):
                edge = _edge(a, b)
                usage[edge] = usage.get(edge, 0) + 1
            routes.setdefault(net_name, []).append(path)
        overflow = sum(1 for used in usage.values()
                       if used > channel_width)
        if overflow == 0 and failed == 0:
            break
        penalty *= 4  # negotiate harder next pass
    wirelength = sum(count for count in usage.values())
    max_congestion = max(usage.values(), default=0)
    overflow_edges = sum(1 for used in usage.values()
                         if used > channel_width)
    return RoutingResult(
        wirelength=wirelength, max_congestion=max_congestion,
        overflow_edges=overflow_edges,
        routed_connections=len(connections) - failed,
        failed_connections=failed, iterations=iterations,
        channel_width=channel_width, routes=routes)
