"""Capacity-aware maze routing over the tile grid.

The routing fabric is modelled as a grid graph: each tile connects to its
four neighbours through channels of ``channel_width`` tracks.  Multi-sink
nets are routed as a *shared route tree* (PR 5): each sink runs a
multi-source A* that targets the nearest node of the net's existing tree
rather than re-routing from the driver, so fanout edges are paid for
once.  Every search is bounded to the connection bounding box plus a
congestion-adaptive margin (widened on each negotiation pass, with an
unbounded retry as the safety net).  Between negotiation passes the
rip-up is *targeted*: only connections whose paths cross overflowed
edges (plus tree segments stranded by such a rip) are torn up and
re-routed under a higher congestion penalty — everything else keeps its
usage intact.  Reports wirelength, congestion and overflow — the numbers
the NXmap flow report exposes after routing.  The whole kernel is
deterministic (no RNG); ``ROUTE_KERNEL_VERSION`` salts the flow-cache
stage key so artifacts of older kernels are never served.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..telemetry import Tracer
from .netlist import Netlist

Tile = Tuple[int, int]
Edge = Tuple[Tile, Tile]

#: Bumped whenever the routing algorithm changes its results; part of
#: the flow-cache stage key (see ``NXmapProject._stage_key``), so stale
#: cached routes from an older kernel can never be returned.
ROUTE_KERNEL_VERSION = 3

#: Base bbox margin (tiles) around a connection; widened every
#: negotiation pass so congested connections can detour further out.
_BASE_MARGIN = 3
_MARGIN_PER_PASS = 4


class RoutingError(Exception):
    pass


@dataclass
class RoutingResult:
    wirelength: int
    max_congestion: int
    overflow_edges: int
    routed_connections: int
    failed_connections: int
    iterations: int
    channel_width: int
    # net name -> list of per-connection paths (each a list of tiles).
    # Paths after the first start on the net's existing route tree, so
    # their union per net is a driver-rooted Steiner tree.
    routes: Dict[str, List[List[Tile]]] = field(default_factory=dict)
    # Kernel instrumentation (serialized so cache hits report the same
    # evidence): total A* node expansions and targeted rip-up count.
    expanded_nodes: int = 0
    ripped_connections: int = 0
    # Final per-edge occupancy (congestion state).  Persisted so a later
    # pass — ECO delta routing in particular — can seed its negotiation
    # from the exact channel usage this result left behind instead of
    # recomputing it from the path lists.
    edge_usage: Dict[Edge, int] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return self.failed_connections == 0 and self.overflow_edges == 0

    def route_length(self, net_name: str) -> int:
        paths = self.routes.get(net_name, [])
        return sum(max(0, len(p) - 1) for p in paths)

    def to_json(self) -> dict:
        return {
            "wirelength": self.wirelength,
            "max_congestion": self.max_congestion,
            "overflow_edges": self.overflow_edges,
            "routed_connections": self.routed_connections,
            "failed_connections": self.failed_connections,
            "iterations": self.iterations,
            "channel_width": self.channel_width,
            "routes": {net: [[list(tile) for tile in path]
                             for path in paths]
                       for net, paths in sorted(self.routes.items())},
            "expanded_nodes": self.expanded_nodes,
            "ripped_connections": self.ripped_connections,
            "edge_usage": [[list(edge[0]), list(edge[1]), used]
                           for edge, used
                           in sorted(self.edge_usage.items())],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RoutingResult":
        routes = {net: [[(int(t[0]), int(t[1])) for t in path]
                        for path in paths]
                  for net, paths in payload["routes"].items()}
        if "edge_usage" in payload:
            edge_usage = {((int(a[0]), int(a[1])), (int(b[0]), int(b[1]))):
                          int(used)
                          for a, b, used in payload["edge_usage"]}
        else:
            # Pre-v3 artifact: rebuild the occupancy map from the paths.
            edge_usage = _usage_of_paths(
                path for paths in routes.values() for path in paths)
        return cls(
            wirelength=payload["wirelength"],
            max_congestion=payload["max_congestion"],
            overflow_edges=payload["overflow_edges"],
            routed_connections=payload["routed_connections"],
            failed_connections=payload["failed_connections"],
            iterations=payload["iterations"],
            channel_width=payload["channel_width"],
            routes=routes,
            expanded_nodes=payload.get("expanded_nodes", 0),
            ripped_connections=payload.get("ripped_connections", 0),
            edge_usage=edge_usage,
        )


def _edge(a: Tile, b: Tile) -> Edge:
    return (a, b) if a <= b else (b, a)


def _usage_of_paths(paths: Iterable[List[Tile]]) -> Dict[Edge, int]:
    """Edge-occupancy map of a collection of path segments."""
    usage: Dict[Edge, int] = {}
    for path in paths:
        for a, b in zip(path, path[1:]):
            edge = _edge(a, b)
            usage[edge] = usage.get(edge, 0) + 1
    return usage


class _AstarStats:
    __slots__ = ("expanded",)

    def __init__(self) -> None:
        self.expanded = 0


def _astar_tree(sources: Iterable[Tile], goal: Tile,
                bounds: Tuple[int, int, int, int],
                usage: Dict[Edge, int], channel_width: int,
                congestion_penalty: float,
                stats: _AstarStats) -> Optional[List[Tile]]:
    """Multi-source A* from a net's route tree to one sink.

    Every tree node starts at cost zero, so the search naturally grows
    the path from the *nearest* point of the existing tree.  Expansion
    is restricted to ``bounds`` (cmin, cmax, rmin, rmax inclusive).
    """
    gcol, grow = goal
    cmin, cmax, rmin, rmax = bounds
    # Heap entries: (f = g + heuristic, g, tiebreak, tile).
    frontier: List[Tuple[float, float, int, Tile]] = []
    best: Dict[Tile, float] = {}
    came: Dict[Tile, Tile] = {}
    counter = 0
    for source in sorted(sources):
        best[source] = 0.0
        counter += 1
        heuristic = abs(source[0] - gcol) + abs(source[1] - grow)
        heapq.heappush(frontier, (float(heuristic), 0.0, counter, source))
    expanded = 0
    while frontier:
        _f, g, _, tile = heapq.heappop(frontier)
        expanded += 1
        if tile == goal:
            path = [tile]
            while tile in came:
                tile = came[tile]
                path.append(tile)
            path.reverse()
            stats.expanded += expanded
            return path
        if g > best.get(tile, float("inf")):
            continue  # stale entry
        col, row = tile
        for neighbour in ((col + 1, row), (col - 1, row),
                          (col, row + 1), (col, row - 1)):
            ncol, nrow = neighbour
            if not (cmin <= ncol <= cmax and rmin <= nrow <= rmax):
                continue
            used = usage.get(_edge(tile, neighbour), 0)
            step = 1.0
            if used >= channel_width:
                step += congestion_penalty * (used - channel_width + 1)
            new_cost = g + step
            if new_cost < best.get(neighbour, float("inf")):
                best[neighbour] = new_cost
                came[neighbour] = tile
                counter += 1
                heuristic = abs(ncol - gcol) + abs(nrow - grow)
                heapq.heappush(frontier,
                               (new_cost + heuristic, new_cost, counter,
                                neighbour))
    stats.expanded += expanded
    return None


class _NetTree:
    """One net's growing route tree: nodes, and per-sink path segments.

    The node set is materialized lazily: a warm-preserved tree that is
    never re-routed (the overwhelming majority in an ECO pass) never
    pays the O(wirelength) set construction.
    """

    __slots__ = ("source", "_nodes", "paths")

    def __init__(self, source: Tile) -> None:
        self.source = source
        self._nodes: Optional[Set[Tile]] = None
        # (sink ordinal, path segment) — segment edges are disjoint
        # between segments; their union is the net's route tree.
        self.paths: List[Tuple[int, List[Tile]]] = []

    @property
    def nodes(self) -> Set[Tile]:
        if self._nodes is None:
            self._nodes = {self.source}
            for _ordinal, path in self.paths:
                self._nodes.update(path)
        return self._nodes

    def add(self, ordinal: int, path: List[Tile]) -> None:
        self.paths.append((ordinal, path))
        if self._nodes is not None:
            self._nodes.update(path)


def route(netlist: Netlist, locations: Dict[str, Tile],
          grid: Tuple[int, int], channel_width: int = 16,
          max_iterations: int = 3,
          tracer: Optional[Tracer] = None,
          warm: Optional[RoutingResult] = None,
          reroute_nets: Optional[Iterable[str]] = None) -> RoutingResult:
    """Route all nets; negotiation loop raises congestion cost each pass.

    ``tracer`` (optional) receives per-pass ``route.pass`` spans plus the
    ``route.astar.expanded`` and ``route.ripup.connections`` counters.

    ``warm`` enables *delta routing* (the ECO flow): a previous
    :class:`RoutingResult` whose route trees are preserved for every net
    **not** named in ``reroute_nets``.  Preserved nets keep their exact
    paths and their channel usage (seeded from the persisted
    ``edge_usage`` map); only the named nets — plus anything the
    overflow cascade rips later — are torn up and re-routed.  A warm net
    whose preserved paths no longer match the current connection list
    (a pin moved, a sink appeared) is detected and re-routed as well, so
    an over-approximate ``reroute_nets`` is a performance choice, never
    a correctness one.
    """
    cols, rows = grid
    # Deterministic connection order: nets sorted by name, then sinks in
    # sorted order — independent of netlist dict insertion order.
    Conn = Tuple[str, int, Tile]  # (net name, sink ordinal, sink tile)
    trees: Dict[str, _NetTree] = {}
    sink_tiles: Dict[Tuple[str, int], Tile] = {}
    connections: List[Conn] = []
    for net_name in sorted(netlist.nets):
        net = netlist.nets[net_name]
        if net.driver is None or net.driver not in locations:
            continue
        source = locations[net.driver]
        ordinal = 0
        for sink in sorted(net.sinks):
            if sink not in locations:
                continue
            target = locations[sink]
            if target == source:
                continue
            connections.append((net_name, ordinal, target))
            sink_tiles[(net_name, ordinal)] = target
            ordinal += 1
        if ordinal:
            trees[net_name] = _NetTree(source)

    usage: Dict[Edge, int] = {}
    preloaded: Set[str] = set()
    if warm is not None:
        reroute = set(reroute_nets) if reroute_nets is not None else set()
        counts: Dict[str, int] = {}
        for name, _ordinal, _tile in connections:
            counts[name] = counts.get(name, 0) + 1
        for net_name in sorted(trees):
            if net_name in reroute:
                continue
            paths = warm.routes.get(net_name)
            if paths is None or len(paths) != counts.get(net_name, 0):
                continue
            tree = trees[net_name]
            # Preserved paths must still describe this net's connection
            # endpoints: the first segment starts at the (unmoved)
            # driver tile and every segment ends at its (unmoved) sink
            # tile.  Segment-to-tree continuity is an invariant of the
            # stored artifact — the base run grew the segments on the
            # tree in ordinal order — so endpoint checks alone detect
            # every pin move without materializing the node set.
            valid = True
            for ordinal, path in enumerate(paths):
                if not path \
                        or path[-1] != sink_tiles[(net_name, ordinal)] \
                        or (ordinal == 0 and path[0] != tree.source):
                    valid = False
                    break
            if not valid:
                continue
            for ordinal, path in enumerate(paths):
                tree.add(ordinal, path)
            preloaded.add(net_name)
        # Seed the congestion state from the persisted occupancy map,
        # then subtract every warm path that was *not* preserved (ripped
        # nets, vanished nets, stale nets) so usage stays exactly the
        # sum of the live trees.
        usage = dict(warm.edge_usage)
        for net_name, paths in warm.routes.items():
            if net_name in preloaded:
                continue
            for path in paths:
                for a, b in zip(path, path[1:]):
                    edge = _edge(a, b)
                    remaining = usage.get(edge, 0) - 1
                    if remaining > 0:
                        usage[edge] = remaining
                    else:
                        usage.pop(edge, None)
    stats = _AstarStats()
    failed: Set[Tuple[str, int]] = set()
    iterations = 0
    ripped_total = 0
    penalty = 0.5
    overflow = 0
    full_bounds = (0, cols - 1, 0, rows - 1)

    def span(name: str, **attributes):
        if tracer is None:
            return nullcontext(None)
        return tracer.span(name, "fabric", **attributes)

    def route_connection(conn: Conn, margin: int) -> bool:
        net_name, ordinal, target = conn
        tree = trees[net_name]
        if target in tree.nodes:
            tree.add(ordinal, [target])  # zero-length tap on the tree
            return True
        bxmin = min(node[0] for node in tree.nodes)
        bxmax = max(node[0] for node in tree.nodes)
        bymin = min(node[1] for node in tree.nodes)
        bymax = max(node[1] for node in tree.nodes)
        bounds = (max(0, min(bxmin, target[0]) - margin),
                  min(cols - 1, max(bxmax, target[0]) + margin),
                  max(0, min(bymin, target[1]) - margin),
                  min(rows - 1, max(bymax, target[1]) + margin))
        path = _astar_tree(tree.nodes, target, bounds, usage,
                           channel_width, penalty, stats)
        if path is None and bounds != full_bounds:
            # Safety net: the bounded window can starve a legal detour.
            path = _astar_tree(tree.nodes, target, full_bounds, usage,
                               channel_width, penalty, stats)
        if path is None:
            return False
        for a, b in zip(path, path[1:]):
            edge = _edge(a, b)
            usage[edge] = usage.get(edge, 0) + 1
        tree.add(ordinal, path)
        return True

    def rip_targeted(over_edges: Set[Edge]) -> List[Conn]:
        """Tear up only the path segments crossing overflowed edges (and
        segments stranded by such a rip); keep all other usage."""
        ripped: List[Conn] = []
        for net_name in sorted(trees):
            tree = trees[net_name]
            if not tree.paths:
                continue
            kept: List[Tuple[int, List[Tile]]] = []
            rebuilt: Set[Tile] = {tree.source}
            for ordinal, path in tree.paths:
                crosses = any(_edge(a, b) in over_edges
                              for a, b in zip(path, path[1:]))
                stranded = path[0] not in rebuilt
                if crosses or stranded:
                    for a, b in zip(path, path[1:]):
                        edge = _edge(a, b)
                        remaining = usage[edge] - 1
                        if remaining:
                            usage[edge] = remaining
                        else:
                            del usage[edge]
                    ripped.append((net_name, ordinal,
                                   sink_tiles[(net_name, ordinal)]))
                else:
                    kept.append((ordinal, path))
                    rebuilt.update(path)
            tree.paths = kept
            tree._nodes = rebuilt
        return sorted(ripped)

    pending: List[Conn] = [conn for conn in connections
                           if conn[0] not in preloaded]
    for iteration in range(max_iterations):
        if iteration > 0:
            penalty *= 4  # negotiate harder next pass
            over_edges = {edge for edge, used in usage.items()
                          if used > channel_width}
            ripped = rip_targeted(over_edges)
            ripped_total += len(ripped)
            ripped_keys = {(name, ordinal)
                           for name, ordinal, _tile in ripped}
            pending = ripped + [(name, ordinal, sink_tiles[(name, ordinal)])
                                for name, ordinal in sorted(failed)
                                if (name, ordinal) not in ripped_keys]
        iterations += 1
        margin = _BASE_MARGIN + _MARGIN_PER_PASS * iteration
        with span("route.pass", iteration=iteration,
                  connections=len(pending)) as pass_span:
            routed_now = 0
            for conn in pending:
                failed.discard((conn[0], conn[1]))
                if route_connection(conn, margin):
                    routed_now += 1
                else:
                    failed.add((conn[0], conn[1]))
            # Single overflow computation per pass, reused by the exit
            # check and (on the final pass) the report.
            overflow = sum(1 for used in usage.values()
                           if used > channel_width)
            if pass_span is not None:
                pass_span.attributes["routed"] = routed_now
                pass_span.attributes["failed"] = len(failed)
                pass_span.attributes["overflow_edges"] = overflow
        if overflow == 0 and not failed:
            break

    routes: Dict[str, List[List[Tile]]] = {}
    for net_name in sorted(trees):
        tree = trees[net_name]
        if tree.paths:
            routes[net_name] = [path for _ordinal, path
                                in sorted(tree.paths)]
    wirelength = sum(usage.values())
    max_congestion = max(usage.values(), default=0)
    if tracer is not None:
        tracer.counter("route.astar.expanded", "fabric").add(stats.expanded)
        tracer.counter("route.ripup.connections", "fabric").add(ripped_total)
    return RoutingResult(
        wirelength=wirelength, max_congestion=max_congestion,
        overflow_edges=overflow,
        routed_connections=len(connections) - len(failed),
        failed_connections=len(failed), iterations=iterations,
        channel_width=channel_width, routes=routes,
        expanded_nodes=stats.expanded, ripped_connections=ripped_total,
        edge_usage=dict(usage))
