"""Interactive ECO flow: incremental edit-to-bitstream.

HERMES's qualification loop is iterate-heavy: designers make small
netlist or constraint edits and re-run the whole NXmap-style flow, and
on real rad-hard designs those place-and-route iterations dominate the
turnaround.  This module makes the edit a first-class object and the
re-implementation incremental:

* :class:`NetlistDelta` — a typed edit script (add/remove/resize cell,
  reconnect an input pin, retarget an output, constraint change) with a
  canonical JSON form and a content fingerprint.
  ``Netlist.apply_delta`` applies it to a *copy*, so the base netlist's
  content fingerprint stays stable and equal (base, delta) pairs yield
  structurally identical edited netlists.
* :class:`EcoFlow` — re-implements only what the edit touched:

  - **warm-start placement** (:func:`eco_place`): the annealer starts
    from the cached base placement; only the changed cells and their
    net neighborhood are movable, annealed at low temperature inside a
    VPR-style range limit — every other cell is frozen bit-identical.
  - **delta routing**: only route trees whose nets touch changed cells
    (plus whatever the overflow cascade rips) are torn up; the router
    seeds its negotiation from the base result's persisted
    ``edge_usage`` congestion state (``route(warm=..., reroute_nets=...)``).
  - **cone-limited STA** (:func:`~repro.fabric.timing.analyze_timing_cone`):
    arrivals are re-propagated only over the fan-out cone of the
    changed cells and the re-routed nets, then merged into the cached
    full-timing state.

Every ECO stage result is content-addressed under a *delta-chained*
key: ``content_key(base stage key, canonical delta, options)``.  The
same edit submitted twice — from the CLI, the API (job kind ``eco``) or
the PR-9 service — is therefore a warm cache hit with a byte-identical
report.

Telemetry counters: ``eco.cells.moved``, ``eco.nets.ripped``,
``eco.sta.cone_size``.
"""

from __future__ import annotations

import math
import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, \
    Sequence, Set, Tuple, Union

from ..cache import content_key
from ..telemetry import Tracer
from .device import Device
from .netlist import CELL_KINDS, LUT4, Cell, Netlist, NetlistError
from .nxmap import FlowError, FlowReport, NXmapProject
from .placement import PlacementResult, _Grid, _IncrementalHpwl, \
    _SiteManager, total_hpwl
from .routing import RoutingResult, route
from .timing import StaState, TimingReport, analyze_timing_cone, \
    analyze_timing_state

#: Bumped whenever the ECO kernels (warm-start placement, delta routing
#: orchestration, cone merge) change their results; folded into every
#: delta-chained stage key so stale ECO artifacts are never served.
ECO_KERNEL_VERSION = 1

#: Constraint names a delta may change.
_CONSTRAINT_NAMES = ("target_clock_ns",)

#: Warm-start neighborhood expansion stops at nets above this fanout:
#: unfreezing a high-fanout net's whole sink cloud would cascade into
#: the rip-up set and the STA cone (see :func:`eco_place`).
_NEIGHBOR_FANOUT_CAP = 4

#: HPWL a move of a pre-existing cell must win before it is considered.
#: Every moved cell forces its nets into the rip-up set and their cones
#: into the STA re-run, so churn moves (tiny HPWL wins) cost far more
#: downstream than they save; cells the delta *added* carry no penalty.
_DISTURB_PENALTY = 8.0


class DeltaError(NetlistError):
    """A malformed or inapplicable ECO delta."""


# -- the edit taxonomy ------------------------------------------------------


@dataclass(frozen=True)
class AddCell:
    """Add a new cell (its nets are created on demand).

    With ``primary_output`` the cell's output net is also registered as
    a primary output — the safe way to attach observation logic without
    creating combinational cycles.
    """

    name: str
    kind: str
    inputs: Tuple[str, ...] = ()
    output: Optional[str] = None
    init: int = 0
    primary_output: bool = False
    op = "add_cell"

    def canonical(self) -> Dict[str, Any]:
        return {"op": self.op, "name": self.name, "kind": self.kind,
                "inputs": list(self.inputs), "output": self.output,
                "init": self.init, "primary_output": self.primary_output}

    def apply_to(self, netlist: Netlist) -> Tuple[Set[str], Set[str]]:
        if self.name in netlist.cells:
            raise DeltaError(f"add_cell: cell {self.name!r} exists")
        if self.kind not in CELL_KINDS:
            raise DeltaError(f"add_cell: unknown kind {self.kind!r}")
        netlist.add_cell(Cell(name=self.name, kind=self.kind,
                              inputs=list(self.inputs),
                              output=self.output, init=int(self.init)))
        if self.primary_output and self.output is not None \
                and self.output not in netlist.outputs:
            netlist.add_output(self.output)
        nets = set(self.inputs)
        if self.output is not None:
            nets.add(self.output)
        return {self.name}, nets


@dataclass(frozen=True)
class RemoveCell:
    """Remove a cell; its output net loses its driver.

    The caller is responsible for leaving the netlist legal (reconnect
    or remove the former sinks first) — ``EcoFlow`` re-validates the
    edited netlist before implementing it.
    """

    name: str
    op = "remove_cell"

    def canonical(self) -> Dict[str, Any]:
        return {"op": self.op, "name": self.name}

    def apply_to(self, netlist: Netlist) -> Tuple[Set[str], Set[str]]:
        cell = netlist.cells.pop(self.name, None)
        if cell is None:
            raise DeltaError(f"remove_cell: unknown cell {self.name!r}")
        nets: Set[str] = set()
        for net_name in cell.inputs:
            netlist.nets[net_name].sinks.remove(self.name)
            nets.add(net_name)
        if cell.output is not None:
            netlist.nets[cell.output].driver = None
            nets.add(cell.output)
        return {self.name}, nets


@dataclass(frozen=True)
class ResizeCell:
    """Change a cell's configuration word (LUT truth table, DSP mode).

    Config-only: connectivity and placement are untouched, so the ECO
    flow re-generates the bitstream but neither re-places nor re-routes.
    """

    name: str
    init: int
    op = "resize_cell"

    def canonical(self) -> Dict[str, Any]:
        return {"op": self.op, "name": self.name, "init": self.init}

    def apply_to(self, netlist: Netlist) -> Tuple[Set[str], Set[str]]:
        cell = netlist.cells.get(self.name)
        if cell is None:
            raise DeltaError(f"resize_cell: unknown cell {self.name!r}")
        cell.init = int(self.init)
        return set(), set()


@dataclass(frozen=True)
class ReconnectInput:
    """Rewire one input pin of a cell onto a different net."""

    cell: str
    index: int
    net: str
    op = "reconnect_input"

    def canonical(self) -> Dict[str, Any]:
        return {"op": self.op, "cell": self.cell, "index": self.index,
                "net": self.net}

    def apply_to(self, netlist: Netlist) -> Tuple[Set[str], Set[str]]:
        cell = netlist.cells.get(self.cell)
        if cell is None:
            raise DeltaError(
                f"reconnect_input: unknown cell {self.cell!r}")
        if not 0 <= self.index < len(cell.inputs):
            raise DeltaError(
                f"reconnect_input: {self.cell} has no input pin "
                f"{self.index}")
        old = cell.inputs[self.index]
        netlist.nets[old].sinks.remove(self.cell)
        cell.inputs[self.index] = self.net
        netlist.ensure_net(self.net).sinks.append(self.cell)
        return {self.cell}, {old, self.net}


@dataclass(frozen=True)
class RetargetOutput:
    """Move a cell's output onto a different (undriven) net."""

    cell: str
    net: str
    op = "retarget_output"

    def canonical(self) -> Dict[str, Any]:
        return {"op": self.op, "cell": self.cell, "net": self.net}

    def apply_to(self, netlist: Netlist) -> Tuple[Set[str], Set[str]]:
        cell = netlist.cells.get(self.cell)
        if cell is None:
            raise DeltaError(
                f"retarget_output: unknown cell {self.cell!r}")
        target = netlist.ensure_net(self.net)
        if target.driver is not None and target.driver != self.cell:
            raise DeltaError(
                f"retarget_output: net {self.net!r} already driven by "
                f"{target.driver}")
        nets = {self.net}
        if cell.output is not None:
            netlist.nets[cell.output].driver = None
            nets.add(cell.output)
        cell.output = self.net
        target.driver = self.cell
        return {self.cell}, nets


@dataclass(frozen=True)
class SetConstraint:
    """Change a flow constraint (currently: ``target_clock_ns``)."""

    name: str
    value: float
    op = "set_constraint"

    def canonical(self) -> Dict[str, Any]:
        return {"op": self.op, "name": self.name, "value": self.value}

    def apply_to(self, netlist: Netlist) -> Tuple[Set[str], Set[str]]:
        if self.name not in _CONSTRAINT_NAMES:
            raise DeltaError(
                f"set_constraint: unknown constraint {self.name!r} "
                f"(known: {', '.join(_CONSTRAINT_NAMES)})")
        return set(), set()


DeltaOp = Union[AddCell, RemoveCell, ResizeCell, ReconnectInput,
                RetargetOutput, SetConstraint]

_OP_TYPES: Dict[str, type] = {
    cls.op: cls for cls in (AddCell, RemoveCell, ResizeCell,
                            ReconnectInput, RetargetOutput, SetConstraint)}


@dataclass(frozen=True)
class DeltaImpact:
    """What a delta touched, computed while applying it."""

    added: FrozenSet[str] = frozenset()
    removed: FrozenSet[str] = frozenset()
    reconnected: FrozenSet[str] = frozenset()
    resized: FrozenSet[str] = frozenset()
    touched_nets: FrozenSet[str] = frozenset()
    constraints: Mapping[str, float] = field(default_factory=dict)

    @property
    def changed_cells(self) -> FrozenSet[str]:
        """Cells whose connectivity or existence changed (placement-
        relevant — resizes are config-only)."""
        return self.added | self.removed | self.reconnected


@dataclass(frozen=True)
class NetlistDelta:
    """An ordered edit script over a technology netlist.

    Order is semantic (a reconnect may target a net an earlier op
    created), so the canonical form — and therefore the fingerprint and
    every delta-chained cache key — preserves it: reordered op lists
    are *different* deltas even when they commute.
    """

    ops: Tuple[DeltaOp, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))

    def canonical(self) -> List[Dict[str, Any]]:
        return [op.canonical() for op in self.ops]

    def fingerprint(self) -> str:
        return content_key("delta", {"ops": self.canonical()})

    def to_json(self) -> List[Dict[str, Any]]:
        return self.canonical()

    @classmethod
    def from_json(cls, payload: Sequence[Mapping[str, Any]]
                  ) -> "NetlistDelta":
        if isinstance(payload, Mapping):
            payload = payload.get("ops", [])
        ops: List[DeltaOp] = []
        for record in payload:
            record = dict(record)
            op_name = record.pop("op", None)
            op_type = _OP_TYPES.get(op_name)
            if op_type is None:
                raise DeltaError(f"unknown delta op {op_name!r}")
            if op_name == "add_cell":
                record["inputs"] = tuple(record.get("inputs", ()))
            try:
                ops.append(op_type(**record))
            except TypeError as error:
                raise DeltaError(f"malformed {op_name} op: {error}")
        return cls(ops=tuple(ops))

    def constraints(self) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for op in self.ops:
            if isinstance(op, SetConstraint):
                values[op.name] = float(op.value)
        return values

    def apply(self, netlist: Netlist) -> Tuple[Netlist, DeltaImpact]:
        """The edited netlist (a copy) plus the computed impact."""
        edited = netlist.copy(
            name=f"{netlist.name}+eco{self.fingerprint()[:8]}")
        added: Set[str] = set()
        removed: Set[str] = set()
        reconnected: Set[str] = set()
        resized: Set[str] = set()
        nets: Set[str] = set()
        for op in self.ops:
            cells, op_nets = op.apply_to(edited)
            nets.update(op_nets)
            if isinstance(op, AddCell):
                added.update(cells)
                removed.discard(op.name)
            elif isinstance(op, RemoveCell):
                removed.update(cells)
                added.discard(op.name)
                reconnected.discard(op.name)
            elif isinstance(op, ResizeCell):
                resized.add(op.name)
            else:
                reconnected.update(cells)
        impact = DeltaImpact(
            added=frozenset(added), removed=frozenset(removed),
            reconnected=frozenset(reconnected - added),
            resized=frozenset(resized - removed),
            touched_nets=frozenset(nets),
            constraints=self.constraints())
        return edited, impact


def random_delta(netlist: Netlist, fraction: float,
                 seed: int = 3) -> NetlistDelta:
    """A deterministic, loop-safe random edit of ``fraction`` of the
    cells — the scripted-edit generator the CLI, CI smoke job and the
    benchmark share.

    Loop safety by construction: reconnects only target nets driven by
    sequential cells or primary inputs (no combinational edge is ever
    added into existing logic), and added LUTs feed a fresh primary
    output (no outgoing combinational edges).
    """
    rng = random.Random(seed)
    cells = sorted(netlist.cells)
    if not cells:
        raise DeltaError("cannot edit an empty netlist")
    count = max(1, int(len(cells) * fraction))
    safe_nets = sorted(
        name for name, net in netlist.nets.items()
        if (net.driver is None and name in netlist.inputs)
        or (net.driver is not None
            and netlist.cells[net.driver].is_sequential))
    if not safe_nets:
        safe_nets = sorted(netlist.inputs)
    if not safe_nets:
        raise DeltaError("no loop-safe source nets to reconnect to")
    any_nets = sorted(name for name, net in netlist.nets.items()
                      if net.driver is not None
                      or name in netlist.inputs)
    ops: List[DeltaOp] = []
    for index in range(count):
        cell = netlist.cells[cells[rng.randrange(len(cells))]]
        roll = rng.random()
        if roll < 0.3 and cell.kind == LUT4:
            ops.append(ResizeCell(name=cell.name,
                                  init=rng.randrange(1 << 16)))
        elif roll < 0.8 and cell.inputs:
            pin = rng.randrange(len(cell.inputs))
            target = safe_nets[rng.randrange(len(safe_nets))]
            ops.append(ReconnectInput(cell=cell.name, index=pin,
                                      net=target))
        else:
            sources = tuple(any_nets[rng.randrange(len(any_nets))]
                            for _ in range(2))
            ops.append(AddCell(
                name=f"eco_s{seed}_c{index}", kind=LUT4,
                inputs=sources, output=f"eco_s{seed}_n{index}",
                init=rng.randrange(1 << 16), primary_output=True))
    return NetlistDelta(ops=tuple(ops))


# -- warm-start placement ---------------------------------------------------


def eco_place(netlist: Netlist, device: Device, base: PlacementResult,
              changed_cells: Set[str], seed: int = 1,
              effort: float = 1.0,
              tracer: Optional[Tracer] = None) -> PlacementResult:
    """Warm-start annealing from a cached base placement.

    The movable set is the changed cells plus every cell sharing a net
    with them (the range-limit neighborhood); everything else keeps its
    base tile *bit-identically*.  The anneal runs at a fraction of the
    cold starting temperature inside a reduced range limit, on the base
    placement's grid (so frozen tiles stay legal).
    """
    rng = random.Random(seed)
    grid = _Grid(device, netlist, dims=base.grid)
    sites = _SiteManager(grid)
    cols, rows = grid.cols, grid.rows

    cell_names: List[str] = list(netlist.cells)
    cell_index = {name: index for index, name in enumerate(cell_names)}
    classes: List[str] = [_SiteManager.site_class(cell.kind)
                          for cell in netlist.cells.values()]
    ncells = len(cell_names)
    if ncells == 0:
        return PlacementResult({}, 0.0, 0.0, 0, (cols, rows))

    # The movable set: the changed cells, plus the low-fanout one-net
    # neighborhood of the *added* ones (a fresh cell needs its
    # neighbors to shuffle locally so it can legalize near them).
    # Neighbors of merely-reconnected cells stay frozen — they still
    # participate in the cost function as fixed pins.  Every cell the
    # anneal moves cascades into the rip-up set and the STA cone, so
    # unfreezing a reconnect source's whole sink cloud (often a
    # register feeding dozens of sinks) would defeat incrementality.
    movable: Set[str] = {name for name in changed_cells
                         if name in netlist.cells}
    hot_nets: Set[str] = set()
    for name in sorted(movable):
        cell = netlist.cells[name]
        if base.locations.get(name) is not None:
            continue                      # pre-existing cell: no spread
        hot_nets.update(cell.inputs)
        if cell.output is not None:
            hot_nets.add(cell.output)
    for net_name in sorted(hot_nets):
        net = netlist.nets.get(net_name)
        if net is None or net.fanout > _NEIGHBOR_FANOUT_CAP:
            continue
        if net.driver is not None and net.driver in netlist.cells:
            movable.add(net.driver)
        movable.update(sink for sink in net.sinks
                       if sink in netlist.cells)

    # Warm start: every surviving cell keeps its base tile; cells the
    # delta added go to the nearest free site of their class, seeded at
    # the centroid of their already-placed neighbors.
    xs: List[int] = [0] * ncells
    ys: List[int] = [0] * ncells
    placed: Set[int] = set()
    added: List[int] = []
    for index, name in enumerate(cell_names):
        tile = base.locations.get(name)
        if tile is None:
            added.append(index)
            continue
        cls = classes[index]
        if not sites.has_room(cls, tile):
            raise FlowError(
                f"eco warm start: base tile {tile} of {name!r} is over "
                f"capacity (incompatible base placement)")
        sites.occupy(cls, tile)
        xs[index], ys[index] = tile
        placed.add(index)

    def neighbor_centroid(index: int) -> Tuple[int, int]:
        cell = netlist.cells[cell_names[index]]
        points: List[Tuple[int, int]] = []
        net_names = list(cell.inputs)
        if cell.output is not None:
            net_names.append(cell.output)
        for net_name in net_names:
            net = netlist.nets.get(net_name)
            if net is None:
                continue
            for pin in ([net.driver] if net.driver else []) + net.sinks:
                other = cell_index.get(pin)
                if other is not None and other in placed:
                    points.append((xs[other], ys[other]))
        if not points:
            return cols // 2, rows // 2
        return (round(sum(p[0] for p in points) / len(points)),
                round(sum(p[1] for p in points) / len(points)))

    for index in added:
        cls = classes[index]
        cx, cy = neighbor_centroid(index)
        candidates = sites.free[cls].items
        if not candidates:
            raise FlowError("eco warm start: no free site for added cell")
        tile = min(candidates,
                   key=lambda t: (abs(t[0] - cx) + abs(t[1] - cy), t))
        sites.occupy(cls, tile)
        xs[index], ys[index] = tile
        placed.add(index)

    warm_locations = {cell_names[i]: (xs[i], ys[i])
                      for i in range(ncells)}
    initial = total_hpwl(netlist, warm_locations)

    movable_indices = [cell_index[name] for name in cell_names
                       if name in movable]
    frozen = ncells - len(movable_indices)

    # Anneal only the nets with at least one movable pin.
    net_pins: List[List[int]] = []
    nets_of_cell: Dict[int, List[Tuple[int, int]]] = {
        index: [] for index in movable_indices}
    movable_set = set(movable_indices)
    for net in netlist.nets.values():
        pins: List[int] = []
        if net.driver is not None and net.driver in cell_index:
            pins.append(cell_index[net.driver])
        for sink in net.sinks:
            index = cell_index.get(sink)
            if index is not None:
                pins.append(index)
        if not pins or not any(pin in movable_set for pin in pins):
            continue
        net_id = len(net_pins)
        net_pins.append(pins)
        counts: Dict[int, int] = {}
        for pin in pins:
            counts[pin] = counts.get(pin, 0) + 1
        for pin, pin_count in counts.items():
            if pin in movable_set:
                nets_of_cell[pin].append((net_id, pin_count))

    iterations = 0
    accepted = 0
    window_fallbacks = 0
    rescans = 0
    final_hpwl = initial
    if movable_indices and net_pins:
        tracker = _IncrementalHpwl(net_pins, xs, ys)
        local_cost = tracker.cost
        moves = max(100, int(100 * effort * len(movable_indices)))
        # Low-temperature restart: a quarter of the local cost per
        # movable cell — enough hill-climbing to legalize the edit's
        # neighborhood, cold enough not to disturb converged structure.
        temperature = max(0.5, local_cost / max(1, len(movable_indices))
                          * 0.25)
        initial_temperature = temperature
        cooling = 0.95 ** (1.0 / max(1, moves // 100))
        span = max(cols, rows)
        radius = float(max(3, span // 4))
        block = max(25, moves // 100)
        block_moves = 0
        block_accepted = 0
        move_pin = tracker.move_pin
        window_tries = 8
        added_set = set(added)
        for _ in range(moves):
            iterations += 1
            index = movable_indices[rng.randrange(len(movable_indices))]
            cls = classes[index]
            ox, oy = xs[index], ys[index]
            new_tile: Optional[Tuple[int, int]] = None
            if cls in ("lut", "ff"):
                r = int(radius)
                cmin, cmax = max(0, ox - r), min(cols - 1, ox + r)
                rmin, rmax = max(0, oy - r), min(rows - 1, oy + r)
                for _try in range(window_tries):
                    candidate = (rng.randint(cmin, cmax),
                                 rng.randint(rmin, rmax))
                    if sites.has_room(cls, candidate):
                        new_tile = candidate
                        break
                if new_tile is None:
                    window_fallbacks += 1
                    new_tile = sites.free[cls].sample(rng)
            else:
                new_tile = sites.free[cls].sample(rng)
            if new_tile is None:
                continue
            nx, ny = new_tile
            xs[index], ys[index] = nx, ny
            delta = 0
            affected = nets_of_cell[index]
            saved = [(net_id, tracker.snapshot(net_id))
                     for net_id, _count in affected]
            for net_id, pin_count in affected:
                delta += move_pin(net_id, ox, oy, nx, ny, pin_count)
            block_moves += 1
            # A first move of a pre-existing cell rips its nets and
            # re-opens their STA cones downstream; charge for that.
            cost = delta if (index in added_set
                             or base.locations.get(cell_names[index])
                             != (ox, oy)) \
                else delta + _DISTURB_PENALTY
            if cost <= 0 or rng.random() < math.exp(-cost / temperature):
                accepted += 1
                block_accepted += 1
                sites.release(cls, (ox, oy))
                sites.occupy(cls, new_tile)
            else:
                xs[index], ys[index] = ox, oy
                for net_id, state in saved:
                    tracker.restore(net_id, state)
            if block_moves >= block:
                rate = block_accepted / block_moves
                floor = max(2.0, span * 0.25
                            * (temperature / initial_temperature) ** 0.5)
                radius = min(float(span),
                             max(floor, radius * (0.56 + rate)))
                block_moves = 0
                block_accepted = 0
            temperature = max(0.01, temperature * cooling)
        rescans = tracker.rescans
        # Frozen nets cannot change, so the final HPWL is the warm-start
        # total shifted by the tracked local delta — exactly equal to a
        # full rescan (integer spans), without the O(nets) pass.
        final_hpwl = initial + (tracker.cost - local_cost)

    locations = {cell_names[i]: (xs[i], ys[i]) for i in range(ncells)}
    moved = sum(1 for name, tile in locations.items()
                if base.locations.get(name) != tile)
    stats = {"moves": iterations, "accepted": accepted,
             "rescans": rescans, "window_fallbacks": window_fallbacks,
             "annealed": len(movable_indices), "frozen": frozen,
             "moved": moved, "added": len(added)}
    if tracer is not None:
        tracer.counter("place.moves.total", "fabric").add(iterations)
        tracer.counter("place.moves.accepted", "fabric").add(accepted)
    return PlacementResult(locations=locations,
                           hpwl=final_hpwl,
                           initial_hpwl=initial,
                           iterations=iterations,
                           grid=(cols, rows), stats=stats)


# -- the ECO report ---------------------------------------------------------


@dataclass
class EcoReport:
    """Result of one incremental edit-to-bitstream run.

    ``flow`` is a full :class:`~repro.fabric.nxmap.FlowReport` of the
    *edited* design; ``eco`` carries the incremental evidence (movable
    set size, ripped nets, STA cone size).  ``to_json`` is fully
    deterministic — no wall times — so identical edits produce
    byte-identical wire reports (the service warm-hit contract).
    """

    device: str
    base_netlist: str
    delta: List[Dict[str, Any]]
    delta_fingerprint: str
    base_hpwl: float
    flow: FlowReport
    eco: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "device": self.device,
            "base_netlist": self.base_netlist,
            "delta": self.delta,
            "delta_fingerprint": self.delta_fingerprint,
            "base_hpwl": self.base_hpwl,
            "flow": self.flow.to_json(),
            "eco": dict(sorted(self.eco.items())),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "EcoReport":
        return cls(
            device=payload["device"],
            base_netlist=payload["base_netlist"],
            delta=[dict(op) for op in payload["delta"]],
            delta_fingerprint=payload["delta_fingerprint"],
            base_hpwl=payload["base_hpwl"],
            flow=FlowReport.from_json(payload["flow"]),
            eco=dict(payload["eco"]),
        )

    def summary(self) -> str:
        eco = self.eco
        return (f"eco {self.delta_fingerprint[:8]}: "
                f"{len(self.delta)} op(s), "
                f"{eco.get('cells_moved', 0)} cell(s) moved, "
                f"{eco.get('nets_ripped', 0)} net(s) ripped, "
                f"STA cone {eco.get('sta_cone_size', 0)} — "
                f"{self.flow.summary()}")


# -- the flow ---------------------------------------------------------------


class EcoFlow:
    """Incremental re-implementation of one edit on a base project.

    The base :class:`NXmapProject` supplies the cached placement,
    routing and timing state (computed cold if its cache has been
    evicted — the delta-chained keys then rebuild below the new base
    keys, so the fallback is transparent).  ``run()`` produces an
    :class:`EcoReport` for the edited design.
    """

    def __init__(self, project: NXmapProject, delta: NetlistDelta,
                 tracer: Optional[Tracer] = None) -> None:
        self.project = project
        self.delta = delta
        self.tracer = tracer if tracer is not None else project.tracer
        self.cache = project.cache
        self.netlist: Optional[Netlist] = None
        self.impact: Optional[DeltaImpact] = None
        self.placement: Optional[PlacementResult] = None
        self.routing: Optional[RoutingResult] = None
        self.timing: Optional[TimingReport] = None
        self._base_state: Optional[StaState] = None

    # -- delta-chained content addressing -----------------------------------

    def _eco_key(self, stage: str, parent: Optional[str],
                 **options: Any) -> Optional[str]:
        """``content_key(parent stage key, delta, options)``.

        ``parent`` is the base stage's key for the first ECO stage and
        the previous ECO stage's key after that, so the whole incremental
        chain hangs off the base placement identity plus the canonical
        delta — the delta-chained key contract.
        """
        if self.cache is None or parent is None:
            return None
        return content_key("fabric", {
            "stage": stage, "parent": parent,
            "delta": self.delta.canonical(),
            "kernel": ECO_KERNEL_VERSION,
            "options": options})

    def _cached(self, key: Optional[str], decoder, compute, encoder):
        if self.cache is None or key is None:
            return compute()
        hit, value = self.cache.get("fabric", key, decoder)
        if hit:
            return value
        value = compute()
        self.cache.put("fabric", key, value, encoder)
        return value

    def _span(self, name: str, **attributes):
        if self.tracer is None:
            return nullcontext(None)
        return self.tracer.span(name, "fabric",
                                design=self.project.netlist.name,
                                **attributes)

    # -- the incremental flow ----------------------------------------------

    def prepare_base(self, effort: float = 1.0,
                     channel_width: int = 16) -> StaState:
        """Ensure the base implementation this flow increments from.

        Base placement/routing warm from the cache when present and are
        recomputed cold when evicted — either way the stage keys are
        rebuilt, so the delta chain stays consistent.  The full-STA
        propagation state is cached under the base route key (stage
        ``sta-state``): in the interactive scenario it is part of the
        implemented design, so callers may run this outside the timed
        edit loop.
        """
        project = self.project
        if project.placement is None:
            project.run_place(effort=effort)
        if project.routing is None:
            project.run_route(channel_width=channel_width)
        if self._base_state is None:
            state_key = (project._stage_key("sta-state",
                                            project._route_key)
                         if self.cache is not None else None)
            with self._span("eco.sta.base"):
                self._base_state = self._cached(
                    state_key, StaState.from_json,
                    lambda: analyze_timing_state(
                        project.netlist, project.device,
                        routing=project.routing,
                        locations=project.placement.locations)[1],
                    StaState.to_json)
        return self._base_state

    def run(self, target_clock_ns: float = 10.0, effort: float = 1.0,
            channel_width: int = 16) -> EcoReport:
        project = self.project
        device = project.device
        tracer = self.tracer

        with self._span("eco", ops=len(self.delta.ops)):
            base_state = self.prepare_base(effort=effort,
                                           channel_width=channel_width)
            base_place = project.placement
            base_route = project.routing

            # Apply the edit; the shadow project re-validates it and
            # checks device capacity (and later regenerates the
            # bitstream through the delta-chained key).
            edited, impact = self.delta.apply(project.netlist)
            self.netlist, self.impact = edited, impact
            try:
                shadow = NXmapProject(edited, device, seed=project.seed,
                                      tracer=tracer, cache=self.cache)
            except FlowError as error:
                raise FlowError(f"edited netlist rejected: {error}")
            target = impact.constraints.get("target_clock_ns",
                                            target_clock_ns)
            changed = set(impact.changed_cells)

            # (a) Warm-start placement.
            place_key = self._eco_key("eco-place", project._place_key,
                                      effort=effort)
            with self._span("eco.place", changed=len(changed)) as span:
                placement = self._cached(
                    place_key, PlacementResult.from_json,
                    lambda: eco_place(edited, device, base_place,
                                      changed, seed=project.seed,
                                      effort=effort, tracer=tracer),
                    PlacementResult.to_json)
                if span is not None:
                    span.attributes["moved"] = \
                        placement.stats.get("moved", 0)
                    span.attributes["frozen"] = \
                        placement.stats.get("frozen", 0)
            self.placement = placement
            moved_cells = {name for name, tile
                           in placement.locations.items()
                           if base_place.locations.get(name) != tile}

            # (b) Delta routing.  A base route tree stays valid exactly
            # when its net's connectivity and its pins' tiles are both
            # unchanged, so rip the delta's touched nets (connectivity)
            # plus every net of a moved cell (pin positions).  Changed-
            # but-unmoved cells add nothing: their connectivity edits
            # are already the touched nets.
            rip: Set[str] = {name for name in impact.touched_nets
                             if name in edited.nets}
            for name in sorted(moved_cells):
                cell = edited.cells.get(name)
                if cell is None:
                    continue
                rip.update(net for net in cell.inputs
                           if net in edited.nets)
                if cell.output is not None and cell.output in edited.nets:
                    rip.add(cell.output)
            ripped_existing = sum(1 for name in rip
                                  if name in base_route.routes)
            route_key = self._eco_key("eco-route", place_key,
                                      channel_width=channel_width)
            with self._span("eco.route", ripped=ripped_existing) as span:
                routing = self._cached(
                    route_key, RoutingResult.from_json,
                    lambda: route(edited, placement.locations,
                                  placement.grid,
                                  channel_width=channel_width,
                                  tracer=tracer, warm=base_route,
                                  reroute_nets=rip),
                    RoutingResult.to_json)
                if span is not None:
                    span.attributes["wirelength"] = routing.wirelength
                    span.attributes["failed"] = \
                        routing.failed_connections
            self.routing = routing

            # (c) Cone-limited STA, merged into the cached base state.
            # The cone size rides along in the cached payload so a warm
            # hit reports the same number the cold run measured — the
            # byte-identical warm-report contract covers ``eco`` stats.
            sta_key = self._eco_key("eco-sta", route_key,
                                    target_clock_ns=target)
            with self._span("eco.sta") as span:

                def compute_sta() -> Tuple[TimingReport, int]:
                    report, _state, size = analyze_timing_cone(
                        edited, device, base_state,
                        changed_cells=changed | moved_cells,
                        changed_nets=rip, target_clock_ns=target,
                        routing=routing,
                        locations=placement.locations)
                    return report, size

                timing, cone_size = self._cached(
                    sta_key,
                    lambda payload: (
                        TimingReport.from_json(payload["report"]),
                        int(payload["cone"])),
                    compute_sta,
                    lambda value: {"report": value[0].to_json(),
                                   "cone": value[1]})
                if span is not None:
                    span.attributes["cone"] = cone_size
                    span.attributes["critical_path_ns"] = \
                        round(timing.critical_path_ns, 6)
            self.timing = timing

            # Bitstream: regeneration is O(cells) and config words may
            # have changed anywhere (resize ops), so rebuild in full.
            shadow.placement = placement
            shadow.routing = routing
            shadow.timing = timing
            # Chain the bitstream stage off the delta-chained place key
            # so the regenerated bitstream is cached per (base, delta).
            shadow._place_key = place_key
            with self._span("eco.bitstream"):
                shadow.run_bitstream()

            eco_stats = {
                "cells_added": len(impact.added),
                "cells_removed": len(impact.removed),
                "cells_reconnected": len(impact.reconnected),
                "cells_resized": len(impact.resized),
                "cells_changed": len(changed),
                "cells_annealed": placement.stats.get("annealed", 0),
                "cells_frozen": placement.stats.get("frozen", 0),
                "cells_moved": len(moved_cells),
                "nets_ripped": ripped_existing,
                "sta_cone_size": cone_size,
            }
            if tracer is not None:
                tracer.counter("eco.cells.moved", "fabric").add(
                    len(moved_cells))
                tracer.counter("eco.nets.ripped", "fabric").add(
                    ripped_existing)
                tracer.counter("eco.sta.cone_size", "fabric").add(
                    cone_size)

            return EcoReport(
                device=device.name,
                base_netlist=project._base()["netlist"],
                delta=self.delta.canonical(),
                delta_fingerprint=self.delta.fingerprint(),
                base_hpwl=base_place.hpwl,
                flow=shadow.report(target),
                eco=eco_stats)
