"""Simulated-annealing placement on the device tile grid.

Sites: every grid tile accepts up to ``LUTS_PER_TILE`` LUT-class cells and
the same number of flip-flops; DSP and BRAM macros live in dedicated
columns (every 8th / 12th column), mirroring a column-based FPGA
floorplan.  The cost function is the half-perimeter wirelength (HPWL)
summed over nets, the classic VPR-style objective.

The annealer is *incremental* (PR 5): per-net bounding boxes carry
pin-count-at-extreme bookkeeping so a move is an O(1) delta in the
common case, falling back to an O(pins) rescan only when the last pin at
an extreme moves inward; free sites come from per-site-class free-lists
(no rejection sampling); and moves are VPR-style range-limited, with a
window that shrinks as the temperature drops.  Results stay
deterministic per seed; ``PLACE_KERNEL_VERSION`` salts the flow-cache
stage key so artifacts of older kernels are never served.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..telemetry import Tracer
from .device import Device, LUTS_PER_TILE
from .netlist import BRAM, CARRY, DFF, DSP, IOB, LUT4, Netlist

_LUT_CLASS = {LUT4, CARRY, IOB}
_DSP_COLUMN_STRIDE = 8
_BRAM_COLUMN_STRIDE = 12

#: Bumped whenever the placement algorithm changes its results; part of
#: the flow-cache stage key (see ``NXmapProject._stage_key``), so stale
#: cached placements from an older kernel can never be returned.
PLACE_KERNEL_VERSION = 2

#: Window samples attempted before falling back to the global free-list.
_WINDOW_TRIES = 8


class PlacementError(Exception):
    pass


@dataclass
class PlacementResult:
    locations: Dict[str, Tuple[int, int]]
    hpwl: float
    initial_hpwl: float
    iterations: int
    grid: Tuple[int, int]
    # Annealer instrumentation: moves accepted, bbox rescan fallbacks,
    # window-sample fallbacks (see the telemetry counters of the same
    # names).  Serialized so warm cache hits report identical evidence.
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        if self.initial_hpwl == 0:
            return 0.0
        return 1.0 - self.hpwl / self.initial_hpwl

    def to_json(self) -> dict:
        return {
            "locations": {name: list(tile)
                          for name, tile in sorted(self.locations.items())},
            "hpwl": self.hpwl,
            "initial_hpwl": self.initial_hpwl,
            "iterations": self.iterations,
            "grid": list(self.grid),
            "stats": dict(sorted(self.stats.items())),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PlacementResult":
        return cls(
            locations={name: (int(tile[0]), int(tile[1]))
                       for name, tile in payload["locations"].items()},
            hpwl=payload["hpwl"],
            initial_hpwl=payload["initial_hpwl"],
            iterations=payload["iterations"],
            grid=(int(payload["grid"][0]), int(payload["grid"][1])),
            stats=dict(payload.get("stats", {})),
        )


class _Grid:
    """Tracks per-tile occupancy for each site class."""

    def __init__(self, device: Device, netlist: Netlist,
                 min_cols: int = 4,
                 dims: Optional[Tuple[int, int]] = None) -> None:
        # Shrink the grid to the design (plus slack) so annealing moves
        # stay local; capacity checks still respect the device limits.
        stats = netlist.stats()
        if not device.fits(stats["luts"], stats["ffs"], stats["dsps"],
                           stats["brams"]):
            raise PlacementError(
                f"design does not fit {device.name}: {stats}")
        if dims is not None:
            # Pin the grid to an existing placement's dimensions (the
            # ECO warm start): frozen tiles must stay legal, so the
            # edited design anneals on the base design's grid.
            self.cols, self.rows = dims
            self.lut_used = {}
            self.ff_used = {}
            self.macro_used = {}
            return
        cells_needed = max(stats["luts"], stats["ffs"]) / LUTS_PER_TILE
        tiles_needed = max(4, int(cells_needed * 1.6) + 2)
        dev_cols, dev_rows = device.grid_size
        cols = min(dev_cols, max(min_cols, math.ceil(math.sqrt(tiles_needed))))
        rows = min(dev_rows, max(min_cols,
                                 math.ceil(tiles_needed / max(1, cols))))
        # Guarantee DSP/BRAM columns exist inside the reduced grid.
        if stats["dsps"]:
            cols = max(cols, _DSP_COLUMN_STRIDE // 2 + 1)
        if stats["brams"]:
            cols = max(cols, _BRAM_COLUMN_STRIDE // 2 + 1)
        self.cols, self.rows = cols, rows
        self.lut_used: Dict[Tuple[int, int], int] = {}
        self.ff_used: Dict[Tuple[int, int], int] = {}
        self.macro_used: Dict[Tuple[int, int], int] = {}

    def site_class(self, kind: str) -> str:
        if kind in _LUT_CLASS:
            return "lut"
        if kind == DFF:
            return "ff"
        return "macro"

    def is_macro_column(self, kind: str, col: int) -> bool:
        if kind == DSP:
            return col % _DSP_COLUMN_STRIDE == _DSP_COLUMN_STRIDE // 2
        if kind == BRAM:
            return col % _BRAM_COLUMN_STRIDE == _BRAM_COLUMN_STRIDE // 2
        return True

    def capacity_left(self, kind: str, tile: Tuple[int, int]) -> bool:
        cls = self.site_class(kind)
        if cls == "lut":
            return self.lut_used.get(tile, 0) < LUTS_PER_TILE
        if cls == "ff":
            return self.ff_used.get(tile, 0) < LUTS_PER_TILE
        return self.is_macro_column(kind, tile[0]) and \
            self.macro_used.get(tile, 0) < 2

    def occupy(self, kind: str, tile: Tuple[int, int]) -> None:
        cls = self.site_class(kind)
        table = {"lut": self.lut_used, "ff": self.ff_used,
                 "macro": self.macro_used}[cls]
        table[tile] = table.get(tile, 0) + 1

    def release(self, kind: str, tile: Tuple[int, int]) -> None:
        cls = self.site_class(kind)
        table = {"lut": self.lut_used, "ff": self.ff_used,
                 "macro": self.macro_used}[cls]
        table[tile] -= 1


class _FreeList:
    """O(1) uniform sampling over the tiles with free capacity.

    Replaces the old 200-try rejection sampler: a tile leaves the list
    when it fills up (swap-pop) and returns when a site frees, so a draw
    is always a single ``randrange``.
    """

    __slots__ = ("items", "pos")

    def __init__(self, tiles: List[Tuple[int, int]]) -> None:
        self.items: List[Tuple[int, int]] = list(tiles)
        self.pos: Dict[Tuple[int, int], int] = {
            tile: index for index, tile in enumerate(self.items)}

    def sample(self, rng: random.Random) -> Optional[Tuple[int, int]]:
        if not self.items:
            return None
        return self.items[rng.randrange(len(self.items))]

    def remove(self, tile: Tuple[int, int]) -> None:
        index = self.pos.pop(tile)
        last = self.items.pop()
        if last != tile:
            self.items[index] = last
            self.pos[last] = index

    def add(self, tile: Tuple[int, int]) -> None:
        if tile not in self.pos:
            self.pos[tile] = len(self.items)
            self.items.append(tile)


class _SiteManager:
    """Occupancy counters plus per-site-class free-lists over the grid."""

    def __init__(self, grid: _Grid) -> None:
        self.grid = grid
        tiles = [(col, row) for col in range(grid.cols)
                 for row in range(grid.rows)]
        self.capacity = {"lut": LUTS_PER_TILE, "ff": LUTS_PER_TILE,
                         "dsp": 2, "bram": 2}
        self.used: Dict[str, Dict[Tuple[int, int], int]] = {
            "lut": {}, "ff": {}, "dsp": {}, "bram": {}}
        self.free = {
            "lut": _FreeList(tiles),
            "ff": _FreeList(tiles),
            "dsp": _FreeList([t for t in tiles
                              if grid.is_macro_column(DSP, t[0])]),
            "bram": _FreeList([t for t in tiles
                               if grid.is_macro_column(BRAM, t[0])]),
        }

    @staticmethod
    def site_class(kind: str) -> str:
        if kind in _LUT_CLASS:
            return "lut"
        if kind == DFF:
            return "ff"
        return "dsp" if kind == DSP else "bram"

    def has_room(self, cls: str, tile: Tuple[int, int]) -> bool:
        return self.used[cls].get(tile, 0) < self.capacity[cls]

    def occupy(self, cls: str, tile: Tuple[int, int]) -> None:
        table = self.used[cls]
        count = table.get(tile, 0) + 1
        table[tile] = count
        if count >= self.capacity[cls]:
            self.free[cls].remove(tile)

    def release(self, cls: str, tile: Tuple[int, int]) -> None:
        table = self.used[cls]
        count = table[tile] - 1
        table[tile] = count
        if count == self.capacity[cls] - 1:
            self.free[cls].add(tile)


def _net_hpwl(netlist: Netlist, locations: Dict[str, Tuple[int, int]],
              net_name: str) -> float:
    net = netlist.nets[net_name]
    points = []
    if net.driver and net.driver in locations:
        points.append(locations[net.driver])
    for sink in net.sinks:
        if sink in locations:
            points.append(locations[sink])
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(netlist: Netlist,
               locations: Dict[str, Tuple[int, int]]) -> float:
    return sum(_net_hpwl(netlist, locations, name)
               for name in netlist.nets)


class _IncrementalHpwl:
    """Per-net bounding boxes with pin-count-at-extreme bookkeeping.

    Moving one pin is O(1) unless it was the *only* pin at a bbox
    extreme and moved inward — then the net is rescanned (O(pins)) and
    the fallback counted.  The tracked total equals ``total_hpwl``
    recomputed from scratch at all times (property-tested).
    """

    __slots__ = ("pins", "xs", "ys", "xmin", "xmax", "ymin", "ymax",
                 "cxmin", "cxmax", "cymin", "cymax", "rescans", "cost")

    def __init__(self, net_pins: List[List[int]],
                 xs: List[int], ys: List[int]) -> None:
        self.pins = net_pins
        self.xs = xs
        self.ys = ys
        count = len(net_pins)
        self.xmin = [0] * count
        self.xmax = [0] * count
        self.ymin = [0] * count
        self.ymax = [0] * count
        self.cxmin = [0] * count
        self.cxmax = [0] * count
        self.cymin = [0] * count
        self.cymax = [0] * count
        self.rescans = 0
        self.cost = 0
        for net in range(count):
            self._rescan(net)
            self.cost += self.span(net)

    def span(self, net: int) -> int:
        return (self.xmax[net] - self.xmin[net]) + \
            (self.ymax[net] - self.ymin[net])

    def _rescan(self, net: int) -> None:
        xs, ys = self.xs, self.ys
        pins = self.pins[net]
        pin_xs = [xs[pin] for pin in pins]
        pin_ys = [ys[pin] for pin in pins]
        xmin, xmax = min(pin_xs), max(pin_xs)
        ymin, ymax = min(pin_ys), max(pin_ys)
        self.xmin[net], self.xmax[net] = xmin, xmax
        self.ymin[net], self.ymax[net] = ymin, ymax
        self.cxmin[net] = pin_xs.count(xmin)
        self.cxmax[net] = pin_xs.count(xmax)
        self.cymin[net] = pin_ys.count(ymin)
        self.cymax[net] = pin_ys.count(ymax)

    def snapshot(self, net: int) -> Tuple[int, ...]:
        return (self.xmin[net], self.xmax[net], self.ymin[net],
                self.ymax[net], self.cxmin[net], self.cxmax[net],
                self.cymin[net], self.cymax[net])

    def restore(self, net: int, state: Tuple[int, ...]) -> None:
        (self.xmin[net], self.xmax[net], self.ymin[net], self.ymax[net],
         self.cxmin[net], self.cxmax[net], self.cymin[net],
         self.cymax[net]) = state

    def move_pin(self, net: int, ox: int, oy: int, nx: int, ny: int,
                 count: int) -> int:
        """Apply one cell move (``count`` pins) to ``net``; return the
        HPWL delta.  The pin coordinate arrays must already hold the new
        location (used by the rescan fallback)."""
        old_span = self.span(net)
        # Insert the pin(s) at the new location.
        if nx < self.xmin[net]:
            self.xmin[net], self.cxmin[net] = nx, count
        elif nx == self.xmin[net]:
            self.cxmin[net] += count
        if nx > self.xmax[net]:
            self.xmax[net], self.cxmax[net] = nx, count
        elif nx == self.xmax[net]:
            self.cxmax[net] += count
        if ny < self.ymin[net]:
            self.ymin[net], self.cymin[net] = ny, count
        elif ny == self.ymin[net]:
            self.cymin[net] += count
        if ny > self.ymax[net]:
            self.ymax[net], self.cymax[net] = ny, count
        elif ny == self.ymax[net]:
            self.cymax[net] += count
        # Remove the pin(s) from the old location; losing the last pin
        # at an extreme forces the rescan fallback.
        rescan = False
        if ox == self.xmin[net]:
            self.cxmin[net] -= count
            rescan |= self.cxmin[net] <= 0
        if ox == self.xmax[net]:
            self.cxmax[net] -= count
            rescan |= self.cxmax[net] <= 0
        if oy == self.ymin[net]:
            self.cymin[net] -= count
            rescan |= self.cymin[net] <= 0
        if oy == self.ymax[net]:
            self.cymax[net] -= count
            rescan |= self.cymax[net] <= 0
        if rescan:
            self.rescans += 1
            self._rescan(net)
        return self.span(net) - old_span


def place(netlist: Netlist, device: Device, seed: int = 1,
          effort: float = 1.0, tracer: Optional[Tracer] = None
          ) -> PlacementResult:
    """Simulated-annealing placement (incremental kernel).

    ``effort`` scales the number of annealing moves (1.0 ≈ 100 moves per
    cell); the run is deterministic for a given seed.

    The input netlist is never mutated: all placement state lives in the
    returned :class:`PlacementResult` (downstream stages take the
    ``locations`` map explicitly).  Writing tiles back onto cells would
    poison content-addressed stage reuse — the ``netlist.stale-placement``
    lint rule audits for netlists carrying such annotations.

    ``tracer`` (optional) receives the annealer counters:
    ``place.moves.accepted``, ``place.moves.total``,
    ``place.bbox.rescans`` and ``place.window.fallbacks``.
    """
    rng = random.Random(seed)
    grid = _Grid(device, netlist)
    sites = _SiteManager(grid)
    cols, rows = grid.cols, grid.rows

    # Per-cell arrays, precomputed outside the move loop.
    cell_names: List[str] = list(netlist.cells)
    cell_index = {name: index for index, name in enumerate(cell_names)}
    classes: List[str] = [_SiteManager.site_class(cell.kind)
                          for cell in netlist.cells.values()]
    ncells = len(cell_names)

    # Initial placement: sequential free-list draw (keeps related cells
    # adjacent because macro elaboration emits them in connectivity
    # order).  Every site class takes the same path — the historical
    # macro/non-macro branch was dead (both arms identical).
    xs: List[int] = [0] * ncells
    ys: List[int] = [0] * ncells
    for index in range(ncells):
        cls = classes[index]
        tile = sites.free[cls].sample(rng)
        if tile is None:
            raise PlacementError("no free site found (grid saturated)")
        sites.occupy(cls, tile)
        xs[index], ys[index] = tile

    def result_locations() -> Dict[str, Tuple[int, int]]:
        return {cell_names[i]: (xs[i], ys[i]) for i in range(ncells)}

    if ncells == 0:
        return PlacementResult({}, 0.0, 0.0, 0, (cols, rows))

    # Per-net pin arrays (cell indices, with multiplicity) and the
    # reverse map cell → [(net, pin count)], precomputed once.
    net_pins: List[List[int]] = []
    nets_of_cell: List[List[Tuple[int, int]]] = [[] for _ in range(ncells)]
    for net in netlist.nets.values():
        pins: List[int] = []
        if net.driver is not None and net.driver in cell_index:
            pins.append(cell_index[net.driver])
        for sink in net.sinks:
            index = cell_index.get(sink)
            if index is not None:
                pins.append(index)
        if not pins:
            continue
        net_id = len(net_pins)
        net_pins.append(pins)
        counts: Dict[int, int] = {}
        for pin in pins:
            counts[pin] = counts.get(pin, 0) + 1
        for pin, count in counts.items():
            nets_of_cell[pin].append((net_id, count))

    tracker = _IncrementalHpwl(net_pins, xs, ys)
    cost = tracker.cost
    initial = cost
    moves = max(200, int(100 * effort * ncells))
    temperature = max(1.0, cost / max(1, ncells) * 2)
    initial_temperature = temperature
    cooling = 0.95 ** (1.0 / max(1, moves // 100))
    span = max(cols, rows)
    # VPR-style range limit: adapted every block of moves towards the
    # classic 0.44 target accept rate — the window widens while moves
    # are cheap (hot) and contracts as the anneal freezes.
    radius = float(span)
    block = max(50, moves // 100)
    block_moves = 0
    block_accepted = 0
    iterations = 0
    accepted = 0
    window_fallbacks = 0
    move_pin = tracker.move_pin
    for _ in range(moves):
        iterations += 1
        index = rng.randrange(ncells)
        cls = classes[index]
        ox, oy = xs[index], ys[index]
        new_tile: Optional[Tuple[int, int]] = None
        if cls in ("lut", "ff"):
            r = int(radius)
            cmin, cmax = max(0, ox - r), min(cols - 1, ox + r)
            rmin, rmax = max(0, oy - r), min(rows - 1, oy + r)
            has_room = sites.has_room
            for _try in range(_WINDOW_TRIES):
                candidate = (rng.randint(cmin, cmax), rng.randint(rmin, rmax))
                if has_room(cls, candidate):
                    new_tile = candidate
                    break
            if new_tile is None:
                window_fallbacks += 1
                new_tile = sites.free[cls].sample(rng)
        else:
            new_tile = sites.free[cls].sample(rng)
        if new_tile is None:
            continue
        nx, ny = new_tile
        xs[index], ys[index] = nx, ny
        delta = 0
        affected = nets_of_cell[index]
        saved = [(net_id, tracker.snapshot(net_id))
                 for net_id, _count in affected]
        for net_id, count in affected:
            delta += move_pin(net_id, ox, oy, nx, ny, count)
        block_moves += 1
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            accepted += 1
            block_accepted += 1
            sites.release(cls, (ox, oy))
            sites.occupy(cls, new_tile)
            cost += delta
        else:
            xs[index], ys[index] = ox, oy
            for net_id, state in saved:
                tracker.restore(net_id, state)
        if block_moves >= block:
            rate = block_accepted / block_moves
            # Accept-rate adaptation (target 0.44) with a temperature-
            # tied floor: the window may not collapse faster than the
            # anneal itself cools, or structured netlists lose the
            # coarse shuffling phase and freeze into local minima.
            floor = max(2.0, span * (temperature / initial_temperature)
                        ** 0.5)
            radius = min(float(span), max(floor, radius * (0.56 + rate)))
            block_moves = 0
            block_accepted = 0
        temperature = max(0.01, temperature * cooling)

    stats = {"moves": iterations, "accepted": accepted,
             "rescans": tracker.rescans,
             "window_fallbacks": window_fallbacks}
    if tracer is not None:
        tracer.counter("place.moves.total", "fabric").add(iterations)
        tracer.counter("place.moves.accepted", "fabric").add(accepted)
        tracer.counter("place.bbox.rescans", "fabric").add(tracker.rescans)
        tracer.counter("place.window.fallbacks", "fabric").add(
            window_fallbacks)
    return PlacementResult(locations=result_locations(), hpwl=cost,
                           initial_hpwl=initial, iterations=iterations,
                           grid=(cols, rows), stats=stats)
