"""Simulated-annealing placement on the device tile grid.

Sites: every grid tile accepts up to ``LUTS_PER_TILE`` LUT-class cells and
the same number of flip-flops; DSP and BRAM macros live in dedicated
columns (every 8th / 12th column), mirroring a column-based FPGA
floorplan.  The cost function is the half-perimeter wirelength (HPWL)
summed over nets, the classic VPR-style objective.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .device import Device, LUTS_PER_TILE
from .netlist import BRAM, CARRY, DFF, DSP, IOB, LUT4, Netlist

_LUT_CLASS = {LUT4, CARRY, IOB}
_DSP_COLUMN_STRIDE = 8
_BRAM_COLUMN_STRIDE = 12


class PlacementError(Exception):
    pass


@dataclass
class PlacementResult:
    locations: Dict[str, Tuple[int, int]]
    hpwl: float
    initial_hpwl: float
    iterations: int
    grid: Tuple[int, int]

    @property
    def improvement(self) -> float:
        if self.initial_hpwl == 0:
            return 0.0
        return 1.0 - self.hpwl / self.initial_hpwl

    def to_json(self) -> dict:
        return {
            "locations": {name: list(tile)
                          for name, tile in sorted(self.locations.items())},
            "hpwl": self.hpwl,
            "initial_hpwl": self.initial_hpwl,
            "iterations": self.iterations,
            "grid": list(self.grid),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PlacementResult":
        return cls(
            locations={name: (int(tile[0]), int(tile[1]))
                       for name, tile in payload["locations"].items()},
            hpwl=payload["hpwl"],
            initial_hpwl=payload["initial_hpwl"],
            iterations=payload["iterations"],
            grid=(int(payload["grid"][0]), int(payload["grid"][1])),
        )


class _Grid:
    """Tracks per-tile occupancy for each site class."""

    def __init__(self, device: Device, netlist: Netlist,
                 min_cols: int = 4) -> None:
        # Shrink the grid to the design (plus slack) so annealing moves
        # stay local; capacity checks still respect the device limits.
        stats = netlist.stats()
        if not device.fits(stats["luts"], stats["ffs"], stats["dsps"],
                           stats["brams"]):
            raise PlacementError(
                f"design does not fit {device.name}: {stats}")
        cells_needed = max(stats["luts"], stats["ffs"]) / LUTS_PER_TILE
        tiles_needed = max(4, int(cells_needed * 1.6) + 2)
        dev_cols, dev_rows = device.grid_size
        cols = min(dev_cols, max(min_cols, math.ceil(math.sqrt(tiles_needed))))
        rows = min(dev_rows, max(min_cols,
                                 math.ceil(tiles_needed / max(1, cols))))
        # Guarantee DSP/BRAM columns exist inside the reduced grid.
        if stats["dsps"]:
            cols = max(cols, _DSP_COLUMN_STRIDE // 2 + 1)
        if stats["brams"]:
            cols = max(cols, _BRAM_COLUMN_STRIDE // 2 + 1)
        self.cols, self.rows = cols, rows
        self.lut_used: Dict[Tuple[int, int], int] = {}
        self.ff_used: Dict[Tuple[int, int], int] = {}
        self.macro_used: Dict[Tuple[int, int], int] = {}

    def site_class(self, kind: str) -> str:
        if kind in _LUT_CLASS:
            return "lut"
        if kind == DFF:
            return "ff"
        return "macro"

    def is_macro_column(self, kind: str, col: int) -> bool:
        if kind == DSP:
            return col % _DSP_COLUMN_STRIDE == _DSP_COLUMN_STRIDE // 2
        if kind == BRAM:
            return col % _BRAM_COLUMN_STRIDE == _BRAM_COLUMN_STRIDE // 2
        return True

    def capacity_left(self, kind: str, tile: Tuple[int, int]) -> bool:
        cls = self.site_class(kind)
        if cls == "lut":
            return self.lut_used.get(tile, 0) < LUTS_PER_TILE
        if cls == "ff":
            return self.ff_used.get(tile, 0) < LUTS_PER_TILE
        return self.is_macro_column(kind, tile[0]) and \
            self.macro_used.get(tile, 0) < 2

    def occupy(self, kind: str, tile: Tuple[int, int]) -> None:
        cls = self.site_class(kind)
        table = {"lut": self.lut_used, "ff": self.ff_used,
                 "macro": self.macro_used}[cls]
        table[tile] = table.get(tile, 0) + 1

    def release(self, kind: str, tile: Tuple[int, int]) -> None:
        cls = self.site_class(kind)
        table = {"lut": self.lut_used, "ff": self.ff_used,
                 "macro": self.macro_used}[cls]
        table[tile] -= 1

    def random_tile(self, kind: str, rng: random.Random) -> Tuple[int, int]:
        for _ in range(200):
            col = rng.randrange(self.cols)
            row = rng.randrange(self.rows)
            if self.capacity_left(kind, (col, row)):
                return (col, row)
        raise PlacementError("no free site found (grid saturated)")


def _net_hpwl(netlist: Netlist, locations: Dict[str, Tuple[int, int]],
              net_name: str) -> float:
    net = netlist.nets[net_name]
    points = []
    if net.driver and net.driver in locations:
        points.append(locations[net.driver])
    for sink in net.sinks:
        if sink in locations:
            points.append(locations[sink])
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(netlist: Netlist,
               locations: Dict[str, Tuple[int, int]]) -> float:
    return sum(_net_hpwl(netlist, locations, name)
               for name in netlist.nets)


def place(netlist: Netlist, device: Device, seed: int = 1,
          effort: float = 1.0) -> PlacementResult:
    """Simulated-annealing placement.

    ``effort`` scales the number of annealing moves (1.0 ≈ 100 moves per
    cell); the run is deterministic for a given seed.

    The input netlist is never mutated: all placement state lives in the
    returned :class:`PlacementResult` (downstream stages take the
    ``locations`` map explicitly).  Writing tiles back onto cells would
    poison content-addressed stage reuse — the ``netlist.stale-placement``
    lint rule audits for netlists carrying such annotations.
    """
    rng = random.Random(seed)
    grid = _Grid(device, netlist)
    locations: Dict[str, Tuple[int, int]] = {}

    # Initial placement: sequential scan (keeps related cells adjacent
    # because macro elaboration emits them in connectivity order).
    for cell in netlist.cells.values():
        tile = None
        if grid.site_class(cell.kind) == "macro":
            tile = grid.random_tile(cell.kind, rng)
        else:
            tile = grid.random_tile(cell.kind, rng)
        grid.occupy(cell.kind, tile)
        locations[cell.name] = tile

    # Incremental cost bookkeeping: nets touching each cell.
    nets_of_cell: Dict[str, List[str]] = {name: [] for name in netlist.cells}
    for net in netlist.nets.values():
        if net.driver in nets_of_cell:
            nets_of_cell[net.driver].append(net.name)
        for sink in net.sinks:
            if sink in nets_of_cell:
                nets_of_cell[sink].append(net.name)

    cost = total_hpwl(netlist, locations)
    initial = cost
    cell_names = list(netlist.cells)
    if not cell_names:
        return PlacementResult(locations, 0.0, 0.0, 0,
                               (grid.cols, grid.rows))
    moves = max(200, int(100 * effort * len(cell_names)))
    temperature = max(1.0, cost / max(1, len(cell_names)) * 2)
    cooling = 0.95 ** (1.0 / max(1, moves // 100))
    iterations = 0
    for _ in range(moves):
        iterations += 1
        name = rng.choice(cell_names)
        cell = netlist.cells[name]
        old_tile = locations[name]
        try:
            new_tile = grid.random_tile(cell.kind, rng)
        except PlacementError:
            continue
        affected = nets_of_cell[name]
        before = sum(_net_hpwl(netlist, locations, n) for n in affected)
        locations[name] = new_tile
        after = sum(_net_hpwl(netlist, locations, n) for n in affected)
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            grid.release(cell.kind, old_tile)
            grid.occupy(cell.kind, new_tile)
            cost += delta
        else:
            locations[name] = old_tile
        temperature = max(0.01, temperature * cooling)
    return PlacementResult(locations=locations, hpwl=cost,
                           initial_hpwl=initial, iterations=iterations,
                           grid=(grid.cols, grid.rows))
