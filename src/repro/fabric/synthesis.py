"""Logic synthesis / macro elaboration to the NG technology netlist.

Two entry points:

* :func:`synthesize_component` — structural generators for the Bambu
  library components (adders, multipliers, shifters, ...).  This is what
  Eucalyptus drives: each (component, width, stages) configuration becomes
  a real netlist that is placed, routed and timed to produce the XML
  characterization (paper §II).
* :func:`synthesize_design` — elaboration of a complete scheduled HLS
  design: every bound functional unit expands to its component netlist,
  registers become DFFs, the controller becomes a LUT/FF cloud and
  memories become BRAM macros, all stitched into one flat netlist for the
  NXmap-equivalent backend flow.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from .netlist import BRAM, CARRY, DFF, DSP, LUT4, Cell, Netlist

_DSP_INPUT_WIDTH = 18


class SynthesisError(Exception):
    pass


def _add_pipeline_row(netlist: Netlist, nets: List[str], prefix: str,
                      row: int) -> List[str]:
    """Register a vector of nets; returns the registered net names."""
    out = []
    for i, net in enumerate(nets):
        q = netlist.new_net(f"{prefix}_q{row}_")
        netlist.add_cell(Cell(name=f"{prefix}_ff{row}_{i}", kind=DFF,
                              inputs=[net], output=q))
        out.append(q)
    return out


def _io_vector(netlist: Netlist, prefix: str, width: int) -> List[str]:
    nets = []
    for i in range(width):
        net = f"{prefix}{i}"
        netlist.add_input(net)
        nets.append(net)
    return nets


def synthesize_component(kind: str, width: int, stages: int = 0,
                         name: Optional[str] = None) -> Netlist:
    """Generate the structural netlist of one library component."""
    netlist = Netlist(name or f"{kind}_w{width}_s{stages}")
    builder = _COMPONENT_BUILDERS.get(kind)
    if builder is None:
        raise SynthesisError(f"no structural generator for {kind!r}")
    builder(netlist, width, stages)
    problems = netlist.validate()
    if problems:
        raise SynthesisError(f"{netlist.name}: {problems[0]}")
    return netlist


def _build_addsub(netlist: Netlist, width: int, stages: int) -> None:
    """Ripple/carry-chain adder; pipelining cuts the carry chain.

    With ``stages > 0`` the chain is split into ``stages`` segments with a
    register on the carry (and the produced sum bits) at each boundary, so
    the register-to-register path shrinks to roughly ``width / stages``
    carry cells — the real effect of pipelining an adder.
    """
    a = _io_vector(netlist, "a", width)
    b = _io_vector(netlist, "b", width)
    segment = width if stages <= 0 else max(1, math.ceil(width / stages))
    carry = None
    sums = []
    boundary = 0
    for i in range(width):
        out = netlist.new_net("s")
        inputs = [a[i], b[i]]
        if carry is not None:
            inputs.append(carry)
        carry_out = netlist.new_net("c")
        netlist.add_cell(Cell(name=f"add{i}", kind=CARRY,
                              inputs=inputs, output=out, init=0x9696))
        netlist.add_cell(Cell(name=f"cprop{i}", kind=LUT4,
                              inputs=inputs, output=carry_out, init=0xE8E8))
        carry = carry_out
        sums.append(out)
        if stages > 0 and (i + 1) % segment == 0 and i + 1 < width:
            # Pipeline boundary: register the carry and the sums so far.
            (carry,) = _add_pipeline_row(netlist, [carry],
                                         f"pc{boundary}", 0)
            registered = _add_pipeline_row(netlist, sums, f"ps{boundary}", 0)
            sums = registered
            boundary += 1
    if stages > 0:
        sums = _add_pipeline_row(netlist, sums, "pipe_out", 0)
    for net in sums:
        netlist.add_output(net)


def _build_mult(netlist: Netlist, width: int, stages: int) -> None:
    a = _io_vector(netlist, "a", width)
    b = _io_vector(netlist, "b", width)
    blocks = max(1, math.ceil(width / _DSP_INPUT_WIDTH))
    partials = []
    for bx in range(blocks):
        for by in range(blocks):
            if blocks > 1 and bx + by >= blocks + 1:
                continue  # truncated product terms beyond result width
            out = netlist.new_net("p")
            lo_a = a[bx * _DSP_INPUT_WIDTH:(bx + 1) * _DSP_INPUT_WIDTH]
            lo_b = b[by * _DSP_INPUT_WIDTH:(by + 1) * _DSP_INPUT_WIDTH]
            netlist.add_cell(Cell(name=f"dsp_{bx}_{by}", kind=DSP,
                                  inputs=lo_a + lo_b, output=out))
            partials.append(out)
    # Partial-product adder tree in LUTs.
    level = 0
    while len(partials) > 1:
        next_level = []
        for i in range(0, len(partials) - 1, 2):
            out = netlist.new_net("t")
            netlist.add_cell(Cell(name=f"padd{level}_{i}", kind=LUT4,
                                  inputs=[partials[i], partials[i + 1]],
                                  output=out, init=0x6666))
            next_level.append(out)
        if len(partials) % 2:
            next_level.append(partials[-1])
        partials = next_level
        level += 1
    result = partials
    if stages > 0:
        for row in range(min(stages, 4)):
            result = _add_pipeline_row(netlist, result, "pipe", row)
    for net in result:
        netlist.add_output(net)


def _build_logic(netlist: Netlist, width: int, stages: int) -> None:
    a = _io_vector(netlist, "a", width)
    b = _io_vector(netlist, "b", width)
    outs = []
    for i in range(0, width, 2):
        out = netlist.new_net("y")
        inputs = [a[i], b[i]]
        if i + 1 < width:
            inputs += [a[i + 1], b[i + 1]]
        netlist.add_cell(Cell(name=f"lg{i}", kind=LUT4, inputs=inputs,
                              output=out, init=0x8888))
        outs.append(out)
    for net in outs:
        netlist.add_output(net)


def _build_shifter(netlist: Netlist, width: int, stages: int) -> None:
    data = _io_vector(netlist, "d", width)
    select = _io_vector(netlist, "sel",
                        max(1, math.ceil(math.log2(max(2, width)))))
    current = data
    for level, sel in enumerate(select):
        next_row = []
        shift = 1 << level
        for i in range(width):
            out = netlist.new_net(f"sh{level}_")
            src_hi = current[(i + shift) % width]
            netlist.add_cell(Cell(name=f"mx{level}_{i}", kind=LUT4,
                                  inputs=[current[i], src_hi, sel],
                                  output=out, init=0xCACA))
            next_row.append(out)
        current = next_row
    for net in current:
        netlist.add_output(net)


def _build_comparator(netlist: Netlist, width: int, stages: int) -> None:
    a = _io_vector(netlist, "a", width)
    b = _io_vector(netlist, "b", width)
    chain = None
    for i in range(0, width, 2):
        out = netlist.new_net("cmp")
        inputs = [a[i], b[i]]
        if i + 1 < width:
            inputs += [a[i + 1], b[i + 1]]
        if chain is not None:
            inputs = inputs[:3] + [chain]
        netlist.add_cell(Cell(name=f"cmp{i}", kind=LUT4, inputs=inputs,
                              output=out, init=0x9000))
        chain = out
    netlist.add_output(chain)


def _build_divider(netlist: Netlist, width: int, stages: int) -> None:
    a = _io_vector(netlist, "a", width)
    b = _io_vector(netlist, "b", width)
    remainder = a
    quotient = []
    for step in range(width):
        # One restoring-division row: subtract + select, then register.
        row = []
        for i in range(width):
            out = netlist.new_net(f"div{step}_")
            inputs = [remainder[i], b[i]]
            if i:
                inputs.append(row[-1])
            netlist.add_cell(Cell(name=f"sub{step}_{i}", kind=LUT4,
                                  inputs=inputs, output=out, init=0x9696))
            row.append(out)
        qbit = netlist.new_net(f"q{step}_")
        netlist.add_cell(Cell(name=f"qsel{step}", kind=LUT4,
                              inputs=[row[-1]], output=qbit, init=0x5555))
        quotient.append(qbit)
        remainder = _add_pipeline_row(netlist, row, f"rrem{step}", 0)
    for net in quotient:
        netlist.add_output(net)


def _build_mux(netlist: Netlist, width: int, stages: int) -> None:
    a = _io_vector(netlist, "a", width)
    b = _io_vector(netlist, "b", width)
    sel = netlist.add_input("sel")
    for i in range(width):
        out = netlist.new_net("m")
        netlist.add_cell(Cell(name=f"mux{i}", kind=LUT4,
                              inputs=[a[i], b[i], sel], output=out,
                              init=0xCACA))
        netlist.add_output(out)


def _build_bram_wrapper(netlist: Netlist, width: int, stages: int) -> None:
    addr = _io_vector(netlist, "addr", 10)
    out = netlist.new_net("rd")
    netlist.add_cell(Cell(name="ram0", kind=BRAM, inputs=addr, output=out))
    q = netlist.new_net("rq")
    netlist.add_cell(Cell(name="ram_oreg", kind=DFF, inputs=[out], output=q))
    netlist.add_output(q)


_COMPONENT_BUILDERS = {
    "addsub": _build_addsub,
    "mult": _build_mult,
    "logic": _build_logic,
    "shifter": _build_shifter,
    "comparator": _build_comparator,
    "divider": _build_divider,
    "mux": _build_mux,
    "mem_bram": _build_bram_wrapper,
}


def supported_components() -> List[str]:
    return sorted(_COMPONENT_BUILDERS)


# ---------------------------------------------------------------------------
# Whole-design elaboration
# ---------------------------------------------------------------------------


def _merge(dest: Netlist, src: Netlist, prefix: str,
           input_nets: Optional[List[str]] = None) -> List[str]:
    """Copy ``src`` into ``dest`` with renaming; returns its output nets.

    ``input_nets`` (if given) drive the macro's primary inputs
    round-robin, stitching the macro into the design-level connectivity.
    """
    net_map: Dict[str, str] = {}
    for index, net in enumerate(src.inputs):
        if input_nets:
            net_map[net] = input_nets[index % len(input_nets)]
        else:
            net_map[net] = f"{prefix}.{net}"
            dest.ensure_net(net_map[net])
    for net in src.nets:
        if net not in net_map:
            net_map[net] = f"{prefix}.{net}"
    for cell in src.cells.values():
        dest.add_cell(Cell(
            name=f"{prefix}.{cell.name}", kind=cell.kind,
            inputs=[net_map[n] for n in cell.inputs],
            output=None if cell.output is None else net_map[cell.output],
            init=cell.init))
    return [net_map[n] for n in src.outputs]


def synthesize_design(hls_design, func, name: Optional[str] = None) -> Netlist:
    """Elaborate a scheduled HLS design into a flat technology netlist."""
    from ..hls.ir import operand_width

    netlist = Netlist(name or f"{func.name}_netlist")
    # Global control inputs.
    netlist.add_input("clk")
    start = netlist.add_input("start")

    # Registers -> DFFs, grouped as the binder decided.
    register_nets: List[str] = []
    register_d_nets: List[str] = []
    for register in hls_design.binding.registers.registers:
        d = netlist.new_net(f"{register.name}_d")
        q = netlist.new_net(f"{register.name}_q")
        for bit in range(register.width):
            netlist.add_cell(Cell(name=f"{register.name}_b{bit}", kind=DFF,
                                  inputs=[d], output=q if bit == 0 else
                                  netlist.new_net(f"{register.name}_q{bit}_")))
        register_nets.append(q)
        register_d_nets.append(d)
    if not register_nets:
        register_nets = [start]

    # Per-class operand widths for FU elaboration.
    widths: Dict[str, int] = {}
    for op in func.all_ops():
        cls = op.resource_class
        widths[cls] = max(widths.get(cls, 1), operand_width(op))

    fu_output_nets: List[str] = []
    for cls, count in hls_design.binding.fu.instance_counts.items():
        base = cls.split(":", 1)[0]
        if base == "call" or cls.startswith("mem_axi"):
            continue
        kind = "mem_bram" if cls == "mem_bram" else base
        if kind not in _COMPONENT_BUILDERS:
            continue
        width = min(widths.get(cls, 32), 64)
        for instance in range(count):
            macro = synthesize_component(kind, width)
            outs = _merge(netlist, macro, f"{cls}_{instance}",
                          input_nets=register_nets)
            fu_output_nets.extend(outs)

    # Local memories -> BRAM macros.
    for mem in func.mems.values():
        if mem.is_param or mem.storage == "axi":
            continue
        report_area = hls_design.report.area.breakdown.get(
            f"ram:{mem.name}", {})
        count = max(1, report_area.get("brams", 0)) \
            if report_area.get("brams") else 0
        for index in range(count):
            out = netlist.new_net(f"{mem.name}_rd")
            netlist.add_cell(Cell(name=f"{mem.name}_bram{index}", kind=BRAM,
                                  inputs=register_nets[:4], output=out))
            fu_output_nets.append(out)

    # Controller: state FFs + next-state/decode LUT cloud.
    fsm = hls_design.fsm
    state_bits = fsm.state_bits()
    state_q: List[str] = []
    state_d: List[str] = []
    for bit in range(state_bits):
        d = netlist.new_net(f"state_d{bit}_")
        q = netlist.new_net(f"state_q{bit}_")
        netlist.add_cell(Cell(name=f"state_ff{bit}", kind=DFF,
                              inputs=[d], output=q))
        state_q.append(q)
        state_d.append(d)
    sources = state_q + fu_output_nets[:8] + [start]
    decode_outputs = []
    for index in range(max(1, fsm.state_count * 2)):
        out = netlist.new_net("dec")
        inputs = [sources[(index + k) % len(sources)] for k in range(4)]
        netlist.add_cell(Cell(name=f"decode{index}", kind=LUT4,
                              inputs=inputs, output=out, init=0x1234))
        decode_outputs.append(out)
    # Register input multiplexing: each register's D input is driven by a
    # LUT selecting between datapath results and decode outputs — this is
    # the write-enable/mux logic a real FSMD carries per register.
    mux_sources = (fu_output_nets or decode_outputs) + decode_outputs
    for index, d_net in enumerate(register_d_nets):
        inputs = [mux_sources[(index + k) % len(mux_sources)]
                  for k in range(3)] + [state_q[index % len(state_q)]]
        netlist.add_cell(Cell(name=f"rmux{index}", kind=LUT4,
                              inputs=inputs, output=d_net, init=0xCACA))
    # Next-state logic drives the state FF D inputs.
    for bit, d_net in enumerate(state_d):
        netlist.add_cell(Cell(
            name=f"nsl{bit}", kind=LUT4,
            inputs=[decode_outputs[(bit + k) % len(decode_outputs)]
                    for k in range(4)],
            output=d_net, init=0x6996))
    done = netlist.new_net("done")
    netlist.add_cell(Cell(name="done_lut", kind=LUT4,
                          inputs=decode_outputs[:4], output=done,
                          init=0x8000))
    netlist.add_output(done)
    return netlist


def synthesize_random(n_cells: int = 10_000, seed: int = 7) -> Netlist:
    """A synthetic LUT/FF design with window-local random connectivity,
    the scale of the DSP workloads the paper maps onto NG-ULTRA.

    Deterministic per seed; shared by the kernel benchmarks, the ECO
    benchmark and the CI eco-smoke job, so "a 1% edit of the 10k design"
    means the same design everywhere.
    """
    rng = random.Random(seed)
    netlist = Netlist(f"synth{n_cells}")
    for i in range(32):
        netlist.add_input(f"pi{i}")
    recent = [f"pi{i}" for i in range(32)]
    for i in range(n_cells):
        out = f"n{i}"
        if i % 5 == 4:
            src = recent[-1 - rng.randrange(min(len(recent), 24))]
            netlist.add_cell(Cell(name=f"ff{i}", kind=DFF,
                                  inputs=[src], output=out))
        else:
            ins = []
            for _ in range(2 + rng.randrange(3)):
                if rng.random() < 0.05:
                    ins.append(f"pi{rng.randrange(32)}")
                else:
                    ins.append(recent[-1 - rng.randrange(min(len(recent),
                                                             48))])
            netlist.add_cell(Cell(name=f"lut{i}", kind=LUT4,
                                  inputs=ins, output=out,
                                  init=rng.randrange(1 << 16)))
        recent.append(out)
        if len(recent) > 96:
            recent.pop(0)
    netlist.add_output(recent[-1])
    return netlist
