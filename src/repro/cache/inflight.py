"""In-flight computation registry: dedup *before* the cache can.

The content-addressed cache (PR 4) collapses repeated work only after
the first computation has finished and been stored.  A busy service
sees the other half of the problem: N identical submissions arriving
while the first is *still running*.  The registry closes that window —
the first submission to claim a content key becomes the **leader** (it
actually computes), every later claim of the same key while the leader
is in flight becomes a **follower** and is handed the leader's handle
to subscribe to.  When the leader finishes (and typically stores its
result in the cache) it releases the key, so later submissions take the
normal warm-cache path.

The registry stores opaque handles — the service registers its job
records, tests register sentinels — and never inspects them.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple


class InflightRegistry:
    """Thread-safe leader/follower election keyed on content keys."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Any] = {}
        self._leaders = 0
        self._coalesced = 0

    def acquire(self, key: str, handle: Any) -> Tuple[bool, Any]:
        """Claim ``key``; returns ``(is_leader, owning_handle)``.

        The first claimant becomes the leader and gets its own handle
        back; concurrent claimants get ``(False, leader_handle)`` and
        must subscribe rather than compute.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is None:
                self._inflight[key] = handle
                self._leaders += 1
                return True, handle
            self._coalesced += 1
            return False, existing

    def release(self, key: str, handle: Any) -> None:
        """Release ``key`` if (and only if) ``handle`` is its leader."""
        with self._lock:
            if self._inflight.get(key) is handle:
                del self._inflight[key]

    def leader_of(self, key: str) -> Optional[Any]:
        """The current leader handle for ``key``, if any."""
        with self._lock:
            return self._inflight.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        """Lifetime counters: elected leaders, coalesced followers."""
        with self._lock:
            return {"inflight": len(self._inflight),
                    "leaders": self._leaders,
                    "coalesced": self._coalesced}


__all__ = ["InflightRegistry"]
