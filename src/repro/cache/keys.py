"""Canonical content hashing for the flow cache.

A cache key is the SHA-256 digest of a *canonical* JSON rendering of the
inputs that determine an artifact: source text, flow options, device
parameters and a package-version salt.  Canonicalization makes hashing
independent of incidental representation — dict insertion order, tuple
vs list, set ordering — so the same logical inputs always land on the
same key, and any semantic change (an option, a device parameter, a new
package version) lands on a different one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping

from .. import __version__


class CacheKeyError(Exception):
    """An object that cannot be canonicalized into key material."""


def canonicalize(value: Any) -> Any:
    """Normalize ``value`` into canonical JSON-able structure.

    Mappings sort by (stringified) key, sequences keep order but become
    lists, sets become sorted lists, dataclasses become their field
    mapping, bytes become hex text.  Anything else must already be a
    JSON scalar.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(key): canonicalize(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(item) for item in value)
    raise CacheKeyError(
        f"cannot canonicalize {type(value).__name__} into key material")


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (stable across orderings)."""
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def content_key(layer: str, material: Mapping[str, Any],
                salt: str = __version__) -> str:
    """The content-addressed key for one artifact.

    ``layer`` namespaces producers (two layers can hash the same
    material without colliding); ``salt`` defaults to the package
    version, so upgrading the toolchain invalidates every entry at once.
    """
    payload = canonical_json({"layer": layer, "salt": salt,
                              "material": material})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- domain fingerprints ----------------------------------------------------


def netlist_fingerprint(netlist) -> str:
    """Digest of a technology netlist's logical content.

    Covers cells (kind, connectivity, init words) and the port lists —
    but *not* placement annotations or the netlist's display name, so a
    flow stage that leaks location state onto cells cannot silently fork
    the key space (see the ``netlist.stale-placement`` lint rule).
    """
    material = {
        "cells": [
            {"name": cell.name, "kind": cell.kind,
             "inputs": list(cell.inputs), "output": cell.output,
             "init": cell.init}
            for cell in sorted(netlist.cells.values(),
                               key=lambda c: c.name)
        ],
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
    }
    return hashlib.sha256(
        canonical_json(material).encode("utf-8")).hexdigest()


def device_fingerprint(device) -> str:
    """Digest of an FPGA device model's parameters."""
    return hashlib.sha256(
        canonical_json(dataclasses.asdict(device)).encode("utf-8")
    ).hexdigest()


def library_fingerprint(library) -> str:
    """Digest of a characterized component library's records."""
    material: Dict[str, Any] = {
        "name": library.name,
        "records": [canonicalize(dataclasses.asdict(record))
                    for record in library.records()],
    }
    return hashlib.sha256(
        canonical_json(material).encode("utf-8")).hexdigest()
