"""Artifact stores behind the flow cache.

Two tiers with one contract (``get``/``put`` keyed by content hash):

* :class:`MemoryLRU` — in-process store of *live* Python objects, LRU
  over a bounded entry count.  Holds anything, including artifacts with
  no JSON codec (whole HLS projects).
* :class:`DiskStore` — durable store of JSON payloads under a cache
  directory (``objects/<key>.json`` plus an ``index.json`` of entry
  metadata, LRU clocks and lifetime hit/miss counters).  Loads are
  corruption-tolerant: a damaged index is rebuilt from the object files,
  a damaged object is treated as a miss and dropped.  Eviction is
  size-bounded (least-recently-used payloads leave first).

:class:`FlowCache` is the facade the flow layers use: layered lookup
(memory, then disk), per-layer statistics and telemetry counters
(``cache.hit`` / ``cache.miss`` / ``cache.evict``).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from ..telemetry import Tracer

DEFAULT_MAX_ENTRIES = 1024
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
INDEX_NAME = "index.json"
OBJECTS_DIR = "objects"

Decoder = Callable[[Dict[str, Any]], Any]
Encoder = Callable[[Any], Dict[str, Any]]


class CacheStoreError(Exception):
    pass


@dataclass
class LayerStats:
    """Lifetime cache accounting for one producer layer."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def to_json(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "LayerStats":
        return cls(hits=int(payload.get("hits", 0)),
                   misses=int(payload.get("misses", 0)),
                   stores=int(payload.get("stores", 0)),
                   evictions=int(payload.get("evictions", 0)))


class MemoryLRU:
    """Bounded in-process object store, least-recently-used eviction."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise CacheStoreError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Tuple[bool, Any]:
        with self._lock:
            if key not in self._entries:
                return False, None
            self._entries.move_to_end(key)
            return True, self._entries[key]

    def put(self, key: str, value: Any) -> int:
        """Store ``value``; returns how many entries were evicted."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskStore:
    """Durable JSON object store with an LRU index and size bound."""

    INDEX_VERSION = 1

    def __init__(self, root: Path,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise CacheStoreError("max_bytes must be positive")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / OBJECTS_DIR).mkdir(exist_ok=True)
        self._index = self._load_index()

    # -- index persistence -------------------------------------------------

    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _object_path(self, key: str) -> Path:
        return self.root / OBJECTS_DIR / f"{key}.json"

    def _fresh_index(self) -> Dict[str, Any]:
        return {"version": self.INDEX_VERSION, "seq": 0,
                "entries": {}, "stats": {}}

    def _load_index(self) -> Dict[str, Any]:
        """Load the index; rebuild from object files when damaged."""
        try:
            raw = json.loads(self._index_path().read_text())
            if (not isinstance(raw, dict)
                    or raw.get("version") != self.INDEX_VERSION
                    or not isinstance(raw.get("entries"), dict)):
                raise ValueError("malformed index")
            raw.setdefault("seq", 0)
            raw.setdefault("stats", {})
            return raw
        except (OSError, ValueError):
            index = self._fresh_index()
            for path in sorted((self.root / OBJECTS_DIR).glob("*.json")):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                index["seq"] += 1
                index["entries"][path.stem] = {
                    "layer": "unknown", "bytes": size,
                    "seq": index["seq"]}
            return index

    def _save_index(self) -> None:
        tmp = self._index_path().with_suffix(".tmp")
        tmp.write_text(json.dumps(self._index, sort_keys=True))
        os.replace(tmp, self._index_path())

    def _layer_stats(self, layer: str) -> Dict[str, int]:
        stats = self._index["stats"].setdefault(
            layer, {"hits": 0, "misses": 0, "stores": 0, "evictions": 0})
        return stats

    # -- store API ---------------------------------------------------------

    def get(self, key: str, layer: str = "default"
            ) -> Optional[Dict[str, Any]]:
        """Payload for ``key``, or None.  Corrupt objects become misses."""
        with self._lock:
            stats = self._layer_stats(layer)
            entry = self._index["entries"].get(key)
            payload: Optional[Dict[str, Any]] = None
            if entry is not None:
                try:
                    loaded = json.loads(self._object_path(key).read_text())
                    if isinstance(loaded, dict):
                        payload = loaded
                except (OSError, ValueError):
                    payload = None
                if payload is None:
                    # Corrupt or vanished object: drop it and miss.
                    self._index["entries"].pop(key, None)
                    self._object_path(key).unlink(missing_ok=True)
            if payload is None:
                stats["misses"] += 1
                self._save_index()
                return None
            self._index["seq"] += 1
            entry["seq"] = self._index["seq"]
            stats["hits"] += 1
            self._save_index()
            return payload

    def put(self, key: str, payload: Dict[str, Any],
            layer: str = "default") -> int:
        """Persist ``payload``; returns number of entries evicted."""
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            path = self._object_path(key)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(text)
            os.replace(tmp, path)
            self._index["seq"] += 1
            self._index["entries"][key] = {
                "layer": layer, "bytes": len(text),
                "seq": self._index["seq"]}
            stats = self._layer_stats(layer)
            stats["stores"] += 1
            evicted = self._evict_locked()
            stats["evictions"] += evicted
            self._save_index()
            return evicted

    def _evict_locked(self) -> int:
        """Drop least-recently-used entries until under the size bound."""
        evicted = 0
        while self.total_bytes() > self.max_bytes \
                and len(self._index["entries"]) > 1:
            victim = min(self._index["entries"],
                         key=lambda k: self._index["entries"][k]["seq"])
            self._index["entries"].pop(victim)
            self._object_path(victim).unlink(missing_ok=True)
            evicted += 1
        return evicted

    # -- maintenance -------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(entry["bytes"]
                   for entry in self._index["entries"].values())

    def entry_count(self) -> int:
        return len(self._index["entries"])

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-layer lifetime counters plus entry/byte totals."""
        layers: Dict[str, Dict[str, int]] = {}
        for layer, counters in sorted(self._index["stats"].items()):
            layers[layer] = dict(counters)
            layers[layer].setdefault("entries", 0)
            layers[layer].setdefault("bytes", 0)
        for entry in self._index["entries"].values():
            layer = layers.setdefault(
                entry["layer"], {"hits": 0, "misses": 0, "stores": 0,
                                 "evictions": 0, "entries": 0, "bytes": 0})
            layer["entries"] = layer.get("entries", 0) + 1
            layer["bytes"] = layer.get("bytes", 0) + entry["bytes"]
        return layers

    def clear(self) -> int:
        """Delete every entry (counters reset too); returns count."""
        with self._lock:
            count = len(self._index["entries"])
            for key in list(self._index["entries"]):
                self._object_path(key).unlink(missing_ok=True)
            self._index = self._fresh_index()
            self._save_index()
            return count

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Re-validate objects and enforce the size bound.

        Drops index entries whose object file is missing or unreadable,
        deletes orphan object files, then evicts down to ``max_bytes``
        (default: the store's configured bound).  Returns the number of
        entries removed.
        """
        with self._lock:
            removed = 0
            for key in list(self._index["entries"]):
                try:
                    json.loads(self._object_path(key).read_text())
                except (OSError, ValueError):
                    self._index["entries"].pop(key)
                    self._object_path(key).unlink(missing_ok=True)
                    removed += 1
            known = set(self._index["entries"])
            for path in (self.root / OBJECTS_DIR).glob("*.json"):
                if path.stem not in known:
                    path.unlink(missing_ok=True)
            if max_bytes is not None:
                self.max_bytes = max_bytes
            removed += self._evict_locked()
            self._save_index()
            return removed


class FlowCache:
    """Layered content-addressed artifact cache for the HERMES flows.

    ``get``/``put`` are namespaced by producer *layer* ("hls", "fabric",
    "characterize", "radhard").  Values live in the in-memory LRU; when
    the cache has a directory and the caller supplies an encoder, a JSON
    payload is also persisted so later processes can warm-start.  Every
    lookup result is counted per layer, both on this object (``stats``)
    and — when a tracer is attached — as ``cache.hit`` / ``cache.miss``
    / ``cache.evict`` telemetry counters.
    """

    LAYERS = ("hls", "fabric", "characterize", "radhard", "mega",
              "service")

    def __init__(self, directory: Optional[Path] = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 tracer: Optional[Tracer] = None) -> None:
        self.memory = MemoryLRU(max_entries=max_entries)
        self.disk: Optional[DiskStore] = (
            DiskStore(Path(directory), max_bytes=max_bytes)
            if directory is not None else None)
        self.tracer = tracer
        self.stats: Dict[str, LayerStats] = {}
        self._lock = threading.Lock()

    # -- accounting --------------------------------------------------------

    def _count(self, layer: str, event: str, amount: int = 1) -> None:
        if amount <= 0:
            return
        with self._lock:
            stats = self.stats.setdefault(layer, LayerStats())
            if event == "hit":
                stats.hits += amount
            elif event == "miss":
                stats.misses += amount
            elif event == "store":
                stats.stores += amount
            else:
                stats.evictions += amount
            if self.tracer is not None and event != "store":
                name = {"hit": "cache.hit", "miss": "cache.miss",
                        "evict": "cache.evict"}[event]
                self.tracer.counter(f"{name}.{layer}", "cache").add(amount)

    def hit_count(self, layer: Optional[str] = None) -> int:
        layers = [layer] if layer else list(self.stats)
        return sum(self.stats[name].hits
                   for name in layers if name in self.stats)

    # -- lookup ------------------------------------------------------------

    def get(self, layer: str, key: str,
            decoder: Optional[Decoder] = None) -> Tuple[bool, Any]:
        """(hit, value) for ``key``; decoder revives disk payloads."""
        found, value = self.memory.get(key)
        if found:
            self._count(layer, "hit")
            return True, value
        if self.disk is not None and decoder is not None:
            payload = self.disk.get(key, layer)
            if payload is not None:
                try:
                    value = decoder(payload)
                except Exception:
                    # Payload decodes but doesn't revive (stale schema):
                    # treat as a miss; the next put overwrites it.
                    self._count(layer, "miss")
                    return False, None
                self.memory.put(key, value)
                self._count(layer, "hit")
                return True, value
        self._count(layer, "miss")
        return False, None

    def put(self, layer: str, key: str, value: Any,
            encoder: Optional[Encoder] = None) -> None:
        evicted = self.memory.put(key, value)
        self._count(layer, "evict", evicted)
        self._count(layer, "store")
        if self.disk is not None and encoder is not None:
            disk_evicted = self.disk.put(key, encoder(value), layer)
            self._count(layer, "evict", disk_evicted)

    def summary(self) -> str:
        parts = []
        for layer in sorted(self.stats):
            stats = self.stats[layer]
            parts.append(f"{layer}: {stats.hits} hit(s), "
                         f"{stats.misses} miss(es)")
        return "; ".join(parts) if parts else "cache idle"
