"""Content-addressed flow cache (deterministic artifact reuse).

The HERMES ecosystem's iteration loop — re-characterizing the component
library, re-running SEU campaigns, re-building accelerators — recomputes
mostly-unchanged flow stages.  This package memoizes the four hot
producers (HLS synthesis, per-stage NXmap place/route/STA/bitstream,
Eucalyptus characterization runs, radhard campaign reports) behind
stable content-addressed keys: canonical hashing of source text, flow
options and device parameters, salted with the package version.

The correctness bar is bit-identical warm runs: a cache hit returns an
artifact equal to what recomputation would produce, and every lookup is
visible as ``cache.hit`` / ``cache.miss`` / ``cache.evict`` telemetry.
"""

from .inflight import InflightRegistry
from .keys import (
    CacheKeyError,
    canonical_json,
    canonicalize,
    content_key,
    device_fingerprint,
    library_fingerprint,
    netlist_fingerprint,
)
from .store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    CacheStoreError,
    DiskStore,
    FlowCache,
    LayerStats,
    MemoryLRU,
)

__all__ = [
    "InflightRegistry",
    "CacheKeyError", "canonical_json", "canonicalize", "content_key",
    "device_fingerprint", "library_fingerprint", "netlist_fingerprint",
    "DEFAULT_MAX_BYTES", "DEFAULT_MAX_ENTRIES", "CacheStoreError",
    "DiskStore", "FlowCache", "LayerStats", "MemoryLRU",
]
