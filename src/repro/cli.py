"""Command-line interface to the HERMES ecosystem tools.

Subcommands mirror the tool surface a user of the paper's ecosystem gets:

* ``hls``          — synthesize a HermesC file; print reports, write RTL;
* ``characterize`` — run Eucalyptus and export the XML library;
* ``boot``         — run the BL0→BL1→BL2 chain and print the boot report;
* ``mission``      — run the virtualized mission under XtratuM;
* ``qualify``      — run the BL1 qualification campaign, print TRL;
* ``seu``          — run the SEU mitigation campaigns (raw/ECC/TMR);
* ``lint``         — static verification of HermesC sources, XM_CF
  documents and the built-in example designs (``--examples``);
* ``trace``        — run a canned scenario of one stack layer with
  telemetry enabled and export the trace (JSON-lines or Chrome
  trace-event for ui.perfetto.dev);
* ``cache``        — inspect or maintain an on-disk flow cache
  (``stats`` / ``clear`` / ``gc``).

``characterize`` and ``seu`` accept ``--jobs N`` to fan work out over the
parallel execution engine (``--jobs 0`` uses every core); results are
bit-identical to a serial run by the engine's seed-derivation contract.
``characterize``, ``seu``, ``boot`` and ``mission`` also accept
``--trace PATH`` (with ``--trace-format json|chrome``) to export the
telemetry collected during the run.  ``hls``, ``characterize``, ``seu``
and ``qualify`` accept ``--cache`` (and ``--cache-dir DIR`` for a
persistent store) to reuse content-addressed flow artifacts; warm
results are byte-identical to cold ones.

``seu`` additionally scales to mega-campaigns: ``--shards N`` or
``--shard-size RUNS`` split the run range into seed-range shards
(merged byte-identical to serial at any worker count), each shard is
checkpointed through the cache so ``--resume`` replays only missing
shards after a kill or a ``--runs`` extension (hold ``--shard-size``
fixed for stable checkpoint keys), ``--stop-ci X`` halts each scenario
once the Wilson 95% CI half-width on its sdc+crash rate drops below X
(exit code 4 when a campaign ends before reaching the target —
statistically insufficient evidence), and ``--json-deterministic PATH``
writes the execution-independent payloads CI jobs diff byte-for-byte.

The flow-as-a-service surface rides on the same tools:

* ``serve``        — run the multi-tenant job server (fair queueing,
  in-flight dedup, bounded queue, cancellation);
* ``submit``       — POST one JobSpec to a running server (optionally
  wait for and print the final report);
* ``jobs``         — list/inspect/cancel jobs on a running server.

Every subcommand exits with a :class:`repro.api.ExitCode` value —
``0`` OK, ``1`` workload failure, ``2`` usage error, ``4`` statistically
insufficient evidence — and the service maps the same enum onto HTTP
statuses, so shell pipelines and HTTP clients read one convention.

Shared flags are defined once as argparse *parent parsers*
(``--jobs``/``--backend``, ``--seed``, ``--trace``/``--trace-format``,
``--cache``/``--no-cache``/``--cache-dir``) and read back through the
:class:`CommonOptions` dataclass, so every subcommand spells them the
same way.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from .api import ExitCode
from .telemetry import TRACE_FORMATS, Tracer, render_trace, write_trace


@dataclass
class CommonOptions:
    """The shared subcommand options, extracted from parsed args.

    One instance per invocation; fields a subcommand doesn't declare
    keep their defaults, so command handlers read one object instead of
    probing the argparse namespace.
    """

    jobs: int = 1
    backend: str = "auto"
    seed: int = 13
    trace: Optional[str] = None
    trace_format: str = "json"
    cache: bool = False
    cache_dir: Optional[str] = None

    @classmethod
    def from_args(cls, args) -> "CommonOptions":
        options = cls()
        for field in dataclasses.fields(cls):
            if hasattr(args, field.name):
                setattr(options, field.name, getattr(args, field.name))
        return options

    @property
    def cache_enabled(self) -> bool:
        return self.cache or self.cache_dir is not None

    def build_tracer(self) -> Optional[Tracer]:
        return Tracer() if self.trace else None

    def build_cache(self, tracer: Optional[Tracer] = None):
        """The FlowCache this invocation asked for, or None."""
        if not self.cache_enabled:
            return None
        from .cache import FlowCache
        directory = Path(self.cache_dir) if self.cache_dir else None
        return FlowCache(directory=directory, tracer=tracer)

    def finish_trace(self, tracer: Optional[Tracer]) -> None:
        if tracer is None or not self.trace:
            return
        write_trace(tracer, self.trace, self.trace_format)
        print(f"trace ({self.trace_format}, {len(tracer.spans)} spans) "
              f"written to {self.trace}", file=sys.stderr)


def _parent(*specs) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    for flags, kwargs in specs:
        parent.add_argument(*flags, **kwargs)
    return parent


def _jobs_parent() -> argparse.ArgumentParser:
    return _parent((("--jobs",), dict(
        type=int, default=1, help="parallel jobs (0 = all cores)")))


def _backend_parent() -> argparse.ArgumentParser:
    return _parent((("--backend",), dict(
        default="auto", choices=("auto", "serial", "thread", "process"))))


def _seed_parent(default: int = 13) -> argparse.ArgumentParser:
    return _parent((("--seed",), dict(
        type=int, default=default, help="campaign seed")))


def _trace_parent() -> argparse.ArgumentParser:
    return _parent(
        (("--trace",), dict(
            metavar="PATH", help="export collected telemetry to PATH")),
        (("--trace-format",), dict(
            default="json", choices=TRACE_FORMATS,
            help="trace export format (json = JSON-lines, chrome = "
                 "Perfetto-loadable trace events)")))


def _cache_parent() -> argparse.ArgumentParser:
    return _parent(
        (("--cache",), dict(
            action=argparse.BooleanOptionalAction, default=False,
            help="reuse content-addressed flow artifacts")),
        (("--cache-dir",), dict(
            metavar="DIR",
            help="persistent cache directory (implies --cache)")))


def _cmd_hls(args) -> int:
    from .hls import synthesize

    options = CommonOptions.from_args(args)
    source = Path(args.source).read_text()
    project = synthesize(source, top=args.top, clock_ns=args.clock,
                         opt_level=args.opt,
                         cache=options.build_cache())
    design = project[args.top]
    print(f"function {args.top}: {design.report.summary()}")
    print(f"  states: {design.state_count}  "
          f"static latency: {design.static_latency()}")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        for name, text in project.verilog_files().items():
            (out / name).write_text(text)
        print(f"  RTL written to {out}/")
    if args.cosim:
        print("  (cosim requires memory stimuli; use the Python API)")
    return ExitCode.OK


def _cmd_eco(args) -> int:
    import json
    import time

    from .api import JobSpec, JobSpecError, _device_from, submit
    from .core.report import report_json_text
    from .fabric.eco import DeltaError, EcoFlow, NetlistDelta, \
        random_delta
    from .fabric.netlist import NetlistError
    from .fabric.nxmap import FlowError, NXmapProject
    from .fabric.synthesis import SynthesisError, synthesize_component, \
        synthesize_random

    options = CommonOptions.from_args(args)
    tracer = options.build_tracer()
    cache = options.build_cache(tracer)
    try:
        if args.synth_cells:
            netlist = synthesize_random(args.synth_cells,
                                        seed=args.synth_seed)
            design_params = {"synth_cells": args.synth_cells,
                             "synth_seed": args.synth_seed}
        else:
            netlist = synthesize_component(args.component, args.width,
                                           args.stages)
            design_params = {"component": args.component,
                             "width": args.width, "stages": args.stages}
        device = _device_from(args.device, args.grid_luts)
        if args.delta:
            delta = NetlistDelta.from_json(
                json.loads(Path(args.delta).read_text()))
        else:
            delta = random_delta(netlist, args.edit_fraction,
                                 seed=args.edit_seed)
        project = NXmapProject(netlist, device, seed=options.seed,
                               tracer=tracer, cache=cache)
    except (SynthesisError, DeltaError, JobSpecError, FlowError,
            ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE

    # The interactive scenario: the base design is already implemented
    # when the edit arrives, so the base flow (and its full-STA state)
    # is built outside the timed edit loop.
    EcoFlow(project, delta, tracer=tracer).prepare_base(
        effort=args.effort, channel_width=args.channel_width)
    spec = JobSpec(kind="eco", seed=options.seed, params=dict(
        design_params, device=args.device, grid_luts=args.grid_luts,
        delta=delta.canonical(), target_clock_ns=args.clock,
        effort=args.effort, channel_width=args.channel_width))
    start = time.perf_counter()
    try:
        result = submit(spec, tracer=tracer, cache=cache,
                        resources={"project": project})
    except (JobSpecError, DeltaError, NetlistError, FlowError) as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    eco_s = time.perf_counter() - start
    report = result.report
    print(f"eco: {report.summary()}", file=sys.stderr)
    print(f"eco wall time {eco_s:.3f} s", file=sys.stderr)

    metrics = {"eco_s": eco_s, "delta_ops": len(delta.ops),
               "hpwl_eco": report.flow.placement.hpwl,
               "hpwl_base": report.base_hpwl,
               **{f"eco_{key}": value
                  for key, value in sorted(report.eco.items())}}
    if args.compare_cold:
        edited, _impact = delta.apply(netlist)
        cold = NXmapProject(edited, device, seed=options.seed)
        target = report.flow.timing.target_clock_ns \
            if report.flow.timing is not None else args.clock
        start = time.perf_counter()
        cold.run_place(effort=args.effort)
        cold.run_route(channel_width=args.channel_width)
        cold_timing = cold.run_sta(target_clock_ns=target)
        cold.run_bitstream()
        cold_s = time.perf_counter() - start
        eco_slack = report.flow.timing.slack_ns \
            if report.flow.timing is not None else None
        metrics.update(
            cold_s=cold_s, speedup=cold_s / eco_s,
            hpwl_cold=cold.placement.hpwl,
            hpwl_ratio=report.flow.placement.hpwl
            / cold.placement.hpwl,
            slack_eco_ns=eco_slack, slack_cold_ns=cold_timing.slack_ns,
            new_timing_violation=bool(
                eco_slack is not None and eco_slack < 0
                and (cold_timing.slack_ns is None
                     or cold_timing.slack_ns >= 0)))
        print(f"cold wall time {cold_s:.3f} s "
              f"(speedup {metrics['speedup']:.1f}x, "
              f"hpwl ratio {metrics['hpwl_ratio']:.4f})",
              file=sys.stderr)
    options.finish_trace(tracer)
    if cache is not None:
        print(f"cache: {cache.summary()}", file=sys.stderr)
    if args.json:
        Path(args.json).write_text(json.dumps(
            metrics, sort_keys=True, separators=(",", ":")))
        print(f"metrics written to {args.json}", file=sys.stderr)
    wire = report_json_text(report)
    if args.report:
        Path(args.report).write_text(wire)
        print(f"report written to {args.report}", file=sys.stderr)
    else:
        print(wire)
    return ExitCode(result.exit_code)


def _cmd_characterize(args) -> int:
    import json

    from .fabric import get_device, scaled_device
    from .hls.characterization.eucalyptus import Eucalyptus

    options = CommonOptions.from_args(args)
    base = get_device(args.device)
    device = scaled_device(base, f"{base.name}-char", args.grid_luts)
    tracer = options.build_tracer()
    cache = options.build_cache(tracer)
    tool = Eucalyptus(device=device, effort=args.effort, tracer=tracer,
                      cache=cache)
    components = args.components.split(",") if args.components else None
    runs = tool.sweep(components=components,
                      widths=tuple(int(w) for w in args.widths.split(",")),
                      jobs=options.jobs, backend=options.backend)
    options.finish_trace(tracer)
    if options.jobs != 1 and tool.last_sweep_report is not None:
        print(f"sweep: {tool.last_sweep_report.summary()}")
    if cache is not None:
        print(f"cache: {cache.summary()}", file=sys.stderr)
    library = tool.build_library()
    xml_text = library.to_xml()
    if args.json:
        Path(args.json).write_text(json.dumps(
            [run.to_json() for run in runs],
            sort_keys=True, separators=(",", ":")))
        print(f"runs written to {args.json} ({len(runs)} records)",
              file=sys.stderr)
    if args.out:
        Path(args.out).write_text(xml_text)
        print(f"library written to {args.out} "
              f"({len(library.records())} records)")
    elif not args.json:
        print(xml_text)
    return ExitCode.OK


def _cmd_seu(args) -> int:
    import json

    from .core import Table
    from .radhard import MegaCampaign, memory_scenarios

    options = CommonOptions.from_args(args)
    sharded = bool(args.shards) or args.shard_size is not None \
        or args.stop_ci is not None
    if args.resume and not options.cache_enabled:
        print("error: --resume needs --cache-dir (or --cache) to "
              "resume from", file=sys.stderr)
        return ExitCode.USAGE
    table = Table(
        f"SEU campaigns ({args.runs} runs each, seed {options.seed}, "
        f"jobs {options.jobs})",
        ["target", "masked", "corrected", "detected", "sdc", "crash",
         "fail_rate", "wall_s", "mean_ms", "p95_ms"])
    failures = 0.0
    target_missed = False
    tracer = options.build_tracer()
    cache = options.build_cache(tracer)
    reports = []
    for campaign in memory_scenarios(words=args.words):
        if sharded:
            mega = MegaCampaign(campaign, cache=cache, tracer=tracer)
            result = mega.run(args.runs, seed=options.seed,
                              jobs=options.jobs,
                              backend=options.backend,
                              shards=args.shards or None,
                              shard_size=args.shard_size,
                              timeout_s=args.timeout,
                              retries=args.retries,
                              stop_ci=args.stop_ci)
            report = result.report
            print(f"mega: {result.summary()}", file=sys.stderr)
            target_missed |= not result.reached_target
        else:
            report = campaign.run(args.runs, seed=options.seed,
                                  jobs=options.jobs,
                                  backend=options.backend,
                                  timeout_s=args.timeout,
                                  retries=args.retries, tracer=tracer,
                                  cache=cache)
        reports.append(report)
        table.add_row(campaign.name,
                      report.counts.get("masked", 0),
                      report.counts.get("corrected", 0),
                      report.counts.get("detected", 0),
                      report.counts.get("sdc", 0),
                      report.counts.get("crash", 0),
                      round(report.failure_rate, 4),
                      round(report.wall_s, 3),
                      round(report.latency.mean_s * 1e3, 3),
                      round(report.latency.p95_s * 1e3, 3))
        failures += report.counts.get("crash", 0)
    print(table.render())
    if args.json:
        Path(args.json).write_text(json.dumps(
            [report.to_json() for report in reports],
            sort_keys=True, separators=(",", ":")))
        print(f"reports written to {args.json}", file=sys.stderr)
    if args.json_deterministic:
        Path(args.json_deterministic).write_text(json.dumps(
            [report.deterministic_json() for report in reports],
            sort_keys=True, separators=(",", ":")))
        print(f"deterministic payloads written to "
              f"{args.json_deterministic}", file=sys.stderr)
    if cache is not None:
        print(f"cache: {cache.summary()}", file=sys.stderr)
    options.finish_trace(tracer)
    if failures != 0:
        return ExitCode.FAILURE
    # With --stop-ci, a campaign that ran out of shards before its CI
    # half-width reached the target is insufficient statistical
    # evidence — a distinct exit code so CI can gate on it.
    if args.stop_ci is not None and target_missed:
        return ExitCode.INSUFFICIENT_EVIDENCE
    return ExitCode.OK


def _cmd_boot(args) -> int:
    from .boot import (BootImage, ImageKind, Bl1Config, RedundancyMode,
                       provision_flash, run_boot_chain)
    from .soc import DDR_BASE, NgUltraSoc, assemble

    soc = NgUltraSoc(engine=args.engine)
    program = assemble("MOVI r0, #42\nHALT", base_address=DDR_BASE)
    app = BootImage(kind=ImageKind.APPLICATION, load_address=DDR_BASE,
                    entry_point=DDR_BASE, payload=program, name="app")
    provision_flash(soc, [app], copies=args.copies)
    options = CommonOptions.from_args(args)
    config = Bl1Config(redundancy=RedundancyMode(args.redundancy))
    tracer = options.build_tracer()
    result = run_boot_chain(soc, config=config, run_application=True,
                            tracer=tracer)
    print(result.render())
    print(f"\ntotal: {result.total_cycles} cycles "
          f"({result.total_cycles / 600:.1f} us @600MHz)")
    if soc.dbt_cache is not None:
        stats = soc.dbt_cache.stats()
        print(f"dbt: {stats['compiled']} blocks compiled, "
              f"{stats['hits']} hits, "
              f"{stats['invalidations']} invalidations")
        if tracer is not None:
            soc.dbt_cache.publish(tracer)
    options.finish_trace(tracer)
    return ExitCode.OK if result.bl1.report.success \
        else ExitCode.FAILURE


def _cmd_mission(args) -> int:
    from .apps import mission

    options = CommonOptions.from_args(args)
    tracer = options.build_tracer()
    run = mission.run_mission(frames=args.frames,
                              faulty_vbn=args.inject_faults,
                              tracer=tracer)
    print(run.hypervisor.summary(run.metrics))
    options.finish_trace(tracer)
    if run.telemetry:
        last = run.telemetry[-1]
        print(f"\nfinal AOCS pointing error: "
              f"{last['aocs']['pointing_error_rad']:.4f} rad")
    misses = sum(p.deadline_misses
                 for pid, p in run.metrics.partitions.items()
                 if pid != mission.VBN_PID)
    return ExitCode.OK if misses == 0 else ExitCode.FAILURE


def _cmd_lint(args) -> int:
    from .analysis import (
        Analyzer,
        RuleError,
        Severity,
        TargetError,
        example_targets,
        load_baseline,
        render_baseline,
        target_from_file,
    )

    targets = []
    try:
        if args.examples:
            targets.extend(example_targets(deep=args.deep))
        for path_text in args.targets:
            targets.append(target_from_file(Path(path_text)))
    except (TargetError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    if not targets:
        print("error: nothing to lint (pass files or --examples)",
              file=sys.stderr)
        return ExitCode.USAGE
    baseline = None
    if args.baseline:
        baseline = load_baseline(Path(args.baseline).read_text())
    rules = [p.strip() for p in args.rules.split(",") if p.strip()] \
        if args.rules else None
    try:
        analyzer = Analyzer(rules=rules, baseline=baseline,
                            jobs=args.jobs, deep=args.deep)
    except RuleError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    report = analyzer.run(targets)
    if args.write_baseline:
        Path(args.write_baseline).write_text(render_baseline(report))
        print(f"baseline written to {args.write_baseline} "
              f"({len(report.baseline_fingerprints())} findings)",
              file=sys.stderr)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    fail_on = None if args.fail_on == "never" \
        else Severity.parse(args.fail_on)
    return report.exit_code(fail_on)


# Kernel for the canned ``trace flow`` scenario (the quickstart wavg).
_TRACE_KERNEL = """
// Weighted moving average over an 8-sample window.
void wavg(const int *x, int *y, int n) {
  const int w[8] = {1, 2, 4, 8, 8, 4, 2, 1};
  for (int i = 7; i < n; i++) {
    int acc = 0;
    for (int t = 0; t < 8; t++) {
      acc += x[i - t] * w[t];
    }
    y[i] = acc >> 5;
  }
}
"""


def _trace_scenario_flow(tracer, args) -> None:
    """HLS pipeline + fabric backend on the quickstart kernel."""
    from .fabric import get_device, scaled_device
    from .fabric.nxmap import NXmapProject
    from .fabric.synthesis import synthesize_component
    from .hls import synthesize

    synthesize(_TRACE_KERNEL, top="wavg", clock_ns=5.0, tracer=tracer)
    device = scaled_device(get_device("NG-ULTRA"), "NG-ULTRA-trace", 4096)
    netlist = synthesize_component("addsub", 16, 0)
    project = NXmapProject(netlist, device, tracer=tracer)
    project.run_all(target_clock_ns=5.0, effort=0.2)


def _trace_scenario_boot(tracer, args) -> None:
    """BL0→BL2 power-up with an application image."""
    from .boot import (BootImage, ImageKind, provision_flash,
                       run_boot_chain)
    from .soc import DDR_BASE, NgUltraSoc, assemble

    soc = NgUltraSoc()
    program = assemble("MOVI r0, #42\nHALT", base_address=DDR_BASE)
    app = BootImage(kind=ImageKind.APPLICATION, load_address=DDR_BASE,
                    entry_point=DDR_BASE, payload=program, name="app")
    provision_flash(soc, [app])
    run_boot_chain(soc, run_application=True, tracer=tracer)


def _trace_scenario_mission(tracer, args) -> None:
    """Virtualized mission under the XtratuM-equivalent hypervisor."""
    from .apps import mission

    mission.run_mission(frames=20, tracer=tracer)


def _trace_scenario_seu(tracer, args) -> None:
    """SEU mitigation campaigns (raw/ECC/TMR memory targets)."""
    from .radhard import memory_scenarios

    for campaign in memory_scenarios(words=32):
        campaign.run(60, seed=13, jobs=args.jobs, tracer=tracer)


def _trace_scenario_characterize(tracer, args) -> None:
    """A small Eucalyptus characterization sweep."""
    from .fabric import get_device, scaled_device
    from .hls.characterization.eucalyptus import Eucalyptus

    device = scaled_device(get_device("NG-ULTRA"), "NG-ULTRA-trace", 4096)
    tool = Eucalyptus(device=device, effort=0.2, tracer=tracer)
    tool.sweep(components=["addsub", "logic"], widths=(8, 16),
               jobs=args.jobs)


_TRACE_SCENARIOS = {
    "flow": _trace_scenario_flow,
    "boot": _trace_scenario_boot,
    "mission": _trace_scenario_mission,
    "seu": _trace_scenario_seu,
    "characterize": _trace_scenario_characterize,
}


def _cmd_trace(args) -> int:
    tracer = Tracer()
    _TRACE_SCENARIOS[args.scenario](tracer, args)
    text = render_trace(tracer, args.format)
    if args.out:
        Path(args.out).write_text(text)
        print(f"{args.scenario} trace ({args.format}) written to "
              f"{args.out}: {tracer.summary()}", file=sys.stderr)
    else:
        print(text)
        print(f"{args.scenario} trace: {tracer.summary()}",
              file=sys.stderr)
    return ExitCode.OK


def _cmd_qualify(args) -> int:
    import importlib
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                           / "benchmarks"))
    try:
        module = importlib.import_module("bench_qualification_datapack")
    except ModuleNotFoundError:
        print("qualification bench not found; run from the repository")
        return ExitCode.FAILURE
    options = CommonOptions.from_args(args)
    cache = options.build_cache()
    table, report, trl, pack = module.run_qualification(cache=cache)
    print(table.render())
    print(f"\nTRL {trl.level}; datapack complete: {pack.complete}")
    if cache is not None:
        print(f"cache: {cache.summary()}", file=sys.stderr)
    return ExitCode.OK if report.all_passed else ExitCode.FAILURE


def _cmd_cache(args) -> int:
    import json

    from .cache import DiskStore

    store = DiskStore(Path(args.cache_dir))
    if args.action == "stats":
        print(json.dumps({"layers": store.stats(),
                          "entries": store.entry_count(),
                          "bytes": store.total_bytes()},
                         indent=2, sort_keys=True))
        return ExitCode.OK
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entrie(s) from {args.cache_dir}")
        return ExitCode.OK
    removed = store.gc(max_bytes=args.max_bytes)
    print(f"gc removed {removed} entrie(s); "
          f"{store.entry_count()} left ({store.total_bytes()} bytes)")
    return ExitCode.OK


def _cmd_serve(args) -> int:
    from .service import JobScheduler, JobServer

    options = CommonOptions.from_args(args)
    tracer = options.build_tracer()
    cache = options.build_cache(tracer)
    scheduler = JobScheduler(workers=args.workers,
                             max_queue=args.max_queue, cache=cache,
                             tracer=tracer, job_workers=options.jobs,
                             backend=options.backend).start()
    server = JobServer((args.host, args.port), scheduler,
                       verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"flow service listening on http://{host}:{port} "
          f"({args.workers} worker(s), queue bound {args.max_queue})",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        scheduler.stop()
        options.finish_trace(tracer)
    return ExitCode.OK


def _cmd_submit(args) -> int:
    import json

    from .api import JobSpec, JobSpecError
    from .service import ServiceClient, ServiceClientError

    options = CommonOptions.from_args(args)
    try:
        params = json.loads(args.params)
        if not isinstance(params, dict):
            raise ValueError("--params must be a JSON object")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    client = ServiceClient(args.host, args.port)
    try:
        spec = JobSpec(kind=args.kind, params=params,
                       seed=options.seed, priority=args.priority,
                       tenant=args.tenant)
        job = client.submit(spec)
    except JobSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE if error.status == 400 \
            else ExitCode.FAILURE
    origin = ("warm hit" if job["cache_hit"]
              else f"coalesced onto {job['leader_id']}"
              if job["coalesced"] else "scheduled")
    print(f"{job['id']}: {job['state']} ({origin}, key "
          f"{job['key'][:12]}…)", file=sys.stderr)
    if not args.wait:
        print(job["id"])
        return ExitCode.OK
    try:
        final = client.wait(job["id"], timeout_s=args.timeout)
        status, text = client.report(job["id"])
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.FAILURE
    if final["state"] != "succeeded":
        print(f"job {job['id']} {final['state']}: "
              f"{final.get('error')} (HTTP {status})", file=sys.stderr)
        return ExitCode.FAILURE
    if args.report:
        Path(args.report).write_text(text)
        print(f"report written to {args.report}", file=sys.stderr)
    else:
        print(text)
    return ExitCode(final["exit_code"])


def _cmd_jobs(args) -> int:
    import json

    from .core import Table
    from .service import ServiceClient, ServiceClientError

    client = ServiceClient(args.host, args.port)
    try:
        if args.cancel:
            cancelled = client.cancel(args.cancel)
            print(f"{args.cancel}: "
                  f"{'cancelled' if cancelled else 'not cancelled'}")
            return ExitCode.OK if cancelled else ExitCode.FAILURE
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return ExitCode.OK
        records = client.jobs(tenant=args.tenant, state=args.state)
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.FAILURE
    table = Table(
        f"jobs on {args.host}:{args.port}",
        ["id", "kind", "tenant", "state", "exit", "origin"])
    for job in records:
        origin = ("warm" if job["cache_hit"]
                  else "coalesced" if job["coalesced"] else "computed")
        table.add_row(job["id"], job["spec"]["kind"],
                      job["spec"]["tenant"], job["state"],
                      "-" if job["exit_code"] is None
                      else job["exit_code"], origin)
    print(table.render())
    return ExitCode.OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HERMES ecosystem tools")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared option groups, defined once (see CommonOptions).
    jobs_p = _jobs_parent()
    backend_p = _backend_parent()
    seed_p = _seed_parent()
    trace_p = _trace_parent()
    cache_p = _cache_parent()

    hls = sub.add_parser("hls", parents=[cache_p],
                         help="synthesize a HermesC source file")
    hls.add_argument("source")
    hls.add_argument("--top", required=True)
    hls.add_argument("--clock", type=float, default=10.0,
                     help="clock period (ns)")
    hls.add_argument("--opt", type=int, default=2, choices=(0, 1, 2, 3))
    hls.add_argument("--out", help="directory for generated RTL")
    hls.add_argument("--cosim", action="store_true")
    hls.set_defaults(func=_cmd_hls)

    eco = sub.add_parser(
        "eco", parents=[seed_p, trace_p, cache_p],
        help="incremental edit-to-bitstream on an implemented design")
    eco.add_argument("--component", default="addsub",
                     help="structural design to implement as the base")
    eco.add_argument("--width", type=int, default=16)
    eco.add_argument("--stages", type=int, default=2)
    eco.add_argument("--synth-cells", type=int, default=0, metavar="N",
                     help="use a random N-cell design instead of "
                          "--component")
    eco.add_argument("--synth-seed", type=int, default=7)
    eco.add_argument("--device", default="NG-ULTRA")
    eco.add_argument("--grid-luts", type=int, default=None,
                     help="scale the device grid to this many LUTs")
    eco.add_argument("--clock", type=float, default=10.0,
                     help="target clock (ns)")
    eco.add_argument("--effort", type=float, default=1.0)
    eco.add_argument("--channel-width", type=int, default=16)
    eco.add_argument("--delta", metavar="FILE",
                     help="JSON edit script (list of delta ops)")
    eco.add_argument("--edit-fraction", type=float, default=0.01,
                     help="scripted random edit of this cell fraction "
                          "(when --delta is not given)")
    eco.add_argument("--edit-seed", type=int, default=3)
    eco.add_argument("--compare-cold", action="store_true",
                     help="also run the cold flow on the edited design "
                          "and report speedup/QoR metrics")
    eco.add_argument("--json", metavar="PATH",
                     help="write speedup/QoR metrics JSON to PATH")
    eco.add_argument("--report", metavar="PATH",
                     help="write the canonical wire report to PATH "
                          "instead of stdout")
    eco.set_defaults(func=_cmd_eco)

    char = sub.add_parser("characterize",
                          parents=[jobs_p, backend_p, trace_p, cache_p],
                          help="Eucalyptus component characterization")
    char.add_argument("--device", default="NG-ULTRA")
    char.add_argument("--components", default="addsub,logic,comparator")
    char.add_argument("--widths", default="8,16,32")
    char.add_argument("--effort", type=float, default=0.2)
    char.add_argument("--grid-luts", type=int, default=4096)
    char.add_argument("--out", help="XML output file")
    char.add_argument("--json", metavar="PATH",
                      help="also export the runs as canonical JSON")
    char.set_defaults(func=_cmd_characterize)

    seu = sub.add_parser("seu",
                         parents=[jobs_p, backend_p, seed_p, trace_p,
                                  cache_p],
                         help="run the SEU mitigation campaigns")
    seu.add_argument("--runs", type=int, default=400)
    seu.add_argument("--words", type=int, default=64,
                     help="memory size per campaign target")
    seu.add_argument("--timeout", type=float, default=None,
                     help="per-run timeout (seconds)")
    seu.add_argument("--retries", type=int, default=0,
                     help="retry budget before classifying crash")
    seu.add_argument("--json", metavar="PATH",
                     help="also export the reports as canonical JSON")
    seu.add_argument("--shards", type=int, default=0,
                     help="run as a sharded mega-campaign with this "
                          "many shards (0 = unsharded)")
    seu.add_argument("--shard-size", type=int, default=None,
                     metavar="RUNS",
                     help="runs per shard (keep fixed across "
                          "invocations to resume/extend from a cache)")
    seu.add_argument("--resume", action="store_true",
                     help="resume/extend from --cache-dir shard "
                          "checkpoints (errors without a cache)")
    seu.add_argument("--stop-ci", type=float, default=None,
                     metavar="HALF_WIDTH",
                     help="stop each campaign early once the Wilson "
                          "95%% CI half-width on its failure rate is "
                          "below this (exit 4 if never reached)")
    seu.add_argument("--json-deterministic", metavar="PATH",
                     help="export the execution-independent report "
                          "payloads (byte-identical across "
                          "serial/sharded/resumed runs)")
    seu.set_defaults(func=_cmd_seu)

    boot = sub.add_parser("boot", parents=[trace_p],
                          help="run the BL0/BL1/BL2 chain")
    boot.add_argument("--copies", type=int, default=2)
    boot.add_argument("--redundancy", default="sequential",
                      choices=("sequential", "tmr"))
    boot.add_argument("--engine", default="dbt",
                      choices=("dbt", "interp"),
                      help="core execution engine: block-cached DBT "
                           "(default) or the reference decode-per-step "
                           "interpreter")
    boot.set_defaults(func=_cmd_boot)

    mission = sub.add_parser("mission", parents=[trace_p],
                             help="run the virtualized mission")
    mission.add_argument("--frames", type=int, default=30)
    mission.add_argument("--inject-faults", action="store_true")
    mission.set_defaults(func=_cmd_mission)

    trace = sub.add_parser(
        "trace", parents=[jobs_p],
        help="run a canned scenario with telemetry and export its trace")
    trace.add_argument("scenario", choices=sorted(_TRACE_SCENARIOS))
    trace.add_argument("--format", default="json", choices=TRACE_FORMATS,
                       help="json = JSON-lines, chrome = trace-event "
                            "JSON loadable in ui.perfetto.dev")
    trace.add_argument("--out", help="output file (default: stdout)")
    trace.set_defaults(func=_cmd_trace)

    qualify = sub.add_parser("qualify", parents=[cache_p],
                             help="BL1 ECSS qualification campaign")
    qualify.set_defaults(func=_cmd_qualify)

    cache = sub.add_parser(
        "cache", help="inspect or maintain an on-disk flow cache")
    cache.add_argument("action", choices=("stats", "clear", "gc"))
    cache.add_argument("--cache-dir", required=True, metavar="DIR",
                       help="cache directory to operate on")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="gc: new size bound for the store")
    cache.set_defaults(func=_cmd_cache)

    lint = sub.add_parser(
        "lint", parents=[jobs_p],
        help="static verification of design artifacts")
    lint.add_argument("targets", nargs="*",
                      help="HermesC sources (.c/.hc) or XM_CF documents "
                           "(.xml)")
    lint.add_argument("--examples", action="store_true",
                      help="also lint the built-in example designs "
                           "(one per layer)")
    lint.add_argument("--deep", action="store_true",
                      help="also run the dataflow-proven rules "
                           "(abstract interpretation + cross-layer "
                           "consistency)")
    lint.add_argument("--rules",
                      help="comma-separated rule id globs "
                           "(e.g. 'netlist.*,xmcf.window-*')")
    lint.add_argument("--format", default="text",
                      choices=("text", "json"))
    lint.add_argument("--fail-on", default="error",
                      choices=("info", "warning", "error", "never"),
                      help="lowest severity producing a non-zero exit")
    lint.add_argument("--baseline",
                      help="JSON baseline of suppressed findings")
    lint.add_argument("--write-baseline",
                      help="write a baseline suppressing every current "
                           "finding")
    lint.set_defaults(func=_cmd_lint)

    service_p = _parent(
        (("--host",), dict(default="127.0.0.1",
                           help="job service host")),
        (("--port",), dict(type=int, default=8321,
                           help="job service port")))

    serve = sub.add_parser(
        "serve", parents=[jobs_p, backend_p, trace_p, cache_p,
                          service_p],
        help="run the multi-tenant flow-as-a-service job server")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent scheduler worker threads")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="bounded queue capacity (429 beyond it)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", parents=[seed_p, service_p],
        help="submit one JobSpec to a running job server")
    submit.add_argument("kind",
                        help="job kind (hls, flow, characterize, seu, "
                             "mega)")
    submit.add_argument("--params", default="{}", metavar="JSON",
                        help="kind-specific params as a JSON object")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--wait", action="store_true",
                        help="block until terminal and print the "
                             "wire report")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait deadline (seconds)")
    submit.add_argument("--report", metavar="PATH",
                        help="with --wait: write the report here "
                             "instead of stdout")
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser(
        "jobs", parents=[service_p],
        help="list, inspect or cancel jobs on a running server")
    jobs_cmd.add_argument("--tenant", help="filter by tenant")
    jobs_cmd.add_argument("--state",
                          choices=("queued", "running", "succeeded",
                                   "failed", "cancelled"),
                          help="filter by state")
    jobs_cmd.add_argument("--stats", action="store_true",
                          help="print scheduler statistics as JSON")
    jobs_cmd.add_argument("--cancel", metavar="JOB_ID",
                          help="cancel this job instead of listing")
    jobs_cmd.set_defaults(func=_cmd_jobs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        from .exec import ExecError
        if isinstance(error, ExecError):
            print(f"error: {error}", file=sys.stderr)
            return ExitCode.USAGE
        raise


if __name__ == "__main__":
    sys.exit(main())
