"""Command-line interface to the HERMES ecosystem tools.

Subcommands mirror the tool surface a user of the paper's ecosystem gets:

* ``hls``          — synthesize a HermesC file; print reports, write RTL;
* ``characterize`` — run Eucalyptus and export the XML library;
* ``boot``         — run the BL0→BL1→BL2 chain and print the boot report;
* ``mission``      — run the virtualized mission under XtratuM;
* ``qualify``      — run the BL1 qualification campaign, print TRL;
* ``seu``          — run the SEU mitigation campaigns (raw/ECC/TMR);
* ``lint``         — static verification of HermesC sources, XM_CF
  documents and the built-in example designs (``--examples``);
* ``trace``        — run a canned scenario of one stack layer with
  telemetry enabled and export the trace (JSON-lines or Chrome
  trace-event for ui.perfetto.dev).

``characterize`` and ``seu`` accept ``--jobs N`` to fan work out over the
parallel execution engine (``--jobs 0`` uses every core); results are
bit-identical to a serial run by the engine's seed-derivation contract.
``characterize``, ``seu``, ``boot`` and ``mission`` also accept
``--trace PATH`` (with ``--trace-format json|chrome``) to export the
telemetry collected during the run.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .telemetry import TRACE_FORMATS, Tracer, render_trace, write_trace


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH",
                        help="export collected telemetry to PATH")
    parser.add_argument("--trace-format", default="json",
                        choices=TRACE_FORMATS,
                        help="trace export format (json = JSON-lines, "
                             "chrome = Perfetto-loadable trace events)")


def _tracer_for(args) -> Optional[Tracer]:
    return Tracer() if getattr(args, "trace", None) else None


def _finish_trace(args, tracer: Optional[Tracer]) -> None:
    if tracer is None or not args.trace:
        return
    write_trace(tracer, args.trace, args.trace_format)
    print(f"trace ({args.trace_format}, {len(tracer.spans)} spans) "
          f"written to {args.trace}", file=sys.stderr)


def _cmd_hls(args) -> int:
    from .hls import synthesize

    source = Path(args.source).read_text()
    project = synthesize(source, top=args.top, clock_ns=args.clock,
                         opt_level=args.opt)
    design = project[args.top]
    print(f"function {args.top}: {design.report.summary()}")
    print(f"  states: {design.state_count}  "
          f"static latency: {design.static_latency()}")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        for name, text in project.verilog_files().items():
            (out / name).write_text(text)
        print(f"  RTL written to {out}/")
    if args.cosim:
        print("  (cosim requires memory stimuli; use the Python API)")
    return 0


def _cmd_characterize(args) -> int:
    from .fabric import get_device, scaled_device
    from .hls.characterization.eucalyptus import Eucalyptus

    base = get_device(args.device)
    device = scaled_device(base, f"{base.name}-char", args.grid_luts)
    tracer = _tracer_for(args)
    tool = Eucalyptus(device=device, effort=args.effort, tracer=tracer)
    components = args.components.split(",") if args.components else None
    tool.sweep(components=components,
               widths=tuple(int(w) for w in args.widths.split(",")),
               jobs=args.jobs, backend=args.backend)
    _finish_trace(args, tracer)
    if args.jobs != 1 and tool.last_sweep_report is not None:
        print(f"sweep: {tool.last_sweep_report.summary()}")
    library = tool.build_library()
    xml_text = library.to_xml()
    if args.out:
        Path(args.out).write_text(xml_text)
        print(f"library written to {args.out} "
              f"({len(library.records())} records)")
    else:
        print(xml_text)
    return 0


def _cmd_seu(args) -> int:
    from .core import Table
    from .radhard import memory_scenarios

    table = Table(
        f"SEU campaigns ({args.runs} runs each, seed {args.seed}, "
        f"jobs {args.jobs})",
        ["target", "masked", "corrected", "detected", "sdc", "crash",
         "fail_rate", "wall_s", "mean_ms", "p95_ms"])
    failures = 0.0
    tracer = _tracer_for(args)
    for campaign in memory_scenarios(words=args.words):
        report = campaign.run(args.runs, seed=args.seed, jobs=args.jobs,
                              backend=args.backend,
                              timeout_s=args.timeout,
                              retries=args.retries, tracer=tracer)
        table.add_row(campaign.name,
                      report.counts.get("masked", 0),
                      report.counts.get("corrected", 0),
                      report.counts.get("detected", 0),
                      report.counts.get("sdc", 0),
                      report.counts.get("crash", 0),
                      round(report.failure_rate, 4),
                      round(report.wall_s, 3),
                      round(report.latency.mean_s * 1e3, 3),
                      round(report.latency.p95_s * 1e3, 3))
        failures += report.counts.get("crash", 0)
    print(table.render())
    _finish_trace(args, tracer)
    return 0 if failures == 0 else 1


def _cmd_boot(args) -> int:
    from .boot import (BootImage, ImageKind, Bl1Config, RedundancyMode,
                       provision_flash, run_boot_chain)
    from .soc import DDR_BASE, NgUltraSoc, assemble

    soc = NgUltraSoc()
    program = assemble("MOVI r0, #42\nHALT", base_address=DDR_BASE)
    app = BootImage(kind=ImageKind.APPLICATION, load_address=DDR_BASE,
                    entry_point=DDR_BASE, payload=program, name="app")
    provision_flash(soc, [app], copies=args.copies)
    config = Bl1Config(redundancy=RedundancyMode(args.redundancy))
    tracer = _tracer_for(args)
    result = run_boot_chain(soc, config=config, run_application=True,
                            tracer=tracer)
    print(result.render())
    print(f"\ntotal: {result.total_cycles} cycles "
          f"({result.total_cycles / 600:.1f} us @600MHz)")
    _finish_trace(args, tracer)
    return 0 if result.bl1.report.success else 1


def _cmd_mission(args) -> int:
    from .apps import mission

    tracer = _tracer_for(args)
    run = mission.run_mission(frames=args.frames,
                              faulty_vbn=args.inject_faults,
                              tracer=tracer)
    print(run.hypervisor.summary(run.metrics))
    _finish_trace(args, tracer)
    if run.telemetry:
        last = run.telemetry[-1]
        print(f"\nfinal AOCS pointing error: "
              f"{last['aocs']['pointing_error_rad']:.4f} rad")
    misses = sum(p.deadline_misses
                 for pid, p in run.metrics.partitions.items()
                 if pid != mission.VBN_PID)
    return 0 if misses == 0 else 1


def _cmd_lint(args) -> int:
    from .analysis import (
        Analyzer,
        RuleError,
        Severity,
        TargetError,
        example_targets,
        load_baseline,
        render_baseline,
        target_from_file,
    )

    targets = []
    try:
        if args.examples:
            targets.extend(example_targets())
        for path_text in args.targets:
            targets.append(target_from_file(Path(path_text)))
    except (TargetError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not targets:
        print("error: nothing to lint (pass files or --examples)",
              file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        baseline = load_baseline(Path(args.baseline).read_text())
    rules = [p.strip() for p in args.rules.split(",") if p.strip()] \
        if args.rules else None
    try:
        analyzer = Analyzer(rules=rules, baseline=baseline,
                            jobs=args.jobs)
    except RuleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = analyzer.run(targets)
    if args.write_baseline:
        Path(args.write_baseline).write_text(render_baseline(report))
        print(f"baseline written to {args.write_baseline} "
              f"({len(report.baseline_fingerprints())} findings)",
              file=sys.stderr)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    fail_on = None if args.fail_on == "never" \
        else Severity.parse(args.fail_on)
    return report.exit_code(fail_on)


# Kernel for the canned ``trace flow`` scenario (the quickstart wavg).
_TRACE_KERNEL = """
// Weighted moving average over an 8-sample window.
void wavg(const int *x, int *y, int n) {
  const int w[8] = {1, 2, 4, 8, 8, 4, 2, 1};
  for (int i = 7; i < n; i++) {
    int acc = 0;
    for (int t = 0; t < 8; t++) {
      acc += x[i - t] * w[t];
    }
    y[i] = acc >> 5;
  }
}
"""


def _trace_scenario_flow(tracer, args) -> None:
    """HLS pipeline + fabric backend on the quickstart kernel."""
    from .fabric import get_device, scaled_device
    from .fabric.nxmap import NXmapProject
    from .fabric.synthesis import synthesize_component
    from .hls import synthesize

    synthesize(_TRACE_KERNEL, top="wavg", clock_ns=5.0, tracer=tracer)
    device = scaled_device(get_device("NG-ULTRA"), "NG-ULTRA-trace", 4096)
    netlist = synthesize_component("addsub", 16, 0)
    project = NXmapProject(netlist, device, tracer=tracer)
    project.run_all(target_clock_ns=5.0, effort=0.2)


def _trace_scenario_boot(tracer, args) -> None:
    """BL0→BL2 power-up with an application image."""
    from .boot import (BootImage, ImageKind, provision_flash,
                       run_boot_chain)
    from .soc import DDR_BASE, NgUltraSoc, assemble

    soc = NgUltraSoc()
    program = assemble("MOVI r0, #42\nHALT", base_address=DDR_BASE)
    app = BootImage(kind=ImageKind.APPLICATION, load_address=DDR_BASE,
                    entry_point=DDR_BASE, payload=program, name="app")
    provision_flash(soc, [app])
    run_boot_chain(soc, run_application=True, tracer=tracer)


def _trace_scenario_mission(tracer, args) -> None:
    """Virtualized mission under the XtratuM-equivalent hypervisor."""
    from .apps import mission

    mission.run_mission(frames=20, tracer=tracer)


def _trace_scenario_seu(tracer, args) -> None:
    """SEU mitigation campaigns (raw/ECC/TMR memory targets)."""
    from .radhard import memory_scenarios

    for campaign in memory_scenarios(words=32):
        campaign.run(60, seed=13, jobs=args.jobs, tracer=tracer)


def _trace_scenario_characterize(tracer, args) -> None:
    """A small Eucalyptus characterization sweep."""
    from .fabric import get_device, scaled_device
    from .hls.characterization.eucalyptus import Eucalyptus

    device = scaled_device(get_device("NG-ULTRA"), "NG-ULTRA-trace", 4096)
    tool = Eucalyptus(device=device, effort=0.2, tracer=tracer)
    tool.sweep(components=["addsub", "logic"], widths=(8, 16),
               jobs=args.jobs)


_TRACE_SCENARIOS = {
    "flow": _trace_scenario_flow,
    "boot": _trace_scenario_boot,
    "mission": _trace_scenario_mission,
    "seu": _trace_scenario_seu,
    "characterize": _trace_scenario_characterize,
}


def _cmd_trace(args) -> int:
    tracer = Tracer()
    _TRACE_SCENARIOS[args.scenario](tracer, args)
    text = render_trace(tracer, args.format)
    if args.out:
        Path(args.out).write_text(text)
        print(f"{args.scenario} trace ({args.format}) written to "
              f"{args.out}: {tracer.summary()}", file=sys.stderr)
    else:
        print(text)
        print(f"{args.scenario} trace: {tracer.summary()}",
              file=sys.stderr)
    return 0


def _cmd_qualify(args) -> int:
    import importlib
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                           / "benchmarks"))
    try:
        module = importlib.import_module("bench_qualification_datapack")
    except ModuleNotFoundError:
        print("qualification bench not found; run from the repository")
        return 1
    table, report, trl, pack = module.run_qualification()
    print(table.render())
    print(f"\nTRL {trl.level}; datapack complete: {pack.complete}")
    return 0 if report.all_passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HERMES ecosystem tools")
    sub = parser.add_subparsers(dest="command", required=True)

    hls = sub.add_parser("hls", help="synthesize a HermesC source file")
    hls.add_argument("source")
    hls.add_argument("--top", required=True)
    hls.add_argument("--clock", type=float, default=10.0,
                     help="clock period (ns)")
    hls.add_argument("--opt", type=int, default=2, choices=(0, 1, 2, 3))
    hls.add_argument("--out", help="directory for generated RTL")
    hls.add_argument("--cosim", action="store_true")
    hls.set_defaults(func=_cmd_hls)

    char = sub.add_parser("characterize",
                          help="Eucalyptus component characterization")
    char.add_argument("--device", default="NG-ULTRA")
    char.add_argument("--components", default="addsub,logic,comparator")
    char.add_argument("--widths", default="8,16,32")
    char.add_argument("--effort", type=float, default=0.2)
    char.add_argument("--grid-luts", type=int, default=4096)
    char.add_argument("--out", help="XML output file")
    char.add_argument("--jobs", type=int, default=1,
                      help="parallel jobs (0 = all cores)")
    char.add_argument("--backend", default="auto",
                      choices=("auto", "serial", "thread", "process"))
    _add_trace_options(char)
    char.set_defaults(func=_cmd_characterize)

    seu = sub.add_parser("seu",
                         help="run the SEU mitigation campaigns")
    seu.add_argument("--runs", type=int, default=400)
    seu.add_argument("--seed", type=int, default=13)
    seu.add_argument("--words", type=int, default=64,
                     help="memory size per campaign target")
    seu.add_argument("--jobs", type=int, default=1,
                     help="parallel jobs (0 = all cores)")
    seu.add_argument("--backend", default="auto",
                     choices=("auto", "serial", "thread", "process"))
    seu.add_argument("--timeout", type=float, default=None,
                     help="per-run timeout (seconds)")
    seu.add_argument("--retries", type=int, default=0,
                     help="retry budget before classifying crash")
    _add_trace_options(seu)
    seu.set_defaults(func=_cmd_seu)

    boot = sub.add_parser("boot", help="run the BL0/BL1/BL2 chain")
    boot.add_argument("--copies", type=int, default=2)
    boot.add_argument("--redundancy", default="sequential",
                      choices=("sequential", "tmr"))
    _add_trace_options(boot)
    boot.set_defaults(func=_cmd_boot)

    mission = sub.add_parser("mission",
                             help="run the virtualized mission")
    mission.add_argument("--frames", type=int, default=30)
    mission.add_argument("--inject-faults", action="store_true")
    _add_trace_options(mission)
    mission.set_defaults(func=_cmd_mission)

    trace = sub.add_parser(
        "trace", help="run a canned scenario with telemetry and "
                      "export its trace")
    trace.add_argument("scenario", choices=sorted(_TRACE_SCENARIOS))
    trace.add_argument("--format", default="json", choices=TRACE_FORMATS,
                       help="json = JSON-lines, chrome = trace-event "
                            "JSON loadable in ui.perfetto.dev")
    trace.add_argument("--out", help="output file (default: stdout)")
    trace.add_argument("--jobs", type=int, default=1,
                       help="parallel jobs for seu/characterize "
                            "scenarios (trace is identical at any "
                            "job count)")
    trace.set_defaults(func=_cmd_trace)

    qualify = sub.add_parser("qualify",
                             help="BL1 ECSS qualification campaign")
    qualify.set_defaults(func=_cmd_qualify)

    lint = sub.add_parser(
        "lint", help="static verification of design artifacts")
    lint.add_argument("targets", nargs="*",
                      help="HermesC sources (.c/.hc) or XM_CF documents "
                           "(.xml)")
    lint.add_argument("--examples", action="store_true",
                      help="also lint the built-in example designs "
                           "(one per layer)")
    lint.add_argument("--rules",
                      help="comma-separated rule id globs "
                           "(e.g. 'netlist.*,xmcf.window-*')")
    lint.add_argument("--format", default="text",
                      choices=("text", "json"))
    lint.add_argument("--fail-on", default="error",
                      choices=("info", "warning", "error", "never"),
                      help="lowest severity producing a non-zero exit")
    lint.add_argument("--baseline",
                      help="JSON baseline of suppressed findings")
    lint.add_argument("--write-baseline",
                      help="write a baseline suppressing every current "
                           "finding")
    lint.add_argument("--jobs", type=int, default=1,
                      help="parallel jobs across targets (0 = all cores)")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        from .exec import ExecError
        if isinstance(error, ExecError):
            print(f"error: {error}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
