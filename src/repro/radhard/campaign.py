"""Fault-injection campaigns and cross-section statistics.

A campaign repeatedly: (1) restores a pristine system, (2) injects one or
more upsets, (3) runs a workload and classifies the outcome.  The
classification follows radiation-test practice:

* ``masked``     — no observable effect (upset in unused state);
* ``corrected``  — a mitigation (ECC/TMR/scrubbing) repaired it;
* ``detected``   — an integrity check flagged it (no silent corruption);
* ``sdc``        — silent data corruption (wrong result, no flag);
* ``crash``      — the workload failed to complete.

``CrossSection`` converts campaign counts into the device cross-section
numbers a beam-test report quotes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..cache import FlowCache, content_key
from ..exec.engine import ParallelEngine
from ..exec.metrics import LatencyStats
from ..telemetry import Tracer

OUTCOMES = ("masked", "corrected", "detected", "sdc", "crash")


class CampaignError(Exception):
    pass


@dataclass
class InjectionResult:
    run: int
    outcome: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise CampaignError(f"unknown outcome {self.outcome!r}")


def classify_result(run_result) -> tuple:
    """``(outcome, description)`` of one engine :class:`RunResult`.

    A run whose callbacks raised or timed out (after its retry budget)
    is classified ``crash`` with the error text as description — the
    same rule whether the run executed on a flat engine map or inside a
    mega-campaign shard.
    """
    if run_result.ok:
        return run_result.value
    return "crash", run_result.error


@dataclass
class CampaignReport:
    name: str
    runs: int
    upsets_per_run: int
    counts: Dict[str, int] = field(default_factory=dict)
    results: List[InjectionResult] = field(default_factory=list)
    # Execution accounting (filled in by Campaign.run).
    backend: str = "serial"
    jobs: int = 1
    wall_s: float = 0.0
    retried_runs: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def total_upsets(self) -> int:
        return self.runs * self.upsets_per_run

    def rate(self, outcome: str) -> float:
        if outcome not in OUTCOMES:
            raise CampaignError(f"unknown outcome {outcome!r}")
        return self.counts.get(outcome, 0) / self.runs if self.runs else 0.0

    @property
    def failure_rate(self) -> float:
        """Fraction of runs ending in an unhandled effect (sdc or crash)."""
        return self.rate("sdc") + self.rate("crash")

    @property
    def mitigation_effectiveness(self) -> float:
        """Fraction of non-masked upsets that were corrected or detected."""
        effective = self.counts.get("corrected", 0) + \
            self.counts.get("detected", 0)
        visible = self.runs - self.counts.get("masked", 0)
        return effective / visible if visible else 1.0

    def summary_row(self) -> str:
        cells = "  ".join(f"{o}={self.counts.get(o, 0)}" for o in OUTCOMES)
        return (f"{self.name:<28} runs={self.runs:<6} {cells}  "
                f"fail={self.failure_rate:.4f}")

    def timing_row(self) -> str:
        return (f"{self.name:<28} backend={self.backend:<8} "
                f"jobs={self.jobs:<3} wall={self.wall_s:.3f}s  "
                f"{self.latency.summary()}")

    def summary(self) -> str:
        """One-line report summary (the :class:`~repro.core.Report`
        protocol method; same text as the legacy ``summary_row``)."""
        return self.summary_row()

    def deterministic_json(self) -> Dict[str, Any]:
        """The execution-independent payload: the scientific evidence.

        Name, run/upset counts, per-outcome tallies and the per-run
        outcome list — everything a campaign *measured*, nothing about
        how it was executed.  This is the byte-identity contract of the
        sharded/resumed/parallel paths: any execution shape of the same
        (scenario, runs, seed) produces these bytes exactly.  The
        wall-clock accounting (backend, jobs, wall_s, latency) is
        honest measurement of one particular execution and is excluded.
        """
        return {
            "name": self.name,
            "runs": self.runs,
            "upsets_per_run": self.upsets_per_run,
            "counts": {o: self.counts[o]
                       for o in OUTCOMES if o in self.counts},
            "results": [{"run": r.run, "outcome": r.outcome,
                         "description": r.description}
                        for r in self.results],
        }

    def to_json(self) -> Dict[str, Any]:
        payload = self.deterministic_json()
        payload.update({
            "backend": self.backend,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "retried_runs": self.retried_runs,
            "latency": self.latency.to_json(),
        })
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "CampaignReport":
        return cls(
            name=payload["name"],
            runs=payload["runs"],
            upsets_per_run=payload["upsets_per_run"],
            counts=dict(payload["counts"]),
            results=[InjectionResult(run=r["run"], outcome=r["outcome"],
                                     description=r["description"])
                     for r in payload["results"]],
            backend=payload["backend"],
            jobs=payload["jobs"],
            wall_s=payload["wall_s"],
            retried_runs=payload["retried_runs"],
            latency=LatencyStats.from_json(payload["latency"]),
        )


class Campaign:
    """Runs a fault-injection campaign.

    ``setup``     — returns a fresh system context per run;
    ``inject``    — performs the upset(s) on the context;
    ``evaluate``  — runs the workload and returns an outcome string.

    Every run draws from its own ``random.Random`` seeded by
    ``exec.seed_for(seed, run_index)``, so runs are statistically
    independent and any single run can be replayed in isolation.  The
    same property makes ``jobs > 1`` executions (thread or process
    backend) bit-identical to serial ones.
    """

    def __init__(self, name: str,
                 setup: Callable[[], object],
                 inject: Callable[[object, random.Random], str],
                 evaluate: Callable[[object], str],
                 upsets_per_run: int = 1,
                 scenario_params: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.setup = setup
        self.inject = inject
        self.evaluate = evaluate
        self.upsets_per_run = upsets_per_run
        # Parameters that shaped the scenario closures (word counts,
        # dwell times...).  Campaign names alone don't encode them, so
        # they must be part of the content-addressed cache key.
        self.scenario_params = dict(scenario_params or {})

    def cache_key(self, runs: int, seed: int) -> str:
        """Content key of one campaign execution's report."""
        return content_key("radhard", {
            "scenario": self.name,
            "params": self.scenario_params,
            "upsets_per_run": self.upsets_per_run,
            "runs": runs, "seed": seed})

    def _one_run(self, index: int, run_seed: int) -> tuple:
        rng = random.Random(run_seed)
        context = self.setup()
        description = ""
        for _ in range(self.upsets_per_run):
            description = self.inject(context, rng)
        outcome = self.evaluate(context)
        if outcome not in OUTCOMES:
            raise CampaignError(f"unknown outcome {outcome!r}")
        return outcome, description

    def run(self, runs: int, seed: int = 1, jobs: int = 1,
            backend: str = "auto", timeout_s: Optional[float] = None,
            retries: int = 0,
            progress: Optional[Callable[[int, int], None]] = None,
            tracer: Optional[Tracer] = None,
            cache: Optional[FlowCache] = None) -> CampaignReport:
        """Execute ``runs`` injection runs, optionally in parallel.

        A run whose callbacks raise or overrun ``timeout_s`` is retried
        up to ``retries`` times and classified ``crash`` on exhaustion;
        a malformed campaign (unknown outcome string) raises
        :class:`CampaignError` regardless of backend.  ``tracer``
        records per-run injection/outcome spans and mitigation tallies,
        derived from the merged run-ordered report so the trace is
        identical at any job count.

        ``cache`` keys the whole report on (scenario, params, upsets,
        runs, seed) — the execution accounting (backend/jobs/wall time)
        is restored from the cold run, so warm output is byte-identical
        to the run that populated the cache.

        Thin shim over the unified job facade (:func:`repro.api.submit`,
        kind ``"seu"``); the campaign body is :meth:`_run_impl`, driven
        by the runner against this live campaign from the context's
        resources (the closures themselves cannot travel as params).
        """
        from ..api import JobSpec, submit
        spec = JobSpec(kind="seu", params={
            "scenario": self.name,
            "scenario_params": self.scenario_params,
            "upsets_per_run": self.upsets_per_run,
            "runs": runs}, seed=seed)
        result = submit(spec, jobs=jobs, backend=backend,
                        timeout_s=timeout_s, retries=retries,
                        progress=progress, tracer=tracer, cache=cache,
                        resources={"campaign": self})
        return result.report

    def _run_impl(self, runs: int, seed: int = 1, jobs: int = 1,
                  backend: str = "auto", timeout_s: Optional[float] = None,
                  retries: int = 0,
                  progress: Optional[Callable[[int, int], None]] = None,
                  tracer: Optional[Tracer] = None,
                  cache: Optional[FlowCache] = None) -> CampaignReport:
        """The campaign body (see :meth:`run` for the contract)."""
        key = None
        if cache is not None:
            key = self.cache_key(runs, seed)
            hit, cached = cache.get("radhard", key,
                                    CampaignReport.from_json)
            if hit:
                if tracer is not None:
                    self._emit_telemetry(tracer, cached)
                return cached
        engine = ParallelEngine(jobs=jobs, backend=backend,
                                timeout_s=timeout_s, retries=retries,
                                progress=progress,
                                fatal_types=(CampaignError,),
                                tracer=tracer)
        exec_report = engine.map_seeded(self._one_run, runs, seed)
        report = CampaignReport(name=self.name, runs=runs,
                                upsets_per_run=self.upsets_per_run,
                                backend=exec_report.backend,
                                jobs=exec_report.jobs,
                                wall_s=exec_report.wall_s,
                                retried_runs=exec_report.retried_runs,
                                latency=exec_report.latency_stats())
        for run_result in exec_report.results:
            outcome, description = classify_result(run_result)
            result = InjectionResult(run=run_result.index, outcome=outcome,
                                     description=description)
            report.results.append(result)
            report.counts[outcome] = report.counts.get(outcome, 0) + 1
        if cache is not None and key is not None:
            cache.put("radhard", key, report, CampaignReport.to_json)
        if tracer is not None:
            self._emit_telemetry(tracer, report)
        return report

    def _emit_telemetry(self, tracer: Tracer,
                        report: CampaignReport) -> None:
        """Per-run injection/outcome spans plus mitigation tallies."""
        runs_counter = tracer.counter("radhard.runs", "radhard")
        base = runs_counter.value
        runs_counter.add(report.runs)
        for result in report.results:
            tracer.add_span(f"inject:{result.outcome}", "radhard",
                            base + result.run, base + result.run + 1,
                            campaign=self.name, run=result.run,
                            outcome=result.outcome,
                            description=result.description)
        for outcome in OUTCOMES:
            count = report.counts.get(outcome, 0)
            if count:
                tracer.counter(f"radhard.{outcome}", "radhard").add(count)
                tracer.counter(f"radhard.{self.name}.{outcome}",
                               "radhard").add(count)
        # The "masked by mitigation" tally the beam-test report quotes:
        # upsets a mitigation repaired or flagged before they could
        # propagate (ECC corrections, TMR out-votes, CRC detections).
        mitigated = report.counts.get("corrected", 0) + \
            report.counts.get("detected", 0)
        tracer.counter("radhard.mitigated", "radhard").add(mitigated)
        tracer.gauge(f"radhard.{self.name}.failure_rate",
                     "radhard").set(round(report.failure_rate, 6))
        tracer.add_span(f"campaign:{self.name}", "radhard", base,
                        base + report.runs, runs=report.runs,
                        upsets_per_run=self.upsets_per_run,
                        counts={o: report.counts.get(o, 0)
                                for o in OUTCOMES
                                if report.counts.get(o, 0)})


@dataclass
class CrossSection:
    """Beam-test style cross-section computation.

    ``sigma = events / fluence`` with fluence in particles/cm².  The
    per-bit cross-section divides by the sensitive bit count.
    """

    events: int
    fluence_per_cm2: float
    sensitive_bits: int = 0

    @property
    def device_cm2(self) -> float:
        if self.fluence_per_cm2 <= 0:
            raise CampaignError("fluence must be positive")
        return self.events / self.fluence_per_cm2

    @property
    def per_bit_cm2(self) -> float:
        if self.sensitive_bits <= 0:
            raise CampaignError("sensitive bit count required")
        return self.device_cm2 / self.sensitive_bits

    def expected_upsets_in_orbit(self, flux_per_cm2_per_day: float,
                                 days: float) -> float:
        """Predicted on-orbit upsets for a given environment flux."""
        return self.device_cm2 * flux_per_cm2_per_day * days
