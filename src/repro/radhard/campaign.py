"""Fault-injection campaigns and cross-section statistics.

A campaign repeatedly: (1) restores a pristine system, (2) injects one or
more upsets, (3) runs a workload and classifies the outcome.  The
classification follows radiation-test practice:

* ``masked``     — no observable effect (upset in unused state);
* ``corrected``  — a mitigation (ECC/TMR/scrubbing) repaired it;
* ``detected``   — an integrity check flagged it (no silent corruption);
* ``sdc``        — silent data corruption (wrong result, no flag);
* ``crash``      — the workload failed to complete.

``CrossSection`` converts campaign counts into the device cross-section
numbers a beam-test report quotes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

OUTCOMES = ("masked", "corrected", "detected", "sdc", "crash")


class CampaignError(Exception):
    pass


@dataclass
class InjectionResult:
    run: int
    outcome: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise CampaignError(f"unknown outcome {self.outcome!r}")


@dataclass
class CampaignReport:
    name: str
    runs: int
    upsets_per_run: int
    counts: Dict[str, int] = field(default_factory=dict)
    results: List[InjectionResult] = field(default_factory=list)

    @property
    def total_upsets(self) -> int:
        return self.runs * self.upsets_per_run

    def rate(self, outcome: str) -> float:
        if outcome not in OUTCOMES:
            raise CampaignError(f"unknown outcome {outcome!r}")
        return self.counts.get(outcome, 0) / self.runs if self.runs else 0.0

    @property
    def failure_rate(self) -> float:
        """Fraction of runs ending in an unhandled effect (sdc or crash)."""
        return self.rate("sdc") + self.rate("crash")

    @property
    def mitigation_effectiveness(self) -> float:
        """Fraction of non-masked upsets that were corrected or detected."""
        effective = self.counts.get("corrected", 0) + \
            self.counts.get("detected", 0)
        visible = self.runs - self.counts.get("masked", 0)
        return effective / visible if visible else 1.0

    def summary_row(self) -> str:
        cells = "  ".join(f"{o}={self.counts.get(o, 0)}" for o in OUTCOMES)
        return (f"{self.name:<28} runs={self.runs:<6} {cells}  "
                f"fail={self.failure_rate:.4f}")


class Campaign:
    """Runs a fault-injection campaign.

    ``setup``     — returns a fresh system context per run;
    ``inject``    — performs the upset(s) on the context;
    ``evaluate``  — runs the workload and returns an outcome string.
    """

    def __init__(self, name: str,
                 setup: Callable[[], object],
                 inject: Callable[[object, random.Random], str],
                 evaluate: Callable[[object], str],
                 upsets_per_run: int = 1) -> None:
        self.name = name
        self.setup = setup
        self.inject = inject
        self.evaluate = evaluate
        self.upsets_per_run = upsets_per_run

    def run(self, runs: int, seed: int = 1) -> CampaignReport:
        rng = random.Random(seed)
        report = CampaignReport(name=self.name, runs=runs,
                                upsets_per_run=self.upsets_per_run)
        for index in range(runs):
            context = self.setup()
            description = ""
            for _ in range(self.upsets_per_run):
                description = self.inject(context, rng)
            outcome = self.evaluate(context)
            result = InjectionResult(run=index, outcome=outcome,
                                     description=description)
            report.results.append(result)
            report.counts[outcome] = report.counts.get(outcome, 0) + 1
        return report


@dataclass
class CrossSection:
    """Beam-test style cross-section computation.

    ``sigma = events / fluence`` with fluence in particles/cm².  The
    per-bit cross-section divides by the sensitive bit count.
    """

    events: int
    fluence_per_cm2: float
    sensitive_bits: int = 0

    @property
    def device_cm2(self) -> float:
        if self.fluence_per_cm2 <= 0:
            raise CampaignError("fluence must be positive")
        return self.events / self.fluence_per_cm2

    @property
    def per_bit_cm2(self) -> float:
        if self.sensitive_bits <= 0:
            raise CampaignError("sensitive bit count required")
        return self.device_cm2 / self.sensitive_bits

    def expected_upsets_in_orbit(self, flux_per_cm2_per_day: float,
                                 days: float) -> float:
        """Predicted on-orbit upsets for a given environment flux."""
        return self.device_cm2 * flux_per_cm2_per_day * days
