"""Sharded, resumable, early-stoppable SEU mega-campaigns.

:class:`MegaCampaign` wraps a plain :class:`~repro.radhard.Campaign`
and scales it from "one flat job list" to qualification-sized evidence
accumulation:

* **Sharding** — the run range is split into fixed-size seed-range
  shards (:func:`repro.exec.plan_shards`); every run keeps its global
  index and therefore its ``seed_for(seed, index)`` sub-stream, so the
  merged report's deterministic payload is byte-identical to the serial
  ``Campaign.run`` at any shard count, worker count or backend.
* **Checkpointing** — each completed shard is written through the
  content-addressed flow cache the moment it finishes (key = scenario
  fingerprint + seed + shard range).  A SIGKILLed campaign loses at
  most its in-flight shards; re-running the same invocation against the
  same cache directory replays only the missing shards.  Extending
  ``runs`` with the same ``shard_size`` reuses every old shard and
  computes only the gap.
* **Streaming statistics** — shards fold into a
  :class:`~repro.exec.StreamingStats` accumulator *in shard index
  order* (a reorder buffer absorbs out-of-order completions), keeping
  per-outcome tallies and Wilson 95% CIs live during the campaign.
* **Early stopping** — with ``stop_ci`` set, the campaign halts at the
  first shard after which the CI half-width on the monitored outcome
  set (default: the sdc+crash failure rate) drops below the target.
  Because the stop decision consumes shards in index order, the folded
  prefix — and thus the early-stopped report — is deterministic at any
  job count; it just takes wall-clock longer with fewer workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..cache import FlowCache, content_key
from ..exec import LatencyStats, StreamingStats
from ..exec.sharding import ShardPlan, ShardResult, ShardSpec, \
    plan_shards, run_sharded
from ..telemetry import Tracer
from .campaign import Campaign, CampaignError, CampaignReport, \
    InjectionResult, OUTCOMES, classify_result

#: The outcome set early stopping monitors by default: unhandled
#: effects (silent corruption or crash) — the "failure rate" of the
#: paper's mitigation matrix.
FAILURE_OUTCOMES: Tuple[str, ...] = ("sdc", "crash")


@dataclass
class ShardRecord:
    """One shard's classified, cache-serializable outcome.

    Unlike a summarized report, the record keeps the per-run latency
    *samples*: summaries don't merge (percentiles don't compose), raw
    samples do — exactly and order-invariantly.
    """

    spec: ShardSpec
    counts: Dict[str, int] = field(default_factory=dict)
    results: List[InjectionResult] = field(default_factory=list)
    latency_s: List[float] = field(default_factory=list)
    retried_runs: int = 0
    wall_s: float = 0.0
    cached: bool = False  # runtime flag, not serialized

    @classmethod
    def from_shard_result(cls, shard: ShardResult) -> "ShardRecord":
        record = cls(spec=shard.spec, wall_s=shard.wall_s)
        for run_result in shard.results:
            outcome, description = classify_result(run_result)
            record.results.append(InjectionResult(
                run=run_result.index, outcome=outcome,
                description=description))
            record.counts[outcome] = record.counts.get(outcome, 0) + 1
            record.latency_s.append(run_result.latency_s)
            if run_result.attempts > 1:
                record.retried_runs += 1
        return record

    def to_json(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_json(),
            "counts": {o: self.counts[o]
                       for o in OUTCOMES if o in self.counts},
            "results": [{"run": r.run, "outcome": r.outcome,
                         "description": r.description}
                        for r in self.results],
            "latency_s": list(self.latency_s),
            "retried_runs": self.retried_runs,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ShardRecord":
        return cls(
            spec=ShardSpec.from_json(payload["spec"]),
            counts=dict(payload["counts"]),
            results=[InjectionResult(run=r["run"], outcome=r["outcome"],
                                     description=r["description"])
                     for r in payload["results"]],
            latency_s=list(payload["latency_s"]),
            retried_runs=payload["retried_runs"],
            wall_s=payload["wall_s"],
        )


def merge_shard_records(name: str, upsets_per_run: int,
                        records: List[ShardRecord],
                        backend: str = "shard", jobs: int = 1,
                        wall_s: float = 0.0) -> CampaignReport:
    """Merge shard records into one :class:`CampaignReport`.

    Order-invariant by construction: shards are sorted by range start
    before anything is accumulated, counts are integer sums, and the
    latency summary is rebuilt from the pooled samples
    (:meth:`LatencyStats.from_sample_groups`), never from per-shard
    summaries — so any completion order, and any shuffling of
    ``records``, produces byte-identical report JSON.  Merging zero
    records (or zero-run campaigns) yields a valid empty report whose
    rate accessors return 0.0 rather than dividing by zero.
    """
    ordered = sorted(records, key=lambda record: record.spec.start)
    counts: Dict[str, int] = {}
    results: List[InjectionResult] = []
    for record in ordered:
        results.extend(record.results)
        for outcome, amount in record.counts.items():
            counts[outcome] = counts.get(outcome, 0) + amount
    return CampaignReport(
        name=name,
        runs=sum(record.spec.count for record in ordered),
        upsets_per_run=upsets_per_run,
        counts=counts,
        results=results,
        backend=backend,
        jobs=jobs,
        wall_s=wall_s,
        retried_runs=sum(record.retried_runs for record in ordered),
        latency=LatencyStats.from_sample_groups(
            [record.latency_s for record in ordered]),
    )


@dataclass
class MegaReport:
    """A merged campaign report plus the sharding/statistics evidence."""

    report: CampaignReport
    runs_requested: int
    plan: ShardPlan
    shards: List[ShardRecord]
    stats: StreamingStats
    early_stopped: bool = False
    stop_ci: Optional[float] = None
    stop_outcomes: Tuple[str, ...] = FAILURE_OUTCOMES
    wall_s: float = 0.0

    @property
    def runs_executed(self) -> int:
        return self.report.runs

    @property
    def shards_folded(self) -> int:
        return len(self.shards)

    @property
    def shards_cached(self) -> int:
        return sum(1 for record in self.shards if record.cached)

    @property
    def shards_computed(self) -> int:
        return len(self.shards) - self.shards_cached

    def ci(self) -> Tuple[float, float]:
        """Wilson CI on the monitored outcome-set rate."""
        return self.stats.interval(self.stop_outcomes)

    @property
    def ci_half_width(self) -> float:
        return self.stats.half_width(self.stop_outcomes)

    @property
    def reached_target(self) -> bool:
        """True when the stop-CI target was met (early or at the end)."""
        if self.stop_ci is None:
            return True
        return self.early_stopped or self.ci_half_width < self.stop_ci

    def summary(self) -> str:
        low, high = self.ci()
        return (f"{self.report.name}: {self.runs_executed}/"
                f"{self.runs_requested} runs over {self.shards_folded}/"
                f"{len(self.plan)} shard(s) "
                f"({self.shards_cached} cached, "
                f"{self.shards_computed} computed); "
                f"rate[{'+'.join(self.stop_outcomes)}]="
                f"{self.stats.rate(self.stop_outcomes):.4f} "
                f"ci95=[{low:.4f}, {high:.4f}] "
                f"half={self.ci_half_width:.4f}"
                + ("; early stop" if self.early_stopped else ""))

    def to_json(self) -> Dict[str, Any]:
        return {
            "report": self.report.to_json(),
            "runs_requested": self.runs_requested,
            "manifest": self.plan.manifest(),
            "shards_folded": self.shards_folded,
            "shards_cached": self.shards_cached,
            "shards_computed": self.shards_computed,
            "early_stopped": self.early_stopped,
            "stop_ci": self.stop_ci,
            "stop_outcomes": list(self.stop_outcomes),
            "stats": self.stats.to_json(),
            "ci95": list(self.ci()),
            "wall_s": self.wall_s,
        }


class MegaCampaign:
    """Sharded, checkpointed, early-stoppable execution of a Campaign.

    ``cache`` (a :class:`FlowCache`) is the checkpoint store: pass one
    with a directory to make campaigns survive kills and extend across
    processes.  ``tracer`` records per-shard spans and outcome counters
    on the run-index timeline, derived from the folded, index-ordered
    records — identical at any job count.
    """

    def __init__(self, campaign: Campaign,
                 cache: Optional[FlowCache] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.campaign = campaign
        self.cache = cache
        self.tracer = tracer

    def shard_key(self, seed: int, spec: ShardSpec) -> str:
        """Checkpoint key of one shard: scenario fingerprint + range.

        The key binds everything that determines the shard's bytes —
        scenario name and parameters, upsets per run, campaign seed and
        the run-index range.  The shard *index* and total run count are
        deliberately excluded: shard 3 of a 1 000-run campaign is the
        same artifact as shard 3 of the 2 000-run extension.
        """
        return content_key("mega", {
            "scenario": self.campaign.name,
            "params": self.campaign.scenario_params,
            "upsets_per_run": self.campaign.upsets_per_run,
            "seed": seed,
            "start": spec.start, "count": spec.count})

    def run(self, runs: int, seed: int = 1, jobs: int = 1,
            backend: str = "auto", shards: Optional[int] = None,
            shard_size: Optional[int] = None,
            timeout_s: Optional[float] = None, retries: int = 0,
            stop_ci: Optional[float] = None,
            stop_outcomes: Tuple[str, ...] = FAILURE_OUTCOMES,
            min_stop_shards: int = 2,
            progress=None) -> MegaReport:
        """Execute up to ``runs`` injection runs in shards.

        Give ``shards`` (count) or ``shard_size`` (runs per shard;
        required for extension-friendly keys); with neither, a default
        of 4 shards per worker is planned.  ``stop_ci`` arms early
        stopping at the given Wilson-CI half-width on the
        ``stop_outcomes`` rate (never before ``min_stop_shards`` shards
        have folded).  ``progress`` is called as ``(folded_shards,
        planned_shards)``.

        Thin shim over the unified job facade (:func:`repro.api.submit`,
        kind ``"mega"``); the sharded-execution body is
        :meth:`_run_impl`, driven by the runner against this live
        instance (its cache/tracer wiring included) from the context's
        resources.
        """
        from ..api import JobSpec, submit
        spec = JobSpec(kind="mega", params={
            "scenario": self.campaign.name,
            "scenario_params": self.campaign.scenario_params,
            "upsets_per_run": self.campaign.upsets_per_run,
            "runs": runs, "shards": shards, "shard_size": shard_size,
            "stop_ci": stop_ci, "stop_outcomes": list(stop_outcomes),
            "min_stop_shards": min_stop_shards}, seed=seed)
        result = submit(spec, jobs=jobs, backend=backend,
                        timeout_s=timeout_s, retries=retries,
                        progress=progress, tracer=self.tracer,
                        cache=self.cache,
                        resources={"campaign": self.campaign,
                                   "mega": self})
        return result.report

    def _run_impl(self, runs: int, seed: int = 1, jobs: int = 1,
                  backend: str = "auto", shards: Optional[int] = None,
                  shard_size: Optional[int] = None,
                  timeout_s: Optional[float] = None, retries: int = 0,
                  stop_ci: Optional[float] = None,
                  stop_outcomes: Tuple[str, ...] = FAILURE_OUTCOMES,
                  min_stop_shards: int = 2,
                  progress=None) -> MegaReport:
        """The sharded-execution body (see :meth:`run`)."""
        if shards is None and shard_size is None:
            shards = max(1, jobs or 1) * 4
        plan = plan_shards(runs, shards=shards, shard_size=shard_size)
        start = time.perf_counter()

        completed: Dict[int, ShardRecord] = {}
        if self.cache is not None:
            for spec in plan.specs:
                hit, record = self.cache.get(
                    "mega", self.shard_key(seed, spec),
                    ShardRecord.from_json)
                if hit and record.spec == spec:
                    # Copy before marking: the memory tier returns the
                    # stored object itself, which an earlier report may
                    # still reference — flagging it in place would
                    # rewrite that report's cached-shard accounting.
                    completed[spec.index] = replace(record, cached=True)

        stats = StreamingStats()
        folded: List[ShardRecord] = []
        early_stopped = False

        def on_computed(shard: ShardResult) -> ShardRecord:
            record = ShardRecord.from_shard_result(shard)
            if self.cache is not None:
                self.cache.put("mega",
                               self.shard_key(seed, record.spec),
                               record, ShardRecord.to_json)
            return record

        def consume(record: ShardRecord) -> bool:
            nonlocal early_stopped
            folded.append(record)
            stats.fold(record.counts, record.spec.count)
            if progress is not None:
                progress(len(folded), len(plan))
            if stop_ci is not None and stats.should_stop(
                    stop_ci, stop_outcomes, min_folds=min_stop_shards):
                early_stopped = len(folded) < len(plan)
                return True
            return False

        run_sharded(self.campaign._one_run, plan, seed=seed, jobs=jobs,
                    backend=backend, timeout_s=timeout_s,
                    retries=retries, fatal_types=(CampaignError,),
                    completed=completed, on_computed=on_computed,
                    consume=consume)

        wall_s = time.perf_counter() - start
        report = merge_shard_records(
            self.campaign.name, self.campaign.upsets_per_run, folded,
            backend=f"shard/{backend}", jobs=jobs, wall_s=wall_s)
        mega = MegaReport(report=report, runs_requested=runs, plan=plan,
                          shards=folded, stats=stats,
                          early_stopped=early_stopped, stop_ci=stop_ci,
                          stop_outcomes=tuple(stop_outcomes),
                          wall_s=wall_s)
        if self.tracer is not None:
            self._emit_telemetry(self.tracer, mega)
        return mega

    def _emit_telemetry(self, tracer: Tracer, mega: MegaReport) -> None:
        """Per-shard spans + outcome counters on a run-index timeline.

        Derived from the folded, index-ordered records — never from
        worker completion order — so the trace is byte-identical at any
        ``jobs``/backend (cache hit/miss state being equal).
        """
        runs_counter = tracer.counter("mega.runs", "mega")
        base = runs_counter.value
        runs_counter.add(mega.runs_executed)
        tracer.counter("mega.campaigns", "mega").add()
        tracer.counter("mega.shards", "mega").add(mega.shards_folded)
        tracer.counter("mega.shards.cached",
                       "mega").add(mega.shards_cached)
        tracer.counter("mega.shards.computed",
                       "mega").add(mega.shards_computed)
        for record in mega.shards:
            tracer.add_span(
                f"shard:{record.spec.index}", "mega",
                base + record.spec.start, base + record.spec.stop,
                campaign=self.campaign.name, cached=record.cached,
                retried_runs=record.retried_runs,
                counts={o: record.counts.get(o, 0)
                        for o in OUTCOMES if record.counts.get(o, 0)})
        for outcome in OUTCOMES:
            amount = mega.report.counts.get(outcome, 0)
            if amount:
                tracer.counter(f"mega.{outcome}", "mega").add(amount)
        low, high = mega.ci()
        tracer.gauge(f"mega.{self.campaign.name}.ci_half_width",
                     "mega").set(round(mega.ci_half_width, 9))
        if mega.early_stopped:
            tracer.counter("mega.early_stops", "mega").add()
            tracer.event("mega.early_stop", "mega",
                         at=base + mega.runs_executed,
                         campaign=self.campaign.name,
                         ci_low=round(low, 9), ci_high=round(high, 9))
        tracer.add_span(f"mega:{self.campaign.name}", "mega", base,
                        base + mega.runs_executed,
                        runs_requested=mega.runs_requested,
                        runs_executed=mega.runs_executed,
                        shards=mega.shards_folded,
                        early_stopped=mega.early_stopped)
