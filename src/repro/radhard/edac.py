"""Memory-integrity checking (EDAC region checksums).

The NG-ULTRA hardening includes "memory integrity checks which are
completely transparent to the application developer" (paper §I) and BL1
performs "management of integrity of deployed software" (paper §IV).
This module provides the integrity primitives both use: CRC32-protected
regions with periodic verification and a region table ("integrity map")
covering a memory space.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


class IntegrityError(Exception):
    pass


def crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def checksum_words(words: Sequence[int], width: int = 32) -> int:
    """CRC32 over a word sequence (little-endian byte serialization)."""
    stride = (width + 7) // 8
    raw = b"".join((w & ((1 << width) - 1)).to_bytes(stride, "little")
                   for w in words)
    return crc32(raw)


@dataclass
class Region:
    name: str
    base: int
    size: int               # words
    reference_crc: int = 0

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class IntegrityViolation:
    region: str
    expected_crc: int
    actual_crc: int


class IntegrityMap:
    """Region table with reference checksums over a backing memory.

    The backing memory is any object indexable by word address (a list,
    an :class:`~repro.radhard.ecc.EccMemory` facade, a SoC RAM model...).
    """

    def __init__(self, backing: Sequence[int]) -> None:
        self._backing = backing
        self.regions: Dict[str, Region] = {}

    def add_region(self, name: str, base: int, size: int) -> Region:
        if name in self.regions:
            raise IntegrityError(f"duplicate region {name!r}")
        if base < 0 or size <= 0 or base + size > len(self._backing):
            raise IntegrityError(f"region {name!r} outside memory")
        for other in self.regions.values():
            if base < other.end and other.base < base + size:
                raise IntegrityError(
                    f"region {name!r} overlaps {other.name!r}")
        region = Region(name=name, base=base, size=size)
        region.reference_crc = self._compute(region)
        self.regions[name] = region
        return region

    def _compute(self, region: Region) -> int:
        return checksum_words(
            [self._backing[a] for a in range(region.base, region.end)])

    def reseal(self, name: str) -> None:
        """Refresh the reference CRC after a legitimate update."""
        region = self._get(name)
        region.reference_crc = self._compute(region)

    def verify(self, name: Optional[str] = None) -> List[IntegrityViolation]:
        """Check one region (or all); returns the violations found."""
        regions = [self._get(name)] if name else list(self.regions.values())
        violations = []
        for region in regions:
            actual = self._compute(region)
            if actual != region.reference_crc:
                violations.append(IntegrityViolation(
                    region=region.name,
                    expected_crc=region.reference_crc,
                    actual_crc=actual))
        return violations

    def _get(self, name: str) -> Region:
        if name not in self.regions:
            raise IntegrityError(f"unknown region {name!r}")
        return self.regions[name]
