"""Canonical SEU campaign scenarios (paper §I mitigation matrix).

The unprotected-SRAM / ECC / TMR memory campaigns appear in the
qualification benchmark, the CLI ``seu`` subcommand and the determinism
tests; defining them once here keeps their outcome classification (and
therefore the golden tables) in a single place.

``beam_campaign`` additionally models the *fixture* side of a physical
test: every evaluation includes a dwell delay standing in for beam/tester
equipment latency, which is what makes real campaigns throughput-bound
and is exactly the regime the thread backend parallelizes.
"""

from __future__ import annotations

import time
from typing import List

from .campaign import Campaign
from .ecc import EccError, EccMemory
from .seu import EccMemoryTarget, SeuInjector, TmrMemoryTarget, \
    WordMemoryTarget
from .tmr import TmrMemory

DEFAULT_WORDS = 64


def golden_pattern(words: int = DEFAULT_WORDS) -> List[int]:
    """The reference memory image every scenario checks against."""
    return [i * 37 + 5 for i in range(words)]


def raw_sram_campaign(words: int = DEFAULT_WORDS) -> Campaign:
    """Unprotected SRAM: any upset in used state is silent corruption."""
    golden = golden_pattern(words)

    def setup():
        return list(golden)

    def inject(memory, rng):
        injector = SeuInjector(WordMemoryTarget(memory),
                               seed=rng.randrange(1 << 30))
        return injector.inject_random().description

    def evaluate(memory):
        return "masked" if memory == golden else "sdc"

    return Campaign("unprotected SRAM", setup, inject, evaluate,
                    scenario_params={"words": words})


def ecc_campaign(words: int = DEFAULT_WORDS, upsets: int = 1) -> Campaign:
    """SECDED-protected memory: corrects singles, detects doubles."""
    golden = golden_pattern(words)

    def setup():
        memory = EccMemory(words)
        for address, value in enumerate(golden):
            memory.write(address, value)
        return memory

    def inject(memory, rng):
        injector = SeuInjector(EccMemoryTarget(memory),
                               seed=rng.randrange(1 << 30))
        return injector.inject_burst(upsets)[-1].description

    def evaluate(memory):
        try:
            values = [memory.read(a) for a in range(words)]
        except EccError:
            return "detected"
        if values != golden:
            return "sdc"
        return "corrected" if memory.stats.corrected else "masked"

    name = f"ECC SECDED ({upsets} upset{'s' if upsets > 1 else ''})"
    return Campaign(name, setup, inject, evaluate, upsets_per_run=1,
                    scenario_params={"words": words, "upsets": upsets})


def tmr_campaign(words: int = DEFAULT_WORDS) -> Campaign:
    """Triplicated memory: single upsets always outvoted."""
    golden = golden_pattern(words)

    def setup():
        memory = TmrMemory(words)
        memory.load(golden)
        return memory

    def inject(memory, rng):
        injector = SeuInjector(TmrMemoryTarget(memory),
                               seed=rng.randrange(1 << 30))
        return injector.inject_random().description

    def evaluate(memory):
        values = [memory.read(a) for a in range(words)]
        if values != golden:
            return "sdc"
        return "corrected" if memory.stats.corrected_votes else "masked"

    return Campaign("TMR memory", setup, inject, evaluate,
                    scenario_params={"words": words})


def beam_campaign(words: int = DEFAULT_WORDS,
                  dwell_s: float = 0.001) -> Campaign:
    """ECC campaign with per-run fixture dwell (beam/tester latency).

    The dwell sleep releases the GIL, so this scenario scales with the
    thread backend even on a single core — the same way a real campaign
    limited by equipment turnaround does.
    """
    base = ecc_campaign(words)

    def evaluate(memory):
        time.sleep(dwell_s)
        return base.evaluate(memory)

    return Campaign(f"beam fixture (dwell {dwell_s * 1e3:.1f}ms)",
                    base.setup, base.inject, evaluate,
                    scenario_params={"words": words, "dwell_s": dwell_s})


def memory_scenarios(words: int = DEFAULT_WORDS) -> List[Campaign]:
    """The §I mitigation matrix: raw vs ECC vs TMR."""
    return [raw_sram_campaign(words), ecc_campaign(words),
            tmr_campaign(words)]


#: Scenario factory ids accepted by the ``seu``/``mega`` job kinds —
#: how a service client (which cannot ship campaign closures over the
#: wire) names a campaign in ``JobSpec.params["scenario"]``.
SCENARIO_FACTORIES = {
    "raw-sram": raw_sram_campaign,
    "ecc": ecc_campaign,
    "tmr": tmr_campaign,
    "beam": beam_campaign,
}


def build_scenario(name: str, **params) -> Campaign:
    """Instantiate a canonical campaign from its factory id.

    ``params`` are the factory's keyword arguments (``words``,
    ``upsets``, ``dwell_s``...).  Unknown ids raise ``KeyError`` with
    the known choices, which the job API surfaces as a spec error.
    """
    factory = SCENARIO_FACTORIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(known: {', '.join(sorted(SCENARIO_FACTORIES))})")
    return factory(**params)
