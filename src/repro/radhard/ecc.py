"""SECDED (single-error-correct, double-error-detect) Hamming coding.

The NG-ULTRA embedded memories carry "error correction mechanisms ...
completely transparent to the application developer" (paper §I).  This
module implements the classic Hamming(k + p + 1) SECDED code used by such
memories, plus an ECC-protected memory model with scrubbing support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class EccError(Exception):
    pass


def _parity_bit_count(data_bits: int) -> int:
    p = 0
    while (1 << p) < data_bits + p + 1:
        p += 1
    return p


def encode(value: int, data_bits: int = 32) -> int:
    """Encode ``value`` into a SECDED codeword.

    Layout: Hamming positions 1..n with parity bits at powers of two, plus
    an overall parity bit at position 0 for double-error detection.
    """
    if not 0 <= value < (1 << data_bits):
        raise EccError(f"value out of range for {data_bits} data bits")
    p = _parity_bit_count(data_bits)
    n = data_bits + p
    # Place data bits in non-power-of-two positions 1..n.
    word = [0] * (n + 1)  # index 0 unused by Hamming (overall parity later)
    data_index = 0
    for pos in range(1, n + 1):
        if pos & (pos - 1):  # not a power of two
            word[pos] = (value >> data_index) & 1
            data_index += 1
    # Compute parity bits.
    for i in range(p):
        mask = 1 << i
        parity = 0
        for pos in range(1, n + 1):
            if pos & mask:
                parity ^= word[pos]
        word[mask] = parity
    overall = 0
    for pos in range(1, n + 1):
        overall ^= word[pos]
    # Codeword: bit 0 = overall parity, bits 1..n = Hamming word.
    code = overall
    for pos in range(1, n + 1):
        code |= word[pos] << pos
    return code


def codeword_bits(data_bits: int = 32) -> int:
    return data_bits + _parity_bit_count(data_bits) + 1


@dataclass
class DecodeResult:
    value: int
    corrected: bool = False
    double_error: bool = False
    corrected_position: Optional[int] = None


def decode(code: int, data_bits: int = 32) -> DecodeResult:
    """Decode a SECDED codeword, correcting single-bit errors."""
    p = _parity_bit_count(data_bits)
    n = data_bits + p
    word = [(code >> pos) & 1 for pos in range(n + 1)]
    syndrome = 0
    for i in range(p):
        mask = 1 << i
        parity = 0
        for pos in range(1, n + 1):
            if pos & mask:
                parity ^= word[pos]
        if parity:
            syndrome |= mask
    overall = 0
    for pos in range(0, n + 1):
        overall ^= word[pos]
    corrected = False
    double_error = False
    corrected_position: Optional[int] = None
    if syndrome and overall:
        # Single error at `syndrome` (could be a parity bit itself).
        if syndrome <= n:
            word[syndrome] ^= 1
        corrected = True
        corrected_position = syndrome
    elif syndrome and not overall:
        double_error = True
    elif not syndrome and overall:
        # The overall parity bit itself flipped.
        corrected = True
        corrected_position = 0
    value = 0
    data_index = 0
    for pos in range(1, n + 1):
        if pos & (pos - 1):
            value |= word[pos] << data_index
            data_index += 1
    return DecodeResult(value=value, corrected=corrected,
                        double_error=double_error,
                        corrected_position=corrected_position)


@dataclass
class EccStats:
    reads: int = 0
    writes: int = 0
    corrected: int = 0
    uncorrectable: int = 0
    scrub_corrections: int = 0


class EccMemory:
    """A word-addressable memory protected by SECDED ECC.

    ``read`` transparently corrects single-bit upsets (and counts them);
    double-bit upsets raise :class:`EccError` unless ``silent`` is set.
    ``scrub`` walks the array rewriting corrected codewords — the standard
    defence against error accumulation between reads.
    """

    def __init__(self, size_words: int, data_bits: int = 32) -> None:
        self.size = size_words
        self.data_bits = data_bits
        self._codes: List[int] = [encode(0, data_bits)] * size_words
        self.stats = EccStats()

    def write(self, address: int, value: int) -> None:
        self._check(address)
        mask = (1 << self.data_bits) - 1
        self._codes[address] = encode(value & mask, self.data_bits)
        self.stats.writes += 1

    def read(self, address: int, silent: bool = False) -> int:
        self._check(address)
        result = decode(self._codes[address], self.data_bits)
        self.stats.reads += 1
        if result.double_error:
            self.stats.uncorrectable += 1
            if not silent:
                raise EccError(f"uncorrectable double-bit error at "
                               f"address {address}")
            return result.value
        if result.corrected:
            self.stats.corrected += 1
            self._codes[address] = encode(result.value, self.data_bits)
        return result.value

    def inject_bit_flip(self, address: int, bit: int) -> None:
        """SEU injection into the raw codeword (data or parity bit)."""
        self._check(address)
        if not 0 <= bit < codeword_bits(self.data_bits):
            raise EccError(f"bit {bit} outside codeword")
        self._codes[address] ^= (1 << bit)

    def scrub(self) -> int:
        """Correct latent single-bit errors across the whole array."""
        fixed = 0
        for address in range(self.size):
            result = decode(self._codes[address], self.data_bits)
            if result.corrected and not result.double_error:
                self._codes[address] = encode(result.value, self.data_bits)
                fixed += 1
        self.stats.scrub_corrections += fixed
        return fixed

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise EccError(f"address {address} out of range")
