"""Radiation-hardening substrates: ECC, TMR, integrity checks, SEU
injection and qualification campaigns (paper §I hardening claims)."""

from .campaign import (
    Campaign,
    CampaignError,
    CampaignReport,
    CrossSection,
    InjectionResult,
    OUTCOMES,
    classify_result,
)
from .mitigation import (
    KNOWN_SCHEMES,
    MITIGATING_SCHEMES,
    mitigates_seu,
)
from .mega import (
    FAILURE_OUTCOMES,
    MegaCampaign,
    MegaReport,
    ShardRecord,
    merge_shard_records,
)
from .ecc import (
    DecodeResult,
    EccError,
    EccMemory,
    EccStats,
    codeword_bits,
    decode,
    encode,
)
from .edac import (
    IntegrityError,
    IntegrityMap,
    IntegrityViolation,
    Region,
    checksum_words,
    crc32,
)
from .scenarios import (
    beam_campaign,
    ecc_campaign,
    golden_pattern,
    memory_scenarios,
    raw_sram_campaign,
    tmr_campaign,
)
from .seu import (
    BitstreamTarget,
    EccMemoryTarget,
    SeuInjector,
    TmrMemoryTarget,
    Upset,
    WordMemoryTarget,
)
from .tmr import (
    TmrError,
    TmrMemory,
    TmrRegister,
    TmrStats,
    VoteResult,
    vote_bitwise,
    vote_words,
)

__all__ = [
    "Campaign", "CampaignError", "CampaignReport", "CrossSection",
    "InjectionResult", "OUTCOMES", "classify_result",
    "FAILURE_OUTCOMES", "MegaCampaign", "MegaReport", "ShardRecord",
    "merge_shard_records",
    "KNOWN_SCHEMES", "MITIGATING_SCHEMES", "mitigates_seu",
    "DecodeResult", "EccError", "EccMemory", "EccStats", "codeword_bits",
    "decode", "encode",
    "IntegrityError", "IntegrityMap", "IntegrityViolation", "Region",
    "checksum_words", "crc32",
    "beam_campaign", "ecc_campaign", "golden_pattern", "memory_scenarios",
    "raw_sram_campaign", "tmr_campaign",
    "BitstreamTarget", "EccMemoryTarget", "SeuInjector", "TmrMemoryTarget",
    "Upset", "WordMemoryTarget",
    "TmrError", "TmrMemory", "TmrRegister", "TmrStats", "VoteResult",
    "vote_bitwise", "vote_words",
]
