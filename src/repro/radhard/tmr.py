"""Triple modular redundancy (TMR).

NG-ULTRA provides TMR "completely transparent to the application
developer" (paper §I) and BL1 manages "basic redundancy for software
components stored in Flash (either through TMR or through sequential
accesses to multiple hardware Flash components)" (paper §IV).  This module
provides both granularities:

* :func:`vote_words` / :func:`vote_bitwise` — majority voting over three
  copies (module-level and bit-level);
* :class:`TmrRegister` / :class:`TmrMemory` — stateful triplicated storage
  with upset injection and voting statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class TmrError(Exception):
    pass


@dataclass
class VoteResult:
    value: int
    unanimous: bool
    dissenting_copy: Optional[int] = None   # index of the outvoted copy


def vote_words(a: int, b: int, c: int) -> VoteResult:
    """Module-level majority vote: the value held by >= 2 copies wins."""
    if a == b == c:
        return VoteResult(a, unanimous=True)
    if a == b:
        return VoteResult(a, unanimous=False, dissenting_copy=2)
    if a == c:
        return VoteResult(a, unanimous=False, dissenting_copy=1)
    if b == c:
        return VoteResult(b, unanimous=False, dissenting_copy=0)
    # Three-way disagreement: fall back to bitwise voting.
    return VoteResult(vote_bitwise(a, b, c), unanimous=False,
                      dissenting_copy=None)


def vote_bitwise(a: int, b: int, c: int) -> int:
    """Bit-level majority: survives different single-bit flips per copy."""
    return (a & b) | (a & c) | (b & c)


@dataclass
class TmrStats:
    reads: int = 0
    writes: int = 0
    corrected_votes: int = 0
    three_way_disagreements: int = 0


class TmrRegister:
    """One triplicated register with voting reads and self-repair."""

    def __init__(self, value: int = 0, width: int = 32) -> None:
        self.width = width
        self._mask = (1 << width) - 1
        self._copies = [value & self._mask] * 3
        self.stats = TmrStats()

    def write(self, value: int) -> None:
        value &= self._mask
        self._copies = [value] * 3
        self.stats.writes += 1

    def read(self, repair: bool = True) -> int:
        self.stats.reads += 1
        result = vote_words(*self._copies)
        if not result.unanimous:
            self.stats.corrected_votes += 1
            if result.dissenting_copy is None:
                self.stats.three_way_disagreements += 1
            if repair:
                self._copies = [result.value] * 3
        return result.value

    def inject(self, copy_index: int, bit: int) -> None:
        if not 0 <= copy_index < 3:
            raise TmrError("copy index must be 0..2")
        if not 0 <= bit < self.width:
            raise TmrError(f"bit {bit} outside register width")
        self._copies[copy_index] ^= (1 << bit)

    @property
    def copies(self) -> Tuple[int, int, int]:
        return tuple(self._copies)


class TmrMemory:
    """Word-addressable triplicated memory (flash-redundancy model)."""

    def __init__(self, size_words: int, width: int = 32) -> None:
        self.size = size_words
        self.width = width
        self._mask = (1 << width) - 1
        self._banks: List[List[int]] = [[0] * size_words for _ in range(3)]
        self.stats = TmrStats()

    def write(self, address: int, value: int) -> None:
        self._check(address)
        value &= self._mask
        for bank in self._banks:
            bank[address] = value
        self.stats.writes += 1

    def read(self, address: int, repair: bool = True) -> int:
        self._check(address)
        self.stats.reads += 1
        result = vote_words(self._banks[0][address],
                            self._banks[1][address],
                            self._banks[2][address])
        if not result.unanimous:
            self.stats.corrected_votes += 1
            if result.dissenting_copy is None:
                self.stats.three_way_disagreements += 1
            if repair:
                for bank in self._banks:
                    bank[address] = result.value
        return result.value

    def load(self, data: Sequence[int]) -> None:
        if len(data) > self.size:
            raise TmrError("data larger than memory")
        for address, value in enumerate(data):
            self.write(address, value)

    def inject(self, bank: int, address: int, bit: int) -> None:
        self._check(address)
        if not 0 <= bank < 3:
            raise TmrError("bank must be 0..2")
        if not 0 <= bit < self.width:
            raise TmrError(f"bit {bit} outside word width")
        self._banks[bank][address] ^= (1 << bit)

    def scrub(self) -> int:
        """Re-vote every word, repairing divergent copies."""
        fixed = 0
        for address in range(self.size):
            values = [bank[address] for bank in self._banks]
            result = vote_words(*values)
            if not all(v == result.value for v in values):
                for bank in self._banks:
                    bank[address] = result.value
                fixed += 1
        return fixed

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise TmrError(f"address {address} out of range")
