"""SEU mitigation scheme metadata.

The HLS front end tags :class:`~repro.hls.ir.values.MemObject` instances
with a ``protection`` scheme (``#pragma HLS protect``); the dataflow
SEU-taint domain asks this module which schemes actually mitigate single
event upsets.  Keeping the authority here ties the static-analysis layer
to the same vocabulary the injection campaigns use (ECC memories, TMR
memories/registers).
"""

from __future__ import annotations

# Schemes the radhard substrates implement and the SEU campaigns credit
# as mitigating single-bit upsets.
MITIGATING_SCHEMES = frozenset({"ecc", "secded", "tmr"})

# Every scheme name the ``protect`` pragma accepts.
KNOWN_SCHEMES = MITIGATING_SCHEMES | {"none"}


def mitigates_seu(scheme: str) -> bool:
    """True when ``scheme`` names an SEU-mitigating protection."""
    return str(scheme).strip().lower() in MITIGATING_SCHEMES
