"""Single-event-upset injection.

Radiation qualification to TRL 6 (paper abstract) observes how upsets in
configuration memory and user memories propagate to system behaviour.
The injector abstracts over targets (bitstreams, ECC/TMR memories, plain
word memories) so the campaign runner can treat them uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Protocol


class SeuTarget(Protocol):
    """Anything the injector can flip bits in."""

    def bit_count(self) -> int: ...
    def flip(self, bit_index: int) -> None: ...
    def describe(self, bit_index: int) -> str: ...


@dataclass
class Upset:
    bit_index: int
    description: str


class BitstreamTarget:
    """Adapter: configuration memory of a placed design."""

    def __init__(self, bitstream) -> None:
        self.bitstream = bitstream

    def bit_count(self) -> int:
        return self.bitstream.total_bits

    def flip(self, bit_index: int) -> None:
        self.bitstream.flip_bit(bit_index)

    def describe(self, bit_index: int) -> str:
        kind = "essential" if self.bitstream.is_essential(bit_index) \
            else "unused"
        return f"config[{bit_index}] ({kind})"


class WordMemoryTarget:
    """Adapter: a plain word-addressable memory (list-like)."""

    def __init__(self, memory: List[int], width: int = 32,
                 label: str = "ram") -> None:
        self.memory = memory
        self.width = width
        self.label = label

    def bit_count(self) -> int:
        return len(self.memory) * self.width

    def flip(self, bit_index: int) -> None:
        address, bit = divmod(bit_index, self.width)
        self.memory[address] ^= (1 << bit)

    def describe(self, bit_index: int) -> str:
        address, bit = divmod(bit_index, self.width)
        return f"{self.label}[{address}] bit {bit}"


class EccMemoryTarget:
    """Adapter: SECDED-protected memory (flips raw codeword bits)."""

    def __init__(self, memory) -> None:
        from .ecc import codeword_bits
        self.memory = memory
        self._code_bits = codeword_bits(memory.data_bits)

    def bit_count(self) -> int:
        return self.memory.size * self._code_bits

    def flip(self, bit_index: int) -> None:
        address, bit = divmod(bit_index, self._code_bits)
        self.memory.inject_bit_flip(address, bit)

    def describe(self, bit_index: int) -> str:
        address, bit = divmod(bit_index, self._code_bits)
        return f"ecc[{address}] code bit {bit}"


class TmrMemoryTarget:
    """Adapter: triplicated memory (flips one copy's bit)."""

    def __init__(self, memory) -> None:
        self.memory = memory

    def bit_count(self) -> int:
        return 3 * self.memory.size * self.memory.width

    def flip(self, bit_index: int) -> None:
        bank, rest = divmod(bit_index, self.memory.size * self.memory.width)
        address, bit = divmod(rest, self.memory.width)
        self.memory.inject(bank, address, bit)

    def describe(self, bit_index: int) -> str:
        bank, rest = divmod(bit_index, self.memory.size * self.memory.width)
        address, bit = divmod(rest, self.memory.width)
        return f"tmr bank {bank} [{address}] bit {bit}"


class SeuInjector:
    """Uniform random upset generator over a target (seeded)."""

    def __init__(self, target: SeuTarget, seed: int = 1) -> None:
        self.target = target
        self.rng = random.Random(seed)
        self.history: List[Upset] = []

    def inject_random(self) -> Upset:
        bit = self.rng.randrange(self.target.bit_count())
        return self.inject_at(bit)

    def inject_at(self, bit_index: int) -> Upset:
        self.target.flip(bit_index)
        upset = Upset(bit_index=bit_index,
                      description=self.target.describe(bit_index))
        self.history.append(upset)
        return upset

    def inject_burst(self, count: int) -> List[Upset]:
        """Multiple-cell upset: ``count`` distinct random flips."""
        bits = self.rng.sample(range(self.target.bit_count()),
                               min(count, self.target.bit_count()))
        return [self.inject_at(b) for b in bits]
