"""Software-defined-radio use cases (paper §V "software-defined
algorithms"): FIR filtering, fixed-point FFT and a DSSS correlator."""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

FIR_C = """
// 8-tap FIR filter, Q15-ish integer taps baked into a ROM.
void fir8(const int *x, int *y, int n) {
  const int taps[8] = {-12, 45, 210, 412, 412, 210, 45, -12};
  for (int i = 7; i < n; i++) {
    int acc = 0;
    for (int t = 0; t < 8; t++) {
      acc += x[i - t] * taps[t];
    }
    y[i] = acc >> 10;
  }
}
"""

FFT16_C = """
// 16-point radix-2 DIT FFT, Q12 fixed point, twiddles in ROM.
#define N 16
void fft16(int *re, int *im) {
  const int tw_re[8] = {4096, 3784, 2896, 1567, 0, -1567, -2896, -3784};
  const int tw_im[8] = {0, -1567, -2896, -3784, -4096, -3784, -2896, -1567};
  // Bit-reversal permutation.
  const int rev[16] = {0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15};
  for (int i = 0; i < N; i++) {
    int j = rev[i];
    if (j > i) {
      int tr = re[i]; re[i] = re[j]; re[j] = tr;
      int ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
  }
  for (int len = 2; len <= N; len = len * 2) {
    int half = len / 2;
    int step = N / len;
    for (int base = 0; base < N; base += len) {
      for (int k = 0; k < half; k++) {
        int wr = tw_re[k * step];
        int wi = tw_im[k * step];
        int ar = re[base + k];
        int ai = im[base + k];
        int br = re[base + k + half];
        int bi = im[base + k + half];
        int tr = (br * wr - bi * wi) >> 12;
        int ti = (br * wi + bi * wr) >> 12;
        re[base + k] = ar + tr;
        im[base + k] = ai + ti;
        re[base + k + half] = ar - tr;
        im[base + k + half] = ai - ti;
      }
    }
  }
}
"""

DSSS_CORRELATE_C = """
// Direct-sequence spread spectrum correlator: slides a +/-1 PN code over
// the input and reports the lag with the highest correlation.
int dsss_correlate(const int *rx, int n, const int *code, int code_len) {
  int best_lag = 0;
  int best_value = -2147483647;
  for (int lag = 0; lag + code_len <= n; lag++) {
    int acc = 0;
    for (int i = 0; i < code_len; i++) {
      acc += rx[lag + i] * code[i];
    }
    if (acc > best_value) {
      best_value = acc;
      best_lag = lag;
    }
  }
  return best_lag;
}
"""

FIR_TAPS = [-12, 45, 210, 412, 412, 210, 45, -12]


def fir8_reference(x: np.ndarray) -> np.ndarray:
    """Golden model of ``FIR_C``."""
    out = np.zeros_like(x, dtype=np.int64)
    taps = FIR_TAPS
    for i in range(7, len(x)):
        acc = sum(int(x[i - t]) * taps[t] for t in range(8))
        out[i] = acc >> 10
    return out


def fft16_reference(re: List[int], im: List[int]) -> Tuple[List[int], List[int]]:
    """Bit-exact Python model of the Q12 ``FFT16_C`` kernel."""
    n = 16
    tw_re = [4096, 3784, 2896, 1567, 0, -1567, -2896, -3784]
    tw_im = [0, -1567, -2896, -3784, -4096, -3784, -2896, -1567]
    rev = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15]
    re = list(re)
    im = list(im)
    for i in range(n):
        j = rev[i]
        if j > i:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
    length = 2
    while length <= n:
        half = length // 2
        step = n // length
        for base in range(0, n, length):
            for k in range(half):
                wr, wi = tw_re[k * step], tw_im[k * step]
                ar, ai = re[base + k], im[base + k]
                br, bi = re[base + k + half], im[base + k + half]
                tr = (br * wr - bi * wi) >> 12
                ti = (br * wi + bi * wr) >> 12
                re[base + k] = ar + tr
                im[base + k] = ai + ti
                re[base + k + half] = ar - tr
                im[base + k + half] = ai - ti
        length *= 2
    return re, im


def pn_code(length: int = 15, seed: int = 0b1001) -> List[int]:
    """Maximal-length LFSR sequence mapped to +/-1 chips."""
    state = seed & 0xF or 0b1001
    chips = []
    for _ in range(length):
        bit = state & 1
        chips.append(1 if bit else -1)
        feedback = ((state >> 0) ^ (state >> 1)) & 1
        state = (state >> 1) | (feedback << 3)
    return chips


def dsss_signal(code: List[int], delay: int, total: int,
                noise_amp: int = 2, seed: int = 3) -> np.ndarray:
    """A received signal: the PN code at ``delay`` buried in noise."""
    rng = np.random.default_rng(seed)
    signal = rng.integers(-noise_amp, noise_amp + 1, size=total)
    for i, chip in enumerate(code):
        signal[delay + i] += chip * 8
    return signal.astype(np.int64)


def dsss_correlate_reference(rx: np.ndarray, code: List[int]) -> int:
    best_lag, best_value = 0, None
    for lag in range(len(rx) - len(code) + 1):
        acc = int(sum(int(rx[lag + i]) * code[i] for i in range(len(code))))
        if best_value is None or acc > best_value:
            best_value = acc
            best_lag = lag
    return best_lag


def tone(frequency_bin: int, n: int = 16, amplitude: int = 1000) -> Tuple[List[int], List[int]]:
    """A Q12 complex tone hitting one FFT bin exactly."""
    re = [int(amplitude * math.cos(2 * math.pi * frequency_bin * i / n))
          for i in range(n)]
    im = [int(amplitude * math.sin(2 * math.pi * frequency_bin * i / n))
          for i in range(n)]
    return re, im


def dominant_bin(re: List[int], im: List[int]) -> int:
    power = [r * r + i * i for r, i in zip(re, im)]
    return int(np.argmax(power))
