"""Artificial-intelligence use case: quantized MLP inference.

Paper §V lists AI applications among the HLS use cases, and §II describes
the dataflow extension for ML apps with coarse-grained parallelism.  The
model here is an integer-quantized two-layer MLP; it exists as

* a monolithic HermesC kernel (classic single-FSM synthesis),
* a task-split HermesC module marked ``#pragma HLS dataflow`` (the
  dynamically controlled accelerator path, ref [14]),
* a NumPy reference for verification and accuracy checks.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

# Network geometry: 8 inputs -> 12 hidden (ReLU) -> 4 outputs (argmax).
N_IN = 8
N_HIDDEN = 12
N_OUT = 4
SHIFT = 6   # post-accumulation right shift (quantization rescale)


def make_weights(seed: int = 42) -> Tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray]:
    """Deterministic int8 weights/biases for the reference network."""
    rng = np.random.default_rng(seed)
    w1 = rng.integers(-64, 64, size=(N_HIDDEN, N_IN))
    b1 = rng.integers(-32, 32, size=N_HIDDEN)
    w2 = rng.integers(-64, 64, size=(N_OUT, N_HIDDEN))
    b2 = rng.integers(-32, 32, size=N_OUT)
    return w1, b1, w2, b2


def _array_literal(values) -> str:
    return "{" + ", ".join(str(int(v)) for v in np.asarray(values).flatten()) + "}"


def mlp_monolithic_source(seed: int = 42) -> str:
    """Single-function MLP kernel with weights baked into ROMs."""
    w1, b1, w2, b2 = make_weights(seed)
    return f"""
// Quantized MLP inference ({N_IN}-{N_HIDDEN}-{N_OUT}), monolithic form.
int mlp(const int *x) {{
  const int w1[{N_HIDDEN * N_IN}] = {_array_literal(w1)};
  const int b1[{N_HIDDEN}] = {_array_literal(b1)};
  const int w2[{N_OUT * N_HIDDEN}] = {_array_literal(w2)};
  const int b2[{N_OUT}] = {_array_literal(b2)};
  int hidden[{N_HIDDEN}];
  for (int j = 0; j < {N_HIDDEN}; j++) {{
    int acc = b1[j];
    for (int i = 0; i < {N_IN}; i++) {{
      acc += w1[j * {N_IN} + i] * x[i];
    }}
    acc = acc >> {SHIFT};
    hidden[j] = max(acc, 0);
  }}
  int best = -2147483647;
  int best_index = 0;
  for (int k = 0; k < {N_OUT}; k++) {{
    int acc = b2[k];
    for (int j = 0; j < {N_HIDDEN}; j++) {{
      acc += w2[k * {N_HIDDEN} + j] * hidden[j];
    }}
    acc = acc >> {SHIFT};
    if (acc > best) {{
      best = acc;
      best_index = k;
    }}
  }}
  return best_index;
}}
"""


def mlp_dataflow_source(seed: int = 42) -> str:
    """Task-split MLP: one task per layer, dataflow top function."""
    w1, b1, w2, b2 = make_weights(seed)
    return f"""
// Quantized MLP as a coarse-grained task pipeline (paper §II, ref [14]).
void layer1(const int *x, int *hidden) {{
  const int w1[{N_HIDDEN * N_IN}] = {_array_literal(w1)};
  const int b1[{N_HIDDEN}] = {_array_literal(b1)};
  for (int j = 0; j < {N_HIDDEN}; j++) {{
    int acc = b1[j];
    for (int i = 0; i < {N_IN}; i++) {{
      acc += w1[j * {N_IN} + i] * x[i];
    }}
    hidden[j] = acc >> {SHIFT};
  }}
}}
void relu(const int *hidden, int *activated) {{
  for (int j = 0; j < {N_HIDDEN}; j++) {{
    activated[j] = max(hidden[j], 0);
  }}
}}
void layer2(const int *activated, int *scores) {{
  const int w2[{N_OUT * N_HIDDEN}] = {_array_literal(w2)};
  const int b2[{N_OUT}] = {_array_literal(b2)};
  for (int k = 0; k < {N_OUT}; k++) {{
    int acc = b2[k];
    for (int j = 0; j < {N_HIDDEN}; j++) {{
      acc += w2[k * {N_HIDDEN} + j] * activated[j];
    }}
    scores[k] = acc >> {SHIFT};
  }}
}}
void argmax4(const int *scores, int *result) {{
  int best = -2147483647;
  int best_index = 0;
  for (int k = 0; k < {N_OUT}; k++) {{
    if (scores[k] > best) {{
      best = scores[k];
      best_index = k;
    }}
  }}
  result[0] = best_index;
}}
#pragma HLS dataflow
void mlp_pipeline(const int *x, int *result) {{
  int hidden[{N_HIDDEN}];
  int activated[{N_HIDDEN}];
  int scores[{N_OUT}];
  layer1(x, hidden);
  relu(hidden, activated);
  layer2(activated, scores);
  argmax4(scores, result);
}}
"""


def mlp_reference(x, seed: int = 42) -> int:
    """Bit-exact golden model of both C variants."""
    w1, b1, w2, b2 = make_weights(seed)
    x = np.asarray(x, dtype=np.int64)
    hidden = (w1 @ x + b1) >> SHIFT
    hidden = np.maximum(hidden, 0)
    scores = (w2 @ hidden + b2) >> SHIFT
    return int(np.argmax(scores))


def mlp_scores_reference(x, seed: int = 42) -> np.ndarray:
    w1, b1, w2, b2 = make_weights(seed)
    x = np.asarray(x, dtype=np.int64)
    hidden = np.maximum((w1 @ x + b1) >> SHIFT, 0)
    return (w2 @ hidden + b2) >> SHIFT


def sample_inputs(count: int = 16, seed: int = 7) -> List[List[int]]:
    """Deterministic int8 input vectors."""
    rng = np.random.default_rng(seed)
    return [list(map(int, rng.integers(-128, 128, size=N_IN)))
            for _ in range(count)]
