"""Attitude and Orbit Control System (AOCS) — paper §V use case.

A representative spacecraft attitude-control loop: rigid-body dynamics
with reaction wheels, quaternion kinematics and a quaternion-feedback PD
controller.  Deterministic, laptop-scale, and convergent — the partition
workload of the XtratuM use case is built on top of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


def quat_normalize(q: np.ndarray) -> np.ndarray:
    return q / np.linalg.norm(q)


def quat_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    w1, x1, y1, z1 = a
    w2, x2, y2, z2 = b
    return np.array([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ])


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_error(current: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Error quaternion rotating ``current`` onto ``target``."""
    return quat_multiply(quat_conjugate(current), target)


def quat_from_axis_angle(axis, angle_rad: float) -> np.ndarray:
    axis = np.asarray(axis, dtype=float)
    axis = axis / np.linalg.norm(axis)
    half = angle_rad / 2
    return np.concatenate(([math.cos(half)], axis * math.sin(half)))


@dataclass
class ReactionWheels:
    """Three orthogonal wheels with torque and momentum saturation."""

    max_torque_nm: float = 0.05
    max_momentum_nms: float = 2.0
    momentum: np.ndarray = field(
        default_factory=lambda: np.zeros(3))

    def apply(self, torque_cmd: np.ndarray, dt: float) -> np.ndarray:
        """Clamp the command; returns the torque actually produced."""
        torque = np.clip(torque_cmd, -self.max_torque_nm,
                         self.max_torque_nm)
        new_momentum = self.momentum + torque * dt
        # Wheels saturated along an axis produce no further torque there.
        for axis in range(3):
            if abs(new_momentum[axis]) > self.max_momentum_nms:
                limited = (math.copysign(self.max_momentum_nms,
                                         new_momentum[axis])
                           - self.momentum[axis]) / dt
                torque[axis] = limited
                new_momentum[axis] = math.copysign(self.max_momentum_nms,
                                                   new_momentum[axis])
        self.momentum = new_momentum
        return torque

    @property
    def saturated_axes(self) -> List[int]:
        return [axis for axis in range(3)
                if abs(self.momentum[axis]) >= self.max_momentum_nms - 1e-9]


@dataclass
class PdController:
    """Quaternion-feedback PD attitude controller."""

    kp: float = 0.08
    kd: float = 0.4

    def torque(self, q_error: np.ndarray,
               body_rate: np.ndarray) -> np.ndarray:
        # Vector part of the error quaternion drives the proportional term
        # (sign-corrected for the shortest rotation).
        sign = 1.0 if q_error[0] >= 0 else -1.0
        return self.kp * sign * q_error[1:4] - self.kd * body_rate


@dataclass
class AocsState:
    attitude: np.ndarray = field(
        default_factory=lambda: np.array([1.0, 0.0, 0.0, 0.0]))
    body_rate: np.ndarray = field(default_factory=lambda: np.zeros(3))


class AocsLoop:
    """The closed control loop: dynamics + wheels + controller."""

    def __init__(self, inertia=(10.0, 12.0, 8.0),
                 controller: Optional[PdController] = None,
                 wheels: Optional[ReactionWheels] = None) -> None:
        self.inertia = np.asarray(inertia, dtype=float)
        self.controller = controller or PdController()
        self.wheels = wheels or ReactionWheels()
        self.state = AocsState()
        self.target = np.array([1.0, 0.0, 0.0, 0.0])
        self.steps = 0

    def set_target(self, q_target) -> None:
        self.target = quat_normalize(np.asarray(q_target, dtype=float))

    def pointing_error_rad(self) -> float:
        q_err = quat_error(self.state.attitude, self.target)
        w = min(1.0, abs(float(q_err[0])))
        return 2.0 * math.acos(w)

    def step(self, dt: float = 0.1,
             disturbance: Optional[np.ndarray] = None) -> float:
        """One control cycle; returns the pointing error after the step."""
        state = self.state
        q_err = quat_error(state.attitude, self.target)
        commanded = self.controller.torque(q_err, state.body_rate)
        applied = self.wheels.apply(commanded, dt)
        total = applied + (disturbance if disturbance is not None
                           else np.zeros(3))
        # Euler rigid-body integration (diagonal inertia).
        rate_dot = total / self.inertia
        state.body_rate = state.body_rate + rate_dot * dt
        # Quaternion kinematics.
        omega = np.concatenate(([0.0], state.body_rate))
        q_dot = 0.5 * quat_multiply(state.attitude, omega)
        state.attitude = quat_normalize(state.attitude + q_dot * dt)
        self.steps += 1
        return self.pointing_error_rad()

    def run_to_convergence(self, tolerance_rad: float = 0.01,
                           dt: float = 0.1,
                           max_steps: int = 20_000) -> int:
        """Steps until the pointing error settles; returns the count."""
        for count in range(1, max_steps + 1):
            error = self.step(dt)
            if error < tolerance_rad and \
                    float(np.linalg.norm(self.state.body_rate)) < 0.005:
                return count
        return max_steps
