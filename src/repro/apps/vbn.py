"""Visual-Based Navigation (VBN) image processing — paper §V use case.

Simulates the relative-navigation camera pipeline of a rendezvous
scenario: a synthetic target rendered at a known offset/scale, a
corner-feature detector (Harris-like response on integer arithmetic) and
a centroid/scale estimator recovering the relative position.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class CameraFrame:
    pixels: np.ndarray          # (h, w) int intensities 0..255
    true_offset: Tuple[float, float]
    true_scale: float


def render_target(width: int = 64, height: int = 64,
                  offset: Tuple[float, float] = (0.0, 0.0),
                  scale: float = 1.0, noise: int = 4,
                  seed: int = 1) -> CameraFrame:
    """Render a bright square marker with corner features."""
    rng = np.random.default_rng(seed)
    frame = rng.integers(0, noise + 1, size=(height, width)).astype(float)
    half = 8 * scale
    cx = width / 2 + offset[0]
    cy = height / 2 + offset[1]
    yy, xx = np.mgrid[0:height, 0:width]
    inside = (np.abs(xx - cx) <= half) & (np.abs(yy - cy) <= half)
    frame[inside] += 180
    # Corner markers (bright dots) to give the detector strong responses.
    for sx in (-1, 1):
        for sy in (-1, 1):
            px = int(round(cx + sx * half))
            py = int(round(cy + sy * half))
            if 1 <= px < width - 1 and 1 <= py < height - 1:
                frame[py - 1:py + 2, px - 1:px + 2] += 60
    return CameraFrame(pixels=np.clip(frame, 0, 255).astype(np.int64),
                       true_offset=offset, true_scale=scale)


def harris_response(pixels: np.ndarray, k_num: int = 1,
                    k_den: int = 20) -> np.ndarray:
    """Integer Harris corner response (gradients via central differences)."""
    gray = pixels.astype(np.int64)
    gx = np.zeros_like(gray)
    gy = np.zeros_like(gray)
    gx[:, 1:-1] = gray[:, 2:] - gray[:, :-2]
    gy[1:-1, :] = gray[2:, :] - gray[:-2, :]
    ixx = gx * gx
    iyy = gy * gy
    ixy = gx * gy
    def box(a: np.ndarray) -> np.ndarray:
        out = np.zeros_like(a)
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                out[1:-1, 1:-1] += a[1 + dy:a.shape[0] - 1 + dy,
                                     1 + dx:a.shape[1] - 1 + dx]
        return out

    sxx = box(ixx)
    syy = box(iyy)
    sxy = box(ixy)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - (k_num * trace * trace) // k_den


def detect_corners(pixels: np.ndarray, max_corners: int = 16,
                   threshold_ratio: float = 0.05) -> List[Tuple[int, int]]:
    """Non-maximum-suppressed corner list, strongest first."""
    response = harris_response(pixels)
    peak = int(response.max())
    if peak <= 0:
        return []
    threshold = int(peak * threshold_ratio)
    corners: List[Tuple[int, int, int]] = []
    height, width = response.shape
    for y in range(2, height - 2):
        for x in range(2, width - 2):
            value = response[y, x]
            if value <= threshold:
                continue
            patch = response[y - 1:y + 2, x - 1:x + 2]
            if value >= patch.max():
                corners.append((int(value), x, y))
    corners.sort(reverse=True)
    kept: List[Tuple[int, int]] = []
    for _value, x, y in corners:
        if all((x - kx) ** 2 + (y - ky) ** 2 >= 16 for kx, ky in kept):
            kept.append((x, y))
        if len(kept) >= max_corners:
            break
    return kept


@dataclass
class NavigationSolution:
    offset: Tuple[float, float]
    scale: float
    corners_used: int
    converged: bool


def estimate_pose(frame: CameraFrame,
                  nominal_half: float = 8.0) -> NavigationSolution:
    """Estimate the marker offset and scale from detected corners."""
    corners = detect_corners(frame.pixels)
    if len(corners) < 4:
        return NavigationSolution((0.0, 0.0), 1.0, len(corners), False)
    xs = np.array([c[0] for c in corners], dtype=float)
    ys = np.array([c[1] for c in corners], dtype=float)
    cx = float(xs.mean())
    cy = float(ys.mean())
    height, width = frame.pixels.shape
    offset = (cx - width / 2, cy - height / 2)
    spread = float(np.median(np.hypot(xs - cx, ys - cy)))
    scale = spread / (nominal_half * math.sqrt(2))
    return NavigationSolution(offset=offset, scale=scale,
                              corners_used=len(corners), converged=True)


def navigation_error(frame: CameraFrame,
                     solution: NavigationSolution) -> float:
    """Pixel-domain position error of a navigation solution."""
    dx = solution.offset[0] - frame.true_offset[0]
    dy = solution.offset[1] - frame.true_offset[1]
    return math.hypot(dx, dy)


# -- HLS kernel form (IP-core candidate of paper §V) -------------------------

# Integer Harris response over a 16x16 frame.  Intensities are expected
# pre-scaled to ~4 bits so all intermediates fit 32-bit arithmetic (the
# fixed-point budget a real VBN IP core would allocate).
HARRIS16_C = """
#define W 16
#define H 16
void harris16(const int *img, int *resp) {
  int gx[256];
  int gy[256];
  for (int y = 0; y < H; y++) {
    for (int x = 0; x < W; x++) {
      int gxv = 0;
      int gyv = 0;
      if (x > 0 && x < W - 1) {
        gxv = img[y * W + (x + 1)] - img[y * W + (x - 1)];
      }
      if (y > 0 && y < H - 1) {
        gyv = img[(y + 1) * W + x] - img[(y - 1) * W + x];
      }
      gx[y * W + x] = gxv;
      gy[y * W + x] = gyv;
    }
  }
  for (int y = 0; y < H; y++) {
    for (int x = 0; x < W; x++) {
      int sxx = 0;
      int syy = 0;
      int sxy = 0;
      if (y > 0 && y < H - 1 && x > 0 && x < W - 1) {
        for (int dy = 0; dy < 3; dy++) {
          for (int dx = 0; dx < 3; dx++) {
            int i = (y + dy - 1) * W + (x + dx - 1);
            sxx += gx[i] * gx[i];
            syy += gy[i] * gy[i];
            sxy += gx[i] * gy[i];
          }
        }
      }
      int det = sxx * syy - sxy * sxy;
      int trace = sxx + syy;
      resp[y * W + x] = det - (trace * trace) / 20;
    }
  }
}
"""


def harris16_reference(pixels: np.ndarray) -> np.ndarray:
    """Bit-exact golden model of ``HARRIS16_C`` (16x16, int32 budget)."""
    assert pixels.shape == (16, 16)
    response = harris_response(pixels, k_num=1, k_den=20)
    # harris_response uses Python ints (no wrap); the kernel budget is
    # chosen so nothing wraps for <=4-bit intensities — same values.
    return response
