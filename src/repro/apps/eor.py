"""Electric Orbit Raising (EOR) — paper §V use case.

Low-thrust orbit raising from an injection orbit to GEO: an
Edelbaum-style continuous-thrust spiral with eclipse duty cycling and a
planner that produces per-revolution thrust arcs.  Used as the third
partition of the SELENE-derived mission scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

MU_EARTH = 398_600.4418      # km^3/s^2
GEO_RADIUS_KM = 42_164.0


@dataclass
class SpacecraftConfig:
    mass_kg: float = 2_000.0
    thrust_n: float = 0.4          # electric thruster
    isp_s: float = 1_800.0
    duty_cycle: float = 0.9        # eclipse/thruster-off fraction


@dataclass
class OrbitState:
    radius_km: float               # circular-orbit radius (Edelbaum)
    mass_kg: float
    elapsed_days: float = 0.0

    @property
    def velocity_kms(self) -> float:
        return math.sqrt(MU_EARTH / self.radius_km)


@dataclass
class ThrustArc:
    revolution: int
    start_radius_km: float
    delta_v_ms: float
    duration_hours: float


class EorPlanner:
    """Plans and propagates a continuous-thrust orbit raise."""

    def __init__(self, config: Optional[SpacecraftConfig] = None,
                 start_radius_km: float = 24_000.0,
                 target_radius_km: float = GEO_RADIUS_KM) -> None:
        self.config = config or SpacecraftConfig()
        self.state = OrbitState(radius_km=start_radius_km,
                                mass_kg=self.config.mass_kg)
        self.target_radius_km = target_radius_km
        self.arcs: List[ThrustArc] = []

    def total_delta_v_ms(self) -> float:
        """Edelbaum delta-v between circular coplanar orbits (m/s)."""
        v0 = math.sqrt(MU_EARTH / self.state.radius_km)
        v1 = math.sqrt(MU_EARTH / self.target_radius_km)
        return abs(v0 - v1) * 1000.0

    def step_revolution(self) -> ThrustArc:
        """Propagate one revolution of continuous tangential thrust."""
        state = self.state
        config = self.config
        period_s = 2 * math.pi * math.sqrt(state.radius_km ** 3 / MU_EARTH)
        accel_ms2 = config.thrust_n / state.mass_kg
        burn_s = period_s * config.duty_cycle
        delta_v_ms = accel_ms2 * burn_s
        # Gauss variational form for tangential thrust on circular orbit:
        # da/dt = 2 a^2 v / mu * f_t  ->  da = 2 a v dv / mu (km units).
        v_kms = state.velocity_kms
        da_km = 2 * state.radius_km ** 2 * v_kms * (delta_v_ms / 1000.0) \
            / MU_EARTH
        state.radius_km = min(state.radius_km + da_km,
                              self.target_radius_km)
        # Propellant usage (rocket equation differential form).
        mdot = config.thrust_n / (config.isp_s * 9.80665)
        state.mass_kg -= mdot * burn_s
        state.elapsed_days += period_s / 86_400.0
        arc = ThrustArc(revolution=len(self.arcs),
                        start_radius_km=state.radius_km - da_km,
                        delta_v_ms=delta_v_ms,
                        duration_hours=burn_s / 3600.0)
        self.arcs.append(arc)
        return arc

    @property
    def arrived(self) -> bool:
        return self.state.radius_km >= self.target_radius_km - 1.0

    def run_to_target(self, max_revolutions: int = 20_000) -> int:
        """Propagate until GEO; returns revolutions flown."""
        count = 0
        while not self.arrived and count < max_revolutions:
            self.step_revolution()
            count += 1
        return count

    def summary(self) -> dict:
        return {
            "revolutions": len(self.arcs),
            "elapsed_days": self.state.elapsed_days,
            "final_radius_km": self.state.radius_km,
            "propellant_kg": self.config.mass_kg - self.state.mass_kg,
            "delta_v_ms": sum(a.delta_v_ms for a in self.arcs),
        }
