"""Space use-case applications (paper §V): image/vision processing,
software-defined algorithms, AI inference, and the SELENE-derived
mission (AOCS + VBN + EOR) for the virtualization evaluation."""

from . import ai, aocs, eor, image, mission, sdr, vbn

__all__ = ["ai", "aocs", "eor", "image", "mission", "sdr", "vbn"]
