"""The SELENE-derived virtualized mission (paper §V).

Builds the XtratuM configuration and partition workloads for the
representative space-mission control system the paper names: an AOCS
partition, a Visual-Based Navigation image-processing partition and an
Electric Orbit Raising partition, plus a telemetry/system partition —
all sharing the quad-core NG-ULTRA under TSP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..hypervisor import (
    Compute,
    EndActivation,
    Fault,
    MemoryArea,
    PortKind,
    ReadPort,
    SystemConfig,
    WritePort,
    XtratumHypervisor,
)
from .aocs import AocsLoop, quat_from_axis_angle
from .eor import EorPlanner
from .vbn import estimate_pose, render_target

AOCS_PID = 0
VBN_PID = 1
EOR_PID = 2
TM_PID = 3

# Modelled worst-case execution times (us) of one activation on the R52.
AOCS_WCET_US = 350.0
VBN_WCET_US = 3_800.0
EOR_WCET_US = 900.0
TM_WCET_US = 250.0


def mission_config(major_frame_us: float = 10_000.0,
                   cores: int = 4) -> SystemConfig:
    """The mission scheduling plan: AOCS at high rate on core 0, VBN on
    core 1, EOR on core 2, telemetry on core 3."""
    config = SystemConfig(cores=cores, context_switch_us=2.0)
    config.add_partition(AOCS_PID, "AOCS",
                         [MemoryArea("aocs", 0x4000_0000, 0x10000)],
                         criticality="DAL-B")
    config.add_partition(VBN_PID, "VBN",
                         [MemoryArea("vbn", 0x4001_0000, 0x40000)])
    config.add_partition(EOR_PID, "EOR",
                         [MemoryArea("eor", 0x4005_0000, 0x10000)])
    config.add_partition(TM_PID, "TM",
                         [MemoryArea("tm", 0x4006_0000, 0x10000)],
                         system_partition=True)
    plan = config.add_plan(0, major_frame_us=major_frame_us)
    # AOCS: two windows per frame (500 us each) -> 5 ms control period.
    plan.add_window(AOCS_PID, core=0, start_us=0.0, duration_us=500.0)
    plan.add_window(AOCS_PID, core=0, start_us=major_frame_us / 2,
                    duration_us=500.0)
    # VBN: one long window on core 1.
    plan.add_window(VBN_PID, core=1, start_us=0.0, duration_us=5_000.0)
    # EOR: planning window on core 2.
    plan.add_window(EOR_PID, core=2, start_us=0.0, duration_us=1_500.0)
    # Telemetry on core 3.
    plan.add_window(TM_PID, core=3, start_us=0.0, duration_us=1_000.0)
    config.add_port("aocs_tm", PortKind.SAMPLING, source=AOCS_PID,
                    destinations=[TM_PID])
    config.add_port("vbn_nav", PortKind.SAMPLING, source=VBN_PID,
                    destinations=[AOCS_PID, TM_PID])
    config.add_port("eor_plan", PortKind.QUEUING, source=EOR_PID,
                    destinations=[TM_PID], depth=16)
    return config


def aocs_workload(wcet_us: float = AOCS_WCET_US,
                  loop: Optional[AocsLoop] = None) -> Generator:
    """AOCS partition: run the control loop, publish telemetry."""
    loop = loop or AocsLoop()
    loop.set_target(quat_from_axis_angle([0, 0, 1], 0.3))
    while True:
        error = loop.step(dt=0.005)
        yield Compute(wcet_us)
        yield WritePort("aocs_tm", {
            "pointing_error_rad": error,
            "wheel_momentum": list(loop.wheels.momentum),
        })
        yield EndActivation()


def vbn_workload(wcet_us: float = VBN_WCET_US) -> Generator:
    """VBN partition: process one synthetic frame per activation."""
    frame_index = 0
    while True:
        offset = (3.0 * np.cos(frame_index / 5.0),
                  2.0 * np.sin(frame_index / 7.0))
        frame = render_target(offset=offset, seed=frame_index)
        solution = estimate_pose(frame)
        yield Compute(wcet_us)
        yield WritePort("vbn_nav", {
            "offset": solution.offset,
            "scale": solution.scale,
            "converged": solution.converged,
        })
        frame_index += 1
        yield EndActivation()


def eor_workload(wcet_us: float = EOR_WCET_US,
                 planner: Optional[EorPlanner] = None) -> Generator:
    """EOR partition: plan one thrust arc per activation."""
    planner = planner or EorPlanner()
    while True:
        if not planner.arrived:
            arc = planner.step_revolution()
            yield Compute(wcet_us)
            yield WritePort("eor_plan", {
                "revolution": arc.revolution,
                "delta_v_ms": arc.delta_v_ms,
            })
        else:
            yield Compute(wcet_us / 10)
        yield EndActivation()


def telemetry_workload(wcet_us: float = TM_WCET_US,
                       sink: Optional[list] = None) -> Generator:
    """System partition: gather everything for the downlink."""
    while True:
        (aocs_msg,) = yield ReadPort("aocs_tm")
        (vbn_msg,) = yield ReadPort("vbn_nav")
        (eor_msg,) = yield ReadPort("eor_plan")
        yield Compute(wcet_us)
        if sink is not None:
            sink.append({"aocs": aocs_msg, "vbn": vbn_msg, "eor": eor_msg})
        yield EndActivation()


def faulty_vbn_workload(fault_every: int = 3,
                        wcet_us: float = VBN_WCET_US) -> Generator:
    """A VBN variant that crashes periodically (isolation experiments)."""
    count = 0
    while True:
        count += 1
        if count % fault_every == 0:
            yield Fault("VBN image pipeline exception")
        yield Compute(wcet_us)
        yield EndActivation()


@dataclass
class MissionRun:
    hypervisor: XtratumHypervisor
    metrics: object
    telemetry: list


def run_mission(frames: int = 50, faulty_vbn: bool = False,
                major_frame_us: float = 10_000.0,
                tracer=None) -> MissionRun:
    """Boot and run the virtualized mission; returns metrics + telemetry.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) records per-window
    scheduler spans and health-monitor events for the whole run.
    """
    config = mission_config(major_frame_us=major_frame_us)
    hypervisor = XtratumHypervisor(config, tracer=tracer)
    telemetry: list = []
    hypervisor.load_partition(AOCS_PID, aocs_workload,
                              period_us=major_frame_us / 2,
                              deadline_us=major_frame_us / 2)
    vbn = faulty_vbn_workload if faulty_vbn else vbn_workload
    hypervisor.load_partition(VBN_PID, vbn, period_us=major_frame_us,
                              deadline_us=major_frame_us)
    hypervisor.load_partition(EOR_PID, eor_workload,
                              period_us=major_frame_us,
                              deadline_us=major_frame_us)
    hypervisor.load_partition(
        TM_PID, lambda: telemetry_workload(sink=telemetry),
        period_us=major_frame_us, deadline_us=major_frame_us)
    metrics = hypervisor.run(frames=frames)
    return MissionRun(hypervisor=hypervisor, metrics=metrics,
                      telemetry=telemetry)
