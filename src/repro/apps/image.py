"""Image and vision processing use cases (paper §V).

Each kernel exists twice: as HermesC source for the HLS flow (the IP-core
generation path evaluated in the paper) and as a NumPy reference used for
functional verification and for the software-side workloads.
"""

from __future__ import annotations


import numpy as np

# -- HermesC sources ----------------------------------------------------------

CONV2D_3X3_C = """
// 3x3 convolution with a constant kernel, 16x16 frame.
#define W 16
#define H 16
void conv2d(const int *src, int *dst, const int *kernel, int shift) {
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int acc = 0;
      for (int ky = 0; ky < 3; ky++) {
        for (int kx = 0; kx < 3; kx++) {
          acc += src[(y + ky - 1) * W + (x + kx - 1)] * kernel[ky * 3 + kx];
        }
      }
      dst[y * W + x] = acc >> shift;
    }
  }
}
"""

SOBEL_C = """
// Sobel gradient magnitude (|gx| + |gy|), 16x16 frame.
#define W 16
#define H 16
void sobel(const int *src, int *dst) {
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int gx = src[(y - 1) * W + (x + 1)] - src[(y - 1) * W + (x - 1)]
             + 2 * src[y * W + (x + 1)] - 2 * src[y * W + (x - 1)]
             + src[(y + 1) * W + (x + 1)] - src[(y + 1) * W + (x - 1)];
      int gy = src[(y + 1) * W + (x - 1)] - src[(y - 1) * W + (x - 1)]
             + 2 * src[(y + 1) * W + x] - 2 * src[(y - 1) * W + x]
             + src[(y + 1) * W + (x + 1)] - src[(y - 1) * W + (x + 1)];
      int mag = abs(gx) + abs(gy);
      dst[y * W + x] = min(mag, 255);
    }
  }
}
"""

MEDIAN3_C = """
// 3-tap horizontal median filter over a line buffer.
void median3(const int *src, int *dst, int n) {
  dst[0] = src[0];
  for (int i = 1; i < n - 1; i++) {
    int a = src[i - 1];
    int b = src[i];
    int c = src[i + 1];
    int lo = min(a, b);
    int hi = max(a, b);
    dst[i] = max(lo, min(hi, c));
  }
  dst[n - 1] = src[n - 1];
}
"""

THRESHOLD_C = """
// Binary threshold with hysteresis-free cut.
void threshold(const int *src, int *dst, int n, int level) {
  for (int i = 0; i < n; i++) {
    dst[i] = src[i] > level ? 255 : 0;
  }
}
"""

DPCM_ENCODE_C = """
// DPCM predictive encoder (CCSDS-121-flavoured preprocessing stage):
// outputs the prediction residuals mapped to non-negative integers.
void dpcm_encode(const int *src, int *dst, int n) {
  int prev = 0;
  for (int i = 0; i < n; i++) {
    int delta = src[i] - prev;
    int mapped = delta >= 0 ? 2 * delta : -2 * delta - 1;
    dst[i] = mapped;
    prev = src[i];
  }
}
"""


# -- references ----------------------------------------------------------------


def conv2d_reference(src: np.ndarray, kernel: np.ndarray,
                     shift: int = 0) -> np.ndarray:
    """Golden model of ``CONV2D_3X3_C`` (borders left at zero)."""
    height, width = src.shape
    out = np.zeros_like(src, dtype=np.int64)
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            patch = src[y - 1:y + 2, x - 1:x + 2].astype(np.int64)
            out[y, x] = int((patch * kernel).sum()) >> shift
    return out


def sobel_reference(src: np.ndarray) -> np.ndarray:
    gx_k = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])
    gy_k = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]])
    height, width = src.shape
    out = np.zeros_like(src, dtype=np.int64)
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            patch = src[y - 1:y + 2, x - 1:x + 2].astype(np.int64)
            gx = int((patch * gx_k).sum())
            gy = int((patch * gy_k).sum())
            out[y, x] = min(abs(gx) + abs(gy), 255)
    return out


def median3_reference(line: np.ndarray) -> np.ndarray:
    out = line.copy()
    for i in range(1, len(line) - 1):
        out[i] = sorted((line[i - 1], line[i], line[i + 1]))[1]
    return out


def threshold_reference(line: np.ndarray, level: int) -> np.ndarray:
    return np.where(line > level, 255, 0)


def dpcm_encode_reference(line: np.ndarray) -> np.ndarray:
    out = np.zeros_like(line)
    prev = 0
    for i, value in enumerate(line):
        delta = int(value) - prev
        out[i] = 2 * delta if delta >= 0 else -2 * delta - 1
        prev = int(value)
    return out


def dpcm_decode(mapped: np.ndarray) -> np.ndarray:
    """Inverse of the DPCM mapping (completeness check)."""
    out = np.zeros_like(mapped)
    prev = 0
    for i, code in enumerate(mapped):
        delta = code // 2 if code % 2 == 0 else -(code + 1) // 2
        prev = prev + int(delta)
        out[i] = prev
    return out


def synthetic_frame(width: int = 16, height: int = 16,
                    seed: int = 0) -> np.ndarray:
    """A reproducible Earth-observation-like test frame: smooth gradient
    plus a bright blob plus sensor noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    gradient = (xx * 255 // max(1, width - 1)).astype(np.int64)
    blob = 120 * np.exp(-(((xx - width / 2) ** 2 + (yy - height / 2) ** 2)
                          / (0.1 * width * height)))
    noise = rng.integers(-8, 9, size=(height, width))
    frame = np.clip(gradient * 0.5 + blob + noise, 0, 255)
    return frame.astype(np.int64)


def compression_ratio(residuals: np.ndarray) -> float:
    """First-order entropy estimate of the DPCM residual stream versus
    raw 8-bit coding — the figure of merit of the compression use case."""
    values, counts = np.unique(residuals, return_counts=True)
    probabilities = counts / counts.sum()
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return 8.0 / max(entropy, 1e-6)
