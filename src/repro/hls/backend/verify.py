"""Static legality checking of schedules.

``verify_schedule`` re-derives every dependence and resource constraint
from scratch and reports violations; it is the scheduling analogue of
``verify_function`` for the IR and backs the property-based tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.operations import Load, Store
from .allocation import Allocation
from .dfg import RAW, WAR, build_dfg
from .scheduling import FunctionSchedule


def verify_schedule(schedule: FunctionSchedule,
                    allocation: Allocation) -> List[str]:
    """Return a list of constraint violations (empty when legal)."""
    problems: List[str] = []
    func = schedule.function
    for name, block_sched in schedule.blocks.items():
        block = func.blocks[name]
        dfg = build_dfg(block)
        entries = block_sched.ops
        if len(entries) != len(block.ops):
            problems.append(f"{name}: schedule/op count mismatch")
            continue
        where = lambda i: f"{func.name}/{name}[{i}]"  # noqa: E731
        for edge in dfg.edges:
            if edge.src >= len(entries):
                continue
            producer = entries[edge.src]
            if edge.dst >= len(entries):
                # Terminator constraints.
                term_state = block_sched.terminator_state
                if edge.kind == RAW:
                    comb = producer.cycles <= 1 and producer.ready_delay > 0
                    needed = producer.start if comb \
                        else producer.start + producer.cycles
                    if term_state < needed:
                        problems.append(
                            f"{where(edge.src)}: branch uses value before "
                            f"ready (state {term_state} < {needed})")
                else:
                    needed = producer.start + max(1, producer.cycles) - 1
                    if term_state < needed:
                        problems.append(
                            f"{where(edge.src)}: branch before side effect "
                            f"completes")
                continue
            consumer = entries[edge.dst]
            if edge.kind == RAW:
                comb = producer.cycles <= 1 and producer.ready_delay > 0
                if comb:
                    if consumer.start < producer.start:
                        problems.append(
                            f"{where(edge.dst)}: starts before producer")
                    elif consumer.start == producer.start and \
                            not consumer.chained and \
                            consumer.op.resource_class not in ("none",):
                        timing = allocation.op_timing(consumer.op)
                        if not timing.chainable:
                            problems.append(
                                f"{where(edge.dst)}: non-chainable op shares "
                                f"cycle with its producer")
                else:
                    if consumer.start < producer.start + producer.cycles:
                        problems.append(
                            f"{where(edge.dst)}: reads sequential result "
                            f"too early")
            elif edge.kind == WAR:
                if consumer.start < producer.start:
                    problems.append(
                        f"{where(edge.dst)}: write overtakes earlier read")
            else:  # ORDER
                if consumer.start < producer.start + max(1, producer.cycles):
                    problems.append(
                        f"{where(edge.dst)}: ordering violated")
        # Chaining path delay within each cycle.
        for index, entry in enumerate(entries):
            if entry.ready_delay - 1e-9 > schedule.clock_ns:
                problems.append(
                    f"{where(index)}: path delay {entry.ready_delay:.2f}ns "
                    f"exceeds clock {schedule.clock_ns}ns")
        # Resource limits per cycle.
        usage: Dict[Tuple[str, int], int] = {}
        ports: Dict[Tuple[str, int], int] = {}
        for index, entry in enumerate(entries):
            cls = entry.op.resource_class
            timing = allocation.op_timing(entry.op)
            if cls not in ("none", "wire"):
                for cycle in range(entry.start,
                                   entry.start + max(1, timing.interval)):
                    key = (cls, cycle)
                    usage[key] = usage.get(key, 0) + 1
                    if usage[key] > allocation.units_for(cls):
                        problems.append(
                            f"{where(index)}: {cls} over-subscribed in "
                            f"cycle {cycle}")
            if isinstance(entry.op, (Load, Store)):
                mem = entry.op.mem.name
                for cycle in range(entry.start,
                                   entry.start + max(1, timing.interval)):
                    key = (mem, cycle)
                    ports[key] = ports.get(key, 0) + 1
                    if ports[key] > allocation.ports_for(mem):
                        problems.append(
                            f"{where(index)}: memory {mem} port conflict "
                            f"in cycle {cycle}")
        # Block length covers every completion.
        for index, entry in enumerate(entries):
            if entry.completion > block_sched.length:
                problems.append(
                    f"{where(index)}: completes after block end")
    return problems
