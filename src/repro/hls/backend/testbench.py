"""Testbench generation for synthesized designs (paper §II).

For every top-level design the flow can emit a self-checking Verilog
testbench: stimuli are taken from a Python-side test vector, expected
responses come from the IR interpreter (the C golden model), BRAM
parameters become behavioural memory models and AXI parameters get the
slave BFM from ``axi.py``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..ir import Module
from ..ir.interp import Interpreter
from ..ir.types import FloatType
from .axi import generate_axi_slave_bfm


@dataclass
class TestVector:
    """One stimulus/response pair for the testbench."""

    args: Sequence = ()
    mems: Dict[str, List] = field(default_factory=dict)
    expected: object = None
    expected_mems: Dict[str, List] = field(default_factory=dict)


def build_test_vectors(module: Module, top: str,
                       stimuli: List[Dict]) -> List[TestVector]:
    """Run the golden C model over ``stimuli`` to produce checked vectors.

    Each stimulus is ``{"args": (...), "mems": {name: [...]}}``.
    """
    vectors = []
    for stimulus in stimuli:
        args = tuple(stimulus.get("args", ()))
        mems = {k: list(v) for k, v in stimulus.get("mems", {}).items()}
        interp = Interpreter(module)
        expected, memories = interp.run(top, args,
                                        {k: list(v) for k, v in mems.items()})
        vectors.append(TestVector(
            args=args, mems=mems, expected=expected,
            expected_mems={k: list(m.data) for k, m in memories.items()
                           if module[top].mems[k].is_param}))
    return vectors


def _literal(value, ty) -> str:
    if isinstance(ty, FloatType):
        bits = struct.unpack("<I", struct.pack("<f", float(value)))[0]
        return f"32'h{bits:08x}"
    width = ty.width
    raw = int(value) & ((1 << width) - 1)
    return f"{width}'h{raw:x}"


def generate_testbench(module: Module, top: str,
                       vectors: List[TestVector],
                       clock_ns: float = 10.0,
                       axi_read_latency: int = 8) -> str:
    """Emit a self-checking Verilog testbench for the top design."""
    func = module[top]
    lines: List[str] = []
    emit = lines.append
    emit("`timescale 1ns/1ps")
    emit(f"// Self-checking testbench for {top} "
         f"({len(vectors)} vectors)")
    emit(f"module tb_{top};")
    emit("  reg clk = 1'b0;")
    emit("  reg rst = 1'b1;")
    emit("  reg start = 1'b0;")
    emit("  wire done;")
    emit(f"  always #{clock_ns / 2:.2f} clk = ~clk;")
    emit("  integer errors = 0;")

    for param in func.scalar_params():
        emit(f"  reg [{param.type.width - 1}:0] arg_{param.name};")
    if func.returns_value:
        emit(f"  wire [{func.return_type.width - 1}:0] retval;")

    axi_mems = [p.mem for p in func.memory_params()
                if p.mem.storage == "axi"]
    bram_mems = [p.mem for p in func.memory_params()
                 if p.mem.storage != "axi"]

    # Behavioural BRAM models for memory parameters.
    for mem in bram_mems:
        width = mem.element.width
        size = max(1, mem.size) if mem.size else 1024
        addr_bits = max(1, (size - 1).bit_length())
        emit(f"  // behavioural BRAM model for {mem.name}")
        emit(f"  reg [{width - 1}:0] tb_mem_{mem.name} [0:{size - 1}];")
        emit(f"  wire [{addr_bits - 1}:0] {mem.name}_addr;")
        emit(f"  wire [{width - 1}:0] {mem.name}_din;")
        emit(f"  reg [{width - 1}:0] {mem.name}_dout;")
        emit(f"  wire {mem.name}_we;")
        emit(f"  wire {mem.name}_en;")
        emit("  always @(posedge clk) begin")
        emit(f"    if ({mem.name}_en) begin")
        emit(f"      if ({mem.name}_we) "
             f"tb_mem_{mem.name}[{mem.name}_addr] <= {mem.name}_din;")
        emit(f"      {mem.name}_dout <= tb_mem_{mem.name}[{mem.name}_addr];")
        emit("    end")
        emit("  end")

    # AXI slave instances.
    for mem in axi_mems:
        bundle = f"m_axi_{mem.name}"
        width = mem.element.width
        emit(f"  // AXI4 slave counterpart for {mem.name}")
        for signal, direction in (("araddr", 32), ("awaddr", 32)):
            emit(f"  wire [31:0] {bundle}_{signal};")
        for signal in ("arvalid", "rready", "awvalid", "wvalid", "bready"):
            emit(f"  wire {bundle}_{signal};")
        for signal in ("arready", "rvalid", "awready", "wready", "bvalid"):
            emit(f"  wire {bundle}_{signal};")
        emit(f"  wire [{width - 1}:0] {bundle}_rdata;")
        emit(f"  wire [{width - 1}:0] {bundle}_wdata;")
        emit(f"  hermes_axi_slave u_slave_{mem.name} (")
        emit("    .clk(clk), .rst(rst),")
        emit(f"    .s_araddr({bundle}_araddr), .s_arvalid({bundle}_arvalid),")
        emit(f"    .s_arready({bundle}_arready), .s_rdata({bundle}_rdata),")
        emit(f"    .s_rvalid({bundle}_rvalid), .s_rready({bundle}_rready),")
        emit(f"    .s_awaddr({bundle}_awaddr), .s_awvalid({bundle}_awvalid),")
        emit(f"    .s_awready({bundle}_awready), .s_wdata({bundle}_wdata),")
        emit(f"    .s_wvalid({bundle}_wvalid), .s_wready({bundle}_wready),")
        emit(f"    .s_bvalid({bundle}_bvalid), .s_bready({bundle}_bready)")
        emit("  );")

    # DUT instance.
    connections = [".clk(clk)", ".rst(rst)", ".start(start)", ".done(done)"]
    for param in func.scalar_params():
        connections.append(f".arg_{param.name}(arg_{param.name})")
    if func.returns_value:
        connections.append(".retval(retval)")
    for mem in bram_mems:
        for suffix in ("addr", "din", "dout", "we", "en"):
            connections.append(f".{mem.name}_{suffix}({mem.name}_{suffix})")
    for mem in axi_mems:
        bundle = f"m_axi_{mem.name}"
        for suffix in ("araddr", "arvalid", "arready", "rdata", "rvalid",
                       "rready", "awaddr", "awvalid", "awready", "wdata",
                       "wvalid", "wready", "bvalid", "bready"):
            connections.append(f".{bundle}_{suffix}({bundle}_{suffix})")
    emit(f"  {top} dut (")
    emit(",\n".join("    " + c for c in connections))
    emit("  );")

    # Stimulus / checking sequence.
    emit("  initial begin")
    emit("    repeat (4) @(posedge clk);")
    emit("    rst = 1'b0;")
    for index, vector in enumerate(vectors):
        emit(f"    // ---- vector {index} ----")
        for param, value in zip(func.scalar_params(), vector.args):
            emit(f"    arg_{param.name} = {_literal(value, param.type)};")
        for mem in bram_mems:
            data = vector.mems.get(mem.name, [])
            for offset, value in enumerate(data):
                emit(f"    tb_mem_{mem.name}[{offset}] = "
                     f"{_literal(value, mem.element)};")
        for mem in axi_mems:
            data = vector.mems.get(mem.name, [])
            for offset, value in enumerate(data):
                emit(f"    u_slave_{mem.name}.mem[{offset}] = "
                     f"{_literal(value, mem.element)};")
        emit("    @(posedge clk); start = 1'b1;")
        emit("    @(posedge clk); wait (done);")
        emit("    start = 1'b0;")
        if func.returns_value and vector.expected is not None:
            expected = _literal(vector.expected, func.return_type)
            emit(f"    if (retval !== {expected}) begin")
            emit(f'      $display("vector {index}: retval mismatch '
                 f'(%h != {expected})", retval);')
            emit("      errors = errors + 1;")
            emit("    end")
        for mem in bram_mems:
            expected_data = vector.expected_mems.get(mem.name, [])
            for offset, value in enumerate(expected_data):
                literal = _literal(value, mem.element)
                emit(f"    if (tb_mem_{mem.name}[{offset}] !== {literal}) "
                     "errors = errors + 1;")
        emit("    @(posedge clk);")
    emit('    if (errors == 0) $display("TESTBENCH PASSED");')
    emit('    else $display("TESTBENCH FAILED: %0d errors", errors);')
    emit("    $finish;")
    emit("  end")
    emit("endmodule")
    emit("")
    if axi_mems:
        emit(generate_axi_slave_bfm(read_latency=axi_read_latency))
    return "\n".join(lines)
