"""Resource allocation: deciding how many functional units of each class
the datapath instantiates (paper Fig. 2: allocation → scheduling → binding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..characterization.library import ComponentLibrary, default_library
from ..ir import Function
from ..ir.operations import Load, Store

# Default number of functional units per resource class.  These mirror a
# pragmatic HLS default: cheap logic is effectively unconstrained, DSP- and
# area-hungry units are shared.
_DEFAULT_LIMITS = {
    "addsub": 8,
    "mult": 4,
    "divider": 1,
    "logic": 16,
    "shifter": 4,
    "comparator": 8,
    "mux": 64,
    "wire": 10_000,
    "faddsub": 2,
    "fmult": 2,
    "fdivider": 1,
    "fsqrt": 1,
    "fcomparator": 2,
    "fconvert": 2,
    "flogic": 4,
}

# Memory ports: NG-ULTRA block RAMs are true dual port; the generated AXI
# master handles one outstanding transaction (paper notes burst/caching as
# future work, which the axi module adds as an extension).
_BRAM_PORTS = 2
_ROM_PORTS = 2
_AXI_PORTS = 1


@dataclass(frozen=True)
class OpTiming:
    """Scheduling view of one operation's component.

    * ``cycles`` — latency in cycles (result usable ``cycles`` after start);
    * ``delay_ns`` — combinational delay contribution (chaining);
    * ``chainable`` — can share a cycle with its producers/consumers;
    * ``interval`` — initiation interval: cycles the unit stays busy
      (1 for pipelined units, ``cycles`` for iterative ones).
    """

    cycles: int
    delay_ns: float
    chainable: bool
    interval: int = 1


# Iterative (non-pipelined) resource classes: the unit is busy for the
# whole latency, so back-to-back operations serialize.
_ITERATIVE_CLASSES = {"divider", "fdivider", "fsqrt"}


@dataclass
class Allocation:
    """Functional-unit budget and operation timing for one function."""

    function: Function
    library: ComponentLibrary
    clock_ns: float
    limits: Dict[str, int] = field(default_factory=dict)
    mem_ports: Dict[str, int] = field(default_factory=dict)
    call_latency: Dict[str, int] = field(default_factory=dict)
    # Bit-width analysis results (middle-end); narrows unit selection.
    width_hints: Dict = field(default_factory=dict)

    def units_for(self, resource_class: str) -> int:
        if resource_class.startswith("call:"):
            return 1  # one instance of each callee sub-module
        return self.limits.get(resource_class, 1)

    def ports_for(self, mem_name: str) -> int:
        return self.mem_ports.get(mem_name, 1)

    def op_timing(self, op) -> OpTiming:
        """Timing/occupancy characteristics of ``op`` at this clock."""
        from ..middleend.bitwidth import hinted_width
        cls = op.resource_class
        width = hinted_width(op, self.width_hints)
        if cls == "none":
            return OpTiming(0, 0.0, True, 0)
        if cls.startswith("call:"):
            callee = cls.split(":", 1)[1]
            if callee == "sqrtf":
                record = self.library.select("fsqrt", 32, self.clock_ns)
                return OpTiming(max(1, record.stages), record.delay_ns,
                                False, max(1, record.stages))
            cycles = max(1, self.call_latency.get(callee, 1))
            # A callee instance is busy for the whole call (handshake).
            return OpTiming(cycles, 0.0, False, cycles)
        record = self.library.select(cls, width, self.clock_ns)
        if isinstance(op, Store):
            if op.mem.storage == "axi":
                # Single-beat AXI write: the port is busy the whole round
                # trip (no outstanding-transaction overlap in the base
                # interface; the burst extension lifts this).
                cycles = max(1, record.stages)
                return OpTiming(cycles, record.delay_ns, False, cycles)
            # BRAM write commits at the end of its issue cycle.
            return OpTiming(1, record.delay_ns, False, 1)
        if isinstance(op, Load):
            cycles = max(1, record.stages)
            interval = cycles if op.mem.storage == "axi" else 1
            return OpTiming(cycles, record.delay_ns, False, interval)
        if record.stages == 0:
            return OpTiming(1, record.delay_ns, True, 1)
        interval = record.stages if cls in _ITERATIVE_CLASSES else 1
        return OpTiming(record.stages, record.delay_ns, False, interval)


def allocate(func: Function, library: Optional[ComponentLibrary] = None,
             clock_ns: float = 10.0,
             call_latency: Optional[Dict[str, int]] = None) -> Allocation:
    """Build the allocation for ``func``.

    ``#pragma HLS allocation`` limits override the defaults.  Memory port
    counts derive from each memory object's storage kind.
    """
    library = library or default_library()
    limits = dict(_DEFAULT_LIMITS)
    limits.update(func.pragmas.get("allocation", {}))
    mem_ports = {}
    for name, mem in func.mems.items():
        if mem.storage == "axi":
            mem_ports[name] = _AXI_PORTS
        elif mem.storage == "rom":
            mem_ports[name] = _ROM_PORTS
        else:
            mem_ports[name] = _BRAM_PORTS
    return Allocation(function=func, library=library, clock_ns=clock_ns,
                      limits=limits, mem_ports=mem_ports,
                      call_latency=dict(call_latency or {}),
                      width_hints=func.pragmas.get("width_hints", {}))
