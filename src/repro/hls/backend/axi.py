"""AXI4 master interface synthesis and memory-subsystem modelling.

Paper §II: Bambu generates AXI4 master interfaces and the modules
controlling the AXI signals with no protocol knowledge required; data
accesses map automatically onto the right controller; testbenches include
the AXI4 slave counterparts, and memory delay estimates are configurable.
The paper names prefetching/caching and cache-geometry customization as
planned extensions — implemented here as :class:`AxiCacheConfig`.

Three layers:

* :class:`AxiInterfaceConfig` / :class:`AxiCacheConfig` — per-port
  configuration (latency, bursts, cache geometry);
* :class:`AxiMemorySubsystem` — a transaction-level model that replays an
  address trace and reports the cycles spent, with optional cache;
* :func:`generate_axi_slave_bfm` — the behavioural Verilog slave used by
  the generated testbench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class AxiCacheConfig:
    """Cache-extension geometry (paper §II future work, implemented).

    ``size_bytes`` total capacity, ``line_bytes`` per line,
    ``associativity`` ways (1 = direct mapped).
    """

    size_bytes: int = 1024
    line_bytes: int = 32
    associativity: int = 2
    # Next-line prefetch on miss (paper §II names prefetching among the
    # planned extensions).  The prefetched line fills in the shadow of
    # the demand miss, so it adds no stall cycles of its own.
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.size_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of "
                             "line_bytes * associativity")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def words_per_line(self) -> int:
        return max(1, self.line_bytes // 4)


@dataclass(frozen=True)
class AxiInterfaceConfig:
    """Configuration of one generated AXI4 master port."""

    data_width: int = 32
    read_latency: int = 8        # cycles from AR handshake to R data
    write_latency: int = 6       # cycles from AW to B response
    burst: bool = False          # use INCR bursts for consecutive accesses
    max_burst_len: int = 16
    cache: Optional[AxiCacheConfig] = None


@dataclass
class AxiAccessStats:
    reads: int = 0
    writes: int = 0
    read_cycles: int = 0
    write_cycles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bursts: int = 0

    @property
    def total_cycles(self) -> int:
        return self.read_cycles + self.write_cycles

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def average_read_latency(self) -> float:
        return self.read_cycles / self.reads if self.reads else 0.0


class _Cache:
    """Set-associative LRU cache over word addresses."""

    def __init__(self, config: AxiCacheConfig) -> None:
        self.config = config
        # set index -> ordered list of resident line tags (LRU at front)
        self._sets: Dict[int, List[int]] = {}

    def access(self, word_address: int) -> bool:
        """Touch a word; returns True on hit (line filled on miss)."""
        line = word_address // self.config.words_per_line
        if self._touch_line(line):
            return True
        if self.config.prefetch:
            self._fill_line(line + 1)
        return False

    def _touch_line(self, line: int) -> bool:
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        resident = self._sets.setdefault(index, [])
        if tag in resident:
            resident.remove(tag)
            resident.append(tag)
            return True
        resident.append(tag)
        if len(resident) > self.config.associativity:
            resident.pop(0)
        return False

    def _fill_line(self, line: int) -> None:
        """Install a line with low recency (prefetch fill).

        The prefetched line sits just above the current LRU victim, so a
        full set evicts its old LRU line — never the demand data and
        never the line just prefetched.
        """
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        resident = self._sets.setdefault(index, [])
        if tag in resident:
            return
        if len(resident) >= self.config.associativity:
            resident.pop(0)
        resident.insert(min(1, len(resident)), tag)

    def flush(self) -> None:
        self._sets.clear()


class AxiMemorySubsystem:
    """Transaction-level model of the external memory behind one port.

    Replays read/write word-address sequences and accumulates the cycle
    cost under the configured interface features.  Used by the testbench
    (performance assessment with memory delays, paper §II) and by the
    AXI benchmark sweep.
    """

    def __init__(self, config: AxiInterfaceConfig) -> None:
        self.config = config
        self.stats = AxiAccessStats()
        self._cache = _Cache(config.cache) if config.cache else None
        self._last_read_addr: Optional[int] = None
        self._burst_left = 0

    def read(self, word_address: int) -> int:
        """Account one read; returns the cycles it consumed."""
        self.stats.reads += 1
        cycles = self._read_cost(word_address)
        self.stats.read_cycles += cycles
        self._last_read_addr = word_address
        return cycles

    def _read_cost(self, word_address: int) -> int:
        config = self.config
        if self._cache is not None:
            if self._cache.access(word_address):
                self.stats.cache_hits += 1
                return 1
            self.stats.cache_misses += 1
            # Line fill: one AR, then line_words beats.
            return config.read_latency + self._cache.config.words_per_line - 1
        if config.burst and self._last_read_addr is not None \
                and word_address == self._last_read_addr + 1 \
                and self._burst_left > 0:
            self._burst_left -= 1
            return 1  # next beat of an open INCR burst
        if config.burst:
            self._burst_left = config.max_burst_len - 1
            self.stats.bursts += 1
            return config.read_latency
        return config.read_latency

    def write(self, word_address: int) -> int:
        self.stats.writes += 1
        cycles = self.config.write_latency
        if self.config.burst and self._last_write_is_next(word_address):
            cycles = 1
        self.stats.write_cycles += cycles
        self._last_write_addr = word_address
        return cycles

    _last_write_addr: Optional[int] = None

    def _last_write_is_next(self, word_address: int) -> bool:
        return (self._last_write_addr is not None
                and word_address == self._last_write_addr + 1)

    def replay(self, trace: List[Tuple[str, int]]) -> AxiAccessStats:
        """Replay a ('r'|'w', word_address) trace; returns the stats."""
        for kind, address in trace:
            if kind == "r":
                self.read(address)
            else:
                self.write(address)
        return self.stats


def estimate_kernel_cycles(read_trace: List[int],
                           write_trace: List[int],
                           compute_cycles: int,
                           config: AxiInterfaceConfig) -> int:
    """Total-cycle estimate for a kernel: compute + memory stalls.

    Models the non-overlapped base interface of the paper (every access
    stalls the accelerator); the burst/cache options reduce the stall
    component exactly the way the planned extensions would.
    """
    subsystem = AxiMemorySubsystem(config)
    stall = 0
    for address in read_trace:
        stall += subsystem.read(address)
    for address in write_trace:
        stall += subsystem.write(address)
    return compute_cycles + stall


def generate_axi_slave_bfm(name: str = "hermes_axi_slave",
                           data_width: int = 32,
                           mem_words: int = 1024,
                           read_latency: int = 8) -> str:
    """Behavioural Verilog AXI4 slave used by generated testbenches."""
    addr_bits = max(1, (mem_words - 1).bit_length())
    return f"""// AXI4 slave BFM generated by the HERMES HLS flow (testbench use)
module {name} (
  input wire clk,
  input wire rst,
  input wire [31:0] s_araddr,
  input wire s_arvalid,
  output reg s_arready,
  output reg [{data_width - 1}:0] s_rdata,
  output reg s_rvalid,
  input wire s_rready,
  input wire [31:0] s_awaddr,
  input wire s_awvalid,
  output reg s_awready,
  input wire [{data_width - 1}:0] s_wdata,
  input wire s_wvalid,
  output reg s_wready,
  output reg s_bvalid,
  input wire s_bready
);
  reg [{data_width - 1}:0] mem [0:{mem_words - 1}];
  reg [31:0] read_addr;
  reg [7:0] delay;
  localparam READ_LATENCY = {read_latency};

  always @(posedge clk) begin
    if (rst) begin
      s_arready <= 1'b1;
      s_rvalid <= 1'b0;
      s_awready <= 1'b1;
      s_wready <= 1'b1;
      s_bvalid <= 1'b0;
      delay <= 8'd0;
    end else begin
      if (s_arvalid && s_arready) begin
        read_addr <= s_araddr >> 2;
        delay <= READ_LATENCY;
        s_arready <= 1'b0;
      end
      if (delay > 1) delay <= delay - 8'd1;
      if (delay == 8'd1) begin
        s_rdata <= mem[read_addr[{addr_bits - 1}:0]];
        s_rvalid <= 1'b1;
        delay <= 8'd0;
      end
      if (s_rvalid && s_rready) begin
        s_rvalid <= 1'b0;
        s_arready <= 1'b1;
      end
      if (s_awvalid && s_wvalid && s_awready) begin
        mem[s_awaddr[{addr_bits + 1}:2]] <= s_wdata;
        s_bvalid <= 1'b1;
        s_awready <= 1'b0;
      end
      if (s_bvalid && s_bready) begin
        s_bvalid <= 1'b0;
        s_awready <= 1'b1;
      end
    end
  end
endmodule
"""
