"""Block-compiled FSMD simulation (DBT-lite for the HLS backend).

The reference :class:`~repro.hls.backend.simulate.FsmdSimulator` walks
the schedule one operation at a time, re-discovering each op's kind with
an ``isinstance`` chain and re-resolving each operand through
``Interpreter._value`` (a dataclass-keyed dict probe, which re-hashes
the value object) on every visit.  For loop-heavy kernels the same few
blocks are decoded thousands of times.

:class:`DbtFsmdSimulator` pre-resolves each scheduled function **once**:

* every :class:`Var`/:class:`Temp` the function touches is interned to
  an integer *slot* of a flat register file (a Python list), so operand
  access is one indexed read instead of a dataclass hash + dict probe;
* every op becomes a *thunk* — a closure with operand slots, constants,
  result types and evaluation callables already bound;
* every terminator becomes a resolved jump: targets are block-program
  objects, branch conditions bound getters, returns a sentinel.

Functional semantics, cycle accounting, trace bookkeeping (block lists,
hot-block profile, memory counters, call stall replacement) and the
cycle-limit rules (global budget + zero-length-visit guard) are
identical to the reference simulator by construction; the testbench
keeps the reference as the oracle.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..ir import Call, Function, Module
from ..ir.operations import (
    Assign,
    BinOp,
    Branch,
    Cast,
    Jump,
    Load,
    Return,
    Select,
    Store,
    UnOp,
    eval_binop,
    eval_unop,
)
from ..ir.types import FloatType, IntType
from ..ir.values import Const, Temp, Var
from .allocation import Allocation
from .scheduling import FunctionSchedule
from .simulate import (
    CALL_HANDSHAKE_CYCLES,
    FsmdSimulator,
    SimulationError,
    SimulationTrace,
)

_F32 = FloatType(32)

# Comparisons are type-independent in ``eval_binop`` (operand signedness
# was already folded in by the front end); resolve them to plain lambdas.
_CMP_FNS = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
}


def _coercer(ty) -> Callable:
    """Pre-resolved ``Interpreter._coerce_scalar`` for one type."""
    if isinstance(ty, IntType):
        wrap = ty.wrap
        return lambda value: wrap(int(value))
    if isinstance(ty, FloatType):
        rnd = ty.round
        return lambda value: rnd(float(value))
    return lambda value: value


def _binop_fn(op: str, result_ty) -> Callable:
    """Two-argument callable with ``eval_binop`` semantics pre-bound."""
    if op in _CMP_FNS:
        return _CMP_FNS[op]
    if isinstance(result_ty, IntType):
        wrap = result_ty.wrap
        if op == "add":
            return lambda a, b: wrap(int(a) + int(b))
        if op == "sub":
            return lambda a, b: wrap(int(a) - int(b))
        if op == "mul":
            return lambda a, b: wrap(int(a) * int(b))
        if op == "and":
            return lambda a, b: wrap(int(a) & int(b))
        if op == "or":
            return lambda a, b: wrap(int(a) | int(b))
        if op == "xor":
            return lambda a, b: wrap(int(a) ^ int(b))
    # div/rem/shifts/float arithmetic: keep the reference evaluator.
    return lambda a, b: eval_binop(op, a, b, result_ty)


class _BlockProgram:
    """One pre-resolved basic block of a scheduled function."""

    __slots__ = ("name", "key", "length", "thunks", "term", "ret_getter")

    def __init__(self, name: str, key: tuple, length: int) -> None:
        self.name = name
        self.key = key
        self.length = length
        self.thunks: List[Callable] = []
        self.term: Optional[Callable] = None
        self.ret_getter: Optional[Callable] = None


class _FuncProgram:
    """All block programs of one function plus its register file map."""

    __slots__ = ("entry", "blocks", "slot_of", "defaults")

    def __init__(self) -> None:
        self.entry: Optional[_BlockProgram] = None
        self.blocks: Dict[str, _BlockProgram] = {}
        # Value -> register-file index; defaults seed uninitialized
        # reads with the type's deterministic zero (like the reference).
        self.slot_of: Dict[object, int] = {}
        self.defaults: List[object] = []

    def slot(self, value) -> int:
        index = self.slot_of.get(value)
        if index is None:
            index = len(self.defaults)
            self.slot_of[value] = index
            self.defaults.append(
                0.0 if isinstance(value.ty, FloatType) else 0)
        return index

    def getter(self, value) -> Callable:
        """Pre-resolved ``Interpreter._value``."""
        if isinstance(value, Const):
            const = value.value
            return lambda env: const
        if not isinstance(value, (Var, Temp)):
            raise SimulationError(f"unbound value {value}")
        index = self.slot(value)
        return lambda env: env[index]


class DbtFsmdSimulator(FsmdSimulator):
    """FSMD simulator executing pre-resolved block programs.

    Produces the same ``(result, trace, memories)`` as
    :class:`FsmdSimulator` for every input — same block visit order,
    cycle totals, profiling maps, memory counters, call accounting and
    cycle-limit errors — while skipping the per-op ``isinstance``
    dispatch and operand re-resolution.
    """

    def __init__(self, module: Module,
                 schedules: Dict[str, FunctionSchedule],
                 allocations: Dict[str, Allocation],
                 max_cycles: int = 50_000_000) -> None:
        super().__init__(module, schedules, allocations, max_cycles)
        self._programs: Dict[str, _FuncProgram] = {}

    # -- compilation -----------------------------------------------------

    def _program_for(self, func: Function) -> _FuncProgram:
        program = self._programs.get(func.name)
        if program is None:
            program = self._compile_function(func)
            self._programs[func.name] = program
        return program

    def _compile_function(self, func: Function) -> _FuncProgram:
        schedule = self.schedules[func.name]
        program = _FuncProgram()
        for name in func.blocks:
            program.blocks[name] = _BlockProgram(
                name, (func.name, name), schedule.blocks[name].length)
        # Parameters get slots first so entry environments can seed them.
        for param in func.scalar_params():
            program.slot(Var(param.name, param.type))
        for name, block in func.blocks.items():
            prog = program.blocks[name]
            prog.thunks = [self._compile_op(func, op, program)
                           for op in block.ops]
            self._compile_terminator(block, prog, program)
        program.entry = program.blocks[func.entry]
        return program

    def _compile_op(self, func: Function, op,
                    program: _FuncProgram) -> Callable:
        getter = program.getter
        if isinstance(op, BinOp):
            result_ty = op.lhs.ty if op.is_comparison else op.dst.ty
            fn = _binop_fn(op.op, result_ty)
            get_l, get_r = getter(op.lhs), getter(op.rhs)
            dst = program.slot(op.dst)

            def binop_thunk(env, memories, trace, base):
                env[dst] = fn(get_l(env), get_r(env))
            return binop_thunk
        if isinstance(op, UnOp):
            opname, ty = op.op, op.dst.ty
            get_s = getter(op.src)
            dst = program.slot(op.dst)

            def unop_thunk(env, memories, trace, base):
                env[dst] = eval_unop(opname, get_s(env), ty)
            return unop_thunk
        if isinstance(op, Assign):
            coerce = _coercer(op.dst.ty)
            get_s = getter(op.src)
            dst = program.slot(op.dst)

            def assign_thunk(env, memories, trace, base):
                env[dst] = coerce(get_s(env))
            return assign_thunk
        if isinstance(op, Cast):
            get_s = getter(op.src)
            dst = program.slot(op.dst)
            dst_ty = op.dst.ty
            if isinstance(dst_ty, FloatType):
                rnd = dst_ty.round

                def cast_f_thunk(env, memories, trace, base):
                    env[dst] = rnd(float(get_s(env)))
                return cast_f_thunk
            if isinstance(dst_ty, IntType):
                wrap = dst_ty.wrap

                def cast_i_thunk(env, memories, trace, base):
                    env[dst] = wrap(int(get_s(env)))
                return cast_i_thunk

            def cast_id_thunk(env, memories, trace, base):
                env[dst] = get_s(env)
            return cast_id_thunk
        if isinstance(op, Load):
            mem_name = op.mem.name
            get_i = getter(op.index)
            dst = program.slot(op.dst)

            def load_thunk(env, memories, trace, base):
                trace.mem_reads += 1
                env[dst] = memories[mem_name].load(int(get_i(env)))
            return load_thunk
        if isinstance(op, Store):
            mem_name = op.mem.name
            get_i, get_s = getter(op.index), getter(op.src)

            def store_thunk(env, memories, trace, base):
                trace.mem_writes += 1
                memories[mem_name].store(int(get_i(env)), get_s(env))
            return store_thunk
        if isinstance(op, Select):
            coerce = _coercer(op.dst.ty)
            get_c = getter(op.cond)
            get_t, get_f = getter(op.if_true), getter(op.if_false)
            dst = program.slot(op.dst)

            def select_thunk(env, memories, trace, base):
                env[dst] = coerce(get_t(env) if get_c(env) else get_f(env))
            return select_thunk
        if isinstance(op, Call):
            if op.callee == "sqrtf":
                get_a = getter(op.args[0])
                dst = (program.slot(op.dst)
                       if op.dst is not None else None)
                rnd = _F32.round

                def sqrt_thunk(env, memories, trace, base):
                    value = rnd(math.sqrt(max(0.0, get_a(env))))
                    if dst is not None:
                        env[dst] = value
                return sqrt_thunk
            return self._compile_call(func, op, program)
        raise SimulationError(f"cannot compile {op}")

    def _compile_call(self, func: Function, op: Call,
                      program: _FuncProgram) -> Callable:
        """Pre-resolved :meth:`FsmdSimulator._run_call`: same accounting,
        argument coercion and memory binding as the reference."""
        callee = self.module[op.callee]
        arg_binds = [(Var(param.name, param.type), _coercer(param.type),
                      program.getter(arg))
                     for param, arg in zip(callee.scalar_params(), op.args)]
        mem_binds = [(param.name, mem_arg.name)
                     for param, mem_arg in zip(callee.memory_params(),
                                               op.mem_args)]
        local_mems = [(name, mem) for name, mem in callee.mems.items()
                      if not mem.is_param]
        allocation = self.allocations[func.name]
        estimated = max(1, allocation.call_latency.get(op.callee, 1))
        dst = program.slot(op.dst) if op.dst is not None else None
        callee_name = op.callee
        memory_for = self._interp._memory_for

        def call_thunk(env, memories, trace, base):
            sub_env = {var: coerce(get(env))
                       for var, coerce, get in arg_binds}
            sub_mems = {pname: memories[aname]
                        for pname, aname in mem_binds}
            for name, mem in local_mems:
                if name not in sub_mems:
                    sub_mems[name] = memory_for(mem)
            sub_trace = SimulationTrace()
            value = self._run_function(callee, sub_env, sub_mems,
                                       sub_trace, base + trace.cycles)
            # The caller's schedule already budgeted the estimated
            # latency; replace it with the measured callee cycles plus
            # the handshake (same rule as the reference).
            actual = sub_trace.cycles + CALL_HANDSHAKE_CYCLES
            trace.cycles += max(0, actual - estimated)
            trace.calls[callee_name] = trace.calls.get(callee_name, 0) + 1
            trace.mem_reads += sub_trace.mem_reads
            trace.mem_writes += sub_trace.mem_writes
            for name, count in sub_trace.calls.items():
                trace.calls[name] = trace.calls.get(name, 0) + count
            for key, cycles in sub_trace.block_cycles.items():
                trace.block_cycles[key] = \
                    trace.block_cycles.get(key, 0) + cycles
            for key, visits in sub_trace.block_visits.items():
                trace.block_visits[key] = \
                    trace.block_visits.get(key, 0) + visits
            if dst is not None:
                env[dst] = value
        return call_thunk

    def _compile_terminator(self, block, prog: _BlockProgram,
                            program: _FuncProgram) -> None:
        term = block.terminator
        if isinstance(term, Return):
            prog.term = lambda env: None
            prog.ret_getter = (None if term.value is None
                               else program.getter(term.value))
        elif isinstance(term, Jump):
            target = program.blocks[term.target]
            prog.term = lambda env: target
        elif isinstance(term, Branch):
            get_c = program.getter(term.cond)
            if_true = program.blocks[term.if_true]
            if_false = program.blocks[term.if_false]
            prog.term = lambda env: if_true if get_c(env) else if_false
        else:  # pragma: no cover - verified IR always terminates
            raise SimulationError(f"bad terminator in {block.name}")

    # -- execution -------------------------------------------------------

    def _run_function(self, func: Function, env, memories, trace,
                      base_cycles: int = 0):
        program = self._program_for(func)
        # ``env`` arrives as the reference dict (from ``run()`` or a call
        # thunk); spill it into the function's flat register file.
        slots = program.defaults.copy()
        slot_of = program.slot_of
        for value, bound in env.items():
            index = slot_of.get(value)
            if index is not None:
                slots[index] = bound
        block = program.entry
        visits = 0
        max_cycles = self.max_cycles
        blocks_seen = trace.blocks
        block_cycles = trace.block_cycles
        block_visits = trace.block_visits
        while True:
            name = block.name
            blocks_seen.append(name)
            length = block.length
            trace.cycles += length
            key = block.key
            block_cycles[key] = block_cycles.get(key, 0) + length
            block_visits[key] = block_visits.get(key, 0) + 1
            # Same guard as the reference: global cycle budget (callers'
            # cycles included via ``base_cycles``) plus the visit counter
            # that catches zero-length self-loops.
            visits += 1
            if (base_cycles + trace.cycles > max_cycles
                    or visits > max_cycles):
                raise SimulationError(f"{func.name}: cycle limit exceeded")
            for thunk in block.thunks:
                thunk(slots, memories, trace, base_cycles)
            nxt = block.term(slots)
            if nxt is None:
                getter = block.ret_getter
                return None if getter is None else getter(slots)
            block = nxt


def make_simulator(engine: str, module: Module,
                   schedules: Dict[str, FunctionSchedule],
                   allocations: Dict[str, Allocation],
                   max_cycles: int = 50_000_000) -> FsmdSimulator:
    """Engine selector shared by the flow and the benchmarks."""
    if engine == "dbt":
        return DbtFsmdSimulator(module, schedules, allocations, max_cycles)
    if engine == "interp":
        return FsmdSimulator(module, schedules, allocations, max_cycles)
    raise ValueError(f"unknown FSMD engine {engine!r}")
