"""Datapath construction report: resources and timing roll-up.

Aggregates the allocation/binding results into the resource-utilization
and timing numbers a synthesis report exposes — LUTs, FFs, DSPs, BRAMs,
the estimated critical path and the resulting Fmax.  These are the metrics
the paper's §V use-case evaluation collects for generated IP cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..characterization.library import ComponentLibrary
from ..ir import Function, operand_width
from .allocation import Allocation
from .binding import Binding
from .fsm import FSM
from .scheduling import FunctionSchedule

# One NG-ULTRA block RAM stores 18 Kib in true-dual-port mode.
_BRAM_BITS = 18 * 1024
# A constant array this small is folded into LUT ROM instead of a BRAM.
_LUTROM_MAX_BITS = 512


@dataclass
class AreaReport:
    luts: int = 0
    ffs: int = 0
    dsps: int = 0
    brams: int = 0
    breakdown: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, label: str, luts: int = 0, ffs: int = 0, dsps: int = 0,
            brams: int = 0) -> None:
        self.luts += luts
        self.ffs += ffs
        self.dsps += dsps
        self.brams += brams
        entry = self.breakdown.setdefault(
            label, {"luts": 0, "ffs": 0, "dsps": 0, "brams": 0})
        entry["luts"] += luts
        entry["ffs"] += ffs
        entry["dsps"] += dsps
        entry["brams"] += brams


@dataclass
class DatapathReport:
    area: AreaReport
    critical_path_ns: float
    fmax_mhz: float
    state_count: int
    register_count: int

    def summary(self) -> str:
        a = self.area
        return (f"LUT {a.luts}  FF {a.ffs}  DSP {a.dsps}  BRAM {a.brams}  "
                f"states {self.state_count}  regs {self.register_count}  "
                f"cp {self.critical_path_ns:.2f} ns  "
                f"Fmax {self.fmax_mhz:.1f} MHz")


def _max_width_per_class(func: Function) -> Dict[str, int]:
    widths: Dict[str, int] = {}
    for op in func.all_ops():
        cls = op.resource_class
        if cls in ("none", "wire"):
            continue
        widths[cls] = max(widths.get(cls, 1), operand_width(op))
    return widths


def build_datapath_report(func: Function, schedule: FunctionSchedule,
                          binding: Binding, allocation: Allocation,
                          fsm: FSM,
                          library: Optional[ComponentLibrary] = None
                          ) -> DatapathReport:
    library = library or allocation.library
    area = AreaReport()
    widths = _max_width_per_class(func)

    # Functional units actually instantiated by the binder.
    for cls, count in binding.fu.instance_counts.items():
        if cls.startswith("call:"):
            continue  # sub-module area accounted at module level
        if cls.startswith("mem_"):
            continue  # memory area handled per memory object below
        width = widths.get(cls, 32)
        record = library.select(cls, width, allocation.clock_ns)
        area.add(f"fu:{cls}", luts=record.luts * count,
                 ffs=record.ffs * count, dsps=record.dsps * count)
        if count > 1:
            # Input multiplexers for shared units: ~width/2 LUTs per extra
            # source on each of two operand ports.
            area.add(f"mux:{cls}", luts=(count - 1) * width)

    # Registers.
    for register in binding.registers.registers:
        area.add("registers", ffs=register.width)

    # Memories.
    for mem in func.mems.values():
        if mem.is_param and mem.storage == "axi":
            record = library.select("mem_axi", 32, allocation.clock_ns)
            area.add(f"axi:{mem.name}", luts=record.luts, ffs=record.ffs)
            continue
        if mem.is_param and mem.size == 0:
            continue  # unsized pointer bound to an external BRAM
        from ..ir.types import FloatType, IntType
        width = mem.element.width if isinstance(
            mem.element, (IntType, FloatType)) else 32
        bits = mem.size * width
        if mem.storage == "rom" and bits <= _LUTROM_MAX_BITS:
            area.add(f"rom:{mem.name}", luts=max(1, bits // 8))
        else:
            area.add(f"ram:{mem.name}",
                     brams=max(1, math.ceil(bits / _BRAM_BITS)))

    # Controller: one-hot-ish decode logic plus the state register.
    area.add("controller", luts=fsm.state_count * 2, ffs=fsm.state_bits())

    critical = 0.1
    for block_sched in schedule.blocks.values():
        for entry in block_sched.ops:
            critical = max(critical, entry.ready_delay)
            if entry.cycles > 1:
                timing = allocation.op_timing(entry.op)
                critical = max(critical, timing.delay_ns)
    critical = min(critical, allocation.clock_ns) if critical else 0.1
    # The achieved clock cannot beat the slowest stage.
    slowest = max(critical, 0.1)
    fmax = 1000.0 / slowest
    return DatapathReport(
        area=area,
        critical_path_ns=slowest,
        fmax_mhz=fmax,
        state_count=fsm.state_count,
        register_count=binding.registers.count,
    )
