"""Per-block data-dependence graphs for scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..ir import BasicBlock, Call
from ..ir.operations import Load, Store
from ..ir.values import Temp, Value, Var

# Edge kinds.  RAW edges carry the produced value (for chaining decisions);
# ORDER edges only constrain sequence (memory and side-effect ordering) and
# WAR edges allow sharing a cycle (the old value is read before the
# register updates at the clock edge).
RAW = "raw"
WAR = "war"
ORDER = "order"


@dataclass
class DepEdge:
    src: int
    dst: int
    kind: str
    value: Value = None


@dataclass
class BlockDFG:
    """Dependence graph over the ops of one basic block.

    Node ``len(ops)`` represents the terminator (when present) so that the
    branch condition and side-effect ordering constraints reach it.
    """

    block: BasicBlock
    edges: List[DepEdge] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return len(self.block.ops) + (1 if self.block.terminator else 0)

    def preds(self, node: int) -> List[DepEdge]:
        return [e for e in self.edges if e.dst == node]

    def succs(self, node: int) -> List[DepEdge]:
        return [e for e in self.edges if e.src == node]


def build_dfg(block: BasicBlock) -> BlockDFG:
    """Build RAW/WAR/ORDER edges for one block.

    Within-block rules:

    * value RAW: use of a value defined earlier in the block;
    * value WAR/WAW on ``Var`` storage (registers);
    * memory RAW/WAR/WAW per memory object (loads commute, stores do not);
    * calls are ordered with all memory operations and other calls.
    """
    dfg = BlockDFG(block)
    last_def: Dict[Value, int] = {}
    readers: Dict[Value, List[int]] = {}
    last_store: Dict[str, int] = {}
    loads_since_store: Dict[str, List[int]] = {}
    last_call = -1
    mem_nodes: List[int] = []

    ops = list(block.ops)
    terminator_node = len(ops) if block.terminator else None
    all_nodes = ops + ([block.terminator] if block.terminator else [])

    seen_edges: Set[Tuple[int, int, str]] = set()

    def add_edge(src: int, dst: int, kind: str, value: Value = None) -> None:
        if src == dst or src < 0:
            return
        key = (src, dst, kind)
        if key in seen_edges:
            return
        seen_edges.add(key)
        dfg.edges.append(DepEdge(src, dst, kind, value))

    for index, op in enumerate(all_nodes):
        # Value dependencies.
        for value in op.inputs():
            if isinstance(value, (Var, Temp)):
                if value in last_def:
                    add_edge(last_def[value], index, RAW, value)
                readers.setdefault(value, []).append(index)
        out = op.output()
        if out is not None:
            # WAR: every earlier reader of the old value must not start
            # after this write completes its cycle (sharing is allowed).
            for reader in readers.get(out, []):
                add_edge(reader, index, WAR, out)
            # WAW: a previous definition must come first.
            if out in last_def:
                add_edge(last_def[out], index, ORDER, out)
            last_def[out] = index
            readers[out] = []
        # Memory dependencies.
        if isinstance(op, Load):
            name = op.mem.name
            if name in last_store:
                add_edge(last_store[name], index, ORDER)
            loads_since_store.setdefault(name, []).append(index)
            if last_call >= 0:
                add_edge(last_call, index, ORDER)
            mem_nodes.append(index)
        elif isinstance(op, Store):
            name = op.mem.name
            if name in last_store:
                add_edge(last_store[name], index, ORDER)
            for load in loads_since_store.get(name, []):
                add_edge(load, index, WAR)
            loads_since_store[name] = []
            last_store[name] = index
            if last_call >= 0:
                add_edge(last_call, index, ORDER)
            mem_nodes.append(index)
        elif isinstance(op, Call):
            for node in mem_nodes:
                add_edge(node, index, ORDER)
            if last_call >= 0:
                add_edge(last_call, index, ORDER)
            last_call = index
            mem_nodes.append(index)
    # The terminator must come after all side effects complete.
    if terminator_node is not None:
        for index, op in enumerate(ops):
            if op.has_side_effects:
                add_edge(index, terminator_node, ORDER)
    return dfg
