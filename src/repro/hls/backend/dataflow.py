"""Dynamically controlled coarse-grained dataflow synthesis (paper §II).

AI applications expose coarse-grained parallel tasks; synthesizing them
into a single FSM makes the controller state count explode.  The HERMES
extension of Bambu (ref [14] of the paper) instead extracts the task graph
and gives every task its own small controller, with data-driven handshakes
between tasks — enabling task pipelining across successive input items.

``extract_task_graph`` recognizes the supported shape: a top function
(marked ``#pragma HLS dataflow``) whose body is a straight-line sequence
of calls communicating through memory arguments.  The returned
:class:`DataflowDesign` reports:

* per-task FSM sizes vs the monolithic (inlined) FSM size,
* single-item latency and steady-state initiation interval,
* stream-processing latency for N items (pipelined vs sequential).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import Call, Function, Module


class DataflowError(Exception):
    pass


@dataclass
class Task:
    name: str                  # callee function name
    index: int                 # position in the sequence
    inputs: List[str] = field(default_factory=list)    # memory names read
    outputs: List[str] = field(default_factory=list)   # memory names written
    latency: int = 1           # cycles per item (from the callee design)
    states: int = 1            # FSM states of the task controller


@dataclass
class Channel:
    """A memory turned into a ping-pong buffered channel between tasks."""

    name: str
    producer: Optional[int]
    consumers: List[int] = field(default_factory=list)
    depth: int = 2             # ping-pong buffering


@dataclass
class DataflowDesign:
    function: str
    tasks: List[Task]
    channels: List[Channel]
    monolithic_states: int = 0

    def __post_init__(self) -> None:
        if self.monolithic_states == 0:
            # A monolithic controller replays the callee state sequence at
            # every call site (inlining replicates the states), so the
            # baseline grows with the number of calls, not unique tasks.
            self.monolithic_states = sum(t.states for t in self.tasks)

    @property
    def dataflow_states(self) -> int:
        """Total controller states under dynamic control.

        Each *unique* task keeps one small FSM regardless of how many
        times it appears in the pipeline; the token manager adds one state
        per call site.  This is the controller-size saving the paper's ML
        extension targets (§II, ref [14]).
        """
        unique: Dict[str, int] = {}
        for task in self.tasks:
            unique[task.name] = task.states
        return sum(unique.values()) + len(self.tasks)

    @property
    def initiation_interval(self) -> int:
        """Steady-state cycles between item completions (pipeline II)."""
        return max((t.latency for t in self.tasks), default=1)

    @property
    def single_item_latency(self) -> int:
        return sum(t.latency for t in self.tasks)

    def stream_latency(self, items: int, pipelined: bool = True) -> int:
        """Total cycles to process ``items`` inputs."""
        if items <= 0:
            return 0
        if not pipelined:
            return items * self.single_item_latency
        return self.single_item_latency + (items - 1) * \
            self.initiation_interval

    def speedup(self, items: int) -> float:
        sequential = self.stream_latency(items, pipelined=False)
        pipelined = self.stream_latency(items, pipelined=True)
        return sequential / pipelined if pipelined else 1.0

    def state_reduction(self) -> float:
        """Fraction of controller states removed vs the monolithic FSM."""
        if self.monolithic_states == 0:
            return 0.0
        return 1.0 - self.dataflow_states / self.monolithic_states


def _called_mems(call: Call, callee: Function) -> Tuple[List[str], List[str]]:
    """Memory names read and written by one call, from callee behaviour."""
    from ..ir.operations import Load, Store
    reads: Set[str] = set()
    writes: Set[str] = set()
    param_names = [p.name for p in callee.memory_params()]
    name_map = {param: arg.name
                for param, arg in zip(param_names, call.mem_args)}
    for op in callee.all_ops():
        if isinstance(op, Load) and op.mem.name in name_map:
            reads.add(name_map[op.mem.name])
        elif isinstance(op, Store) and op.mem.name in name_map:
            writes.add(name_map[op.mem.name])
    return sorted(reads), sorted(writes)


def extract_task_graph(module: Module, top: str,
                       task_latency: Optional[Dict[str, int]] = None,
                       task_states: Optional[Dict[str, int]] = None,
                       monolithic_states: int = 0) -> DataflowDesign:
    """Extract the coarse-grained task pipeline from a dataflow function.

    Requirements (checked): single basic block; every operation is a call;
    each intermediate memory has exactly one producer task.
    """
    func = module[top]
    blocks = [b for b in func.ordered_blocks()]
    if len(blocks) != 1:
        raise DataflowError(
            f"{top}: dataflow functions must be straight-line "
            f"(got {len(blocks)} blocks)")
    task_latency = task_latency or {}
    task_states = task_states or {}
    tasks: List[Task] = []
    for op in blocks[0].ops:
        if not isinstance(op, Call):
            raise DataflowError(
                f"{top}: only task calls allowed in a dataflow body, "
                f"found {op}")
        callee = module[op.callee]
        reads, writes = _called_mems(op, callee)
        tasks.append(Task(
            name=op.callee, index=len(tasks), inputs=reads, outputs=writes,
            latency=max(1, task_latency.get(op.callee, 1)),
            states=max(1, task_states.get(op.callee, 1))))
    # Build channels from producer/consumer relations.
    producer_of: Dict[str, int] = {}
    channels: Dict[str, Channel] = {}
    for task in tasks:
        for name in task.outputs:
            if name in producer_of:
                raise DataflowError(
                    f"{top}: memory {name!r} written by two tasks "
                    f"({tasks[producer_of[name]].name} and {task.name})")
            producer_of[name] = task.index
    for task in tasks:
        for name in task.inputs:
            producer = producer_of.get(name)
            channel = channels.setdefault(
                name, Channel(name=name, producer=producer))
            channel.consumers.append(task.index)
            if producer is not None and producer >= task.index:
                raise DataflowError(
                    f"{top}: channel {name!r} consumed before produced")
    return DataflowDesign(function=top, tasks=tasks,
                          channels=list(channels.values()),
                          monolithic_states=monolithic_states)


def analyze_dataflow(project, top: Optional[str] = None) -> DataflowDesign:
    """Build the dataflow design from a synthesized :class:`HlsProject`.

    Task latencies/states come from the synthesized sub-designs; the
    monolithic baseline is the state count of the fully inlined design.
    """
    name = top or project.top
    func = project.module[name]
    if not func.pragmas.get("dataflow"):
        raise DataflowError(f"{name} is not marked #pragma HLS dataflow")
    latencies = measure_task_latencies(project, name)
    states: Dict[str, int] = {}
    for task_name, design in project.designs.items():
        states[task_name] = design.fsm.state_count
    return extract_task_graph(project.module, name,
                              task_latency=latencies, task_states=states)


def measure_task_latencies(project, top: str) -> Dict[str, int]:
    """Per-activation cycle count of each task, by FSMD simulation.

    Each call in the dataflow body is simulated once with zero-filled
    buffers sized from the caller's channel memories (task kernels have
    data-independent loop bounds, so zero stimulus measures the real
    latency).
    """
    func = project.module[top]
    (block,) = func.ordered_blocks()
    latencies: Dict[str, int] = {}
    for op in block.ops:
        if not isinstance(op, Call) or op.callee in latencies:
            continue
        callee = project.module[op.callee]
        mems = {}
        for param, arg_mem in zip(callee.memory_params(), op.mem_args):
            size = arg_mem.size if arg_mem.size else 16
            mems[param.name] = [0] * size
        scalars = [0] * len(callee.scalar_params())
        _result, trace, _m = project.simulate(scalars, mems,
                                              func=op.callee)
        latencies[op.callee] = max(1, trace.cycles)
    return latencies
