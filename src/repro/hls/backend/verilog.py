"""Verilog 2001 emission of scheduled designs.

The generated RTL is a classic FSMD: a state register driven by the
controller FSM plus a datapath of registers, memory arrays and sub-module
instances.  Operation timing realism lives in the *schedule* (states and
stalls); inside a state the behaviour is emitted with blocking assignments
in scheduled order, which preserves the chaining semantics the scheduler
assumed.  Multi-cycle results are written with non-blocking assignments at
their issue state — consumers only read them at ``start + latency`` per
the verified schedule, so early availability in simulation is harmless.

Memory interfaces follow the paper's description: local arrays map onto
true-dual-port RAM templates compliant with the NXmap synthesis
guidelines, pointer parameters become either BRAM ports or AXI4 master
interfaces (see ``axi.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import (
    Assign,
    BinOp,
    Branch,
    Call,
    Cast,
    Const,
    Function,
    Jump,
    Load,
    Module,
    Return,
    Select,
    Store,
    UnOp,
)
from ..ir.types import FloatType, IntType
from ..ir.values import MemObject, Temp, Value, Var
from .binding import Binding
from .fsm import DONE, FSM, IDLE, state_name
from .scheduling import FunctionSchedule

_BINOP_VERILOG = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
    "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}

_FLOAT_UNIT = {
    "add": "hermes_fadd", "sub": "hermes_fsub", "mul": "hermes_fmul",
    "div": "hermes_fdiv",
    "eq": "hermes_fcmp_eq", "ne": "hermes_fcmp_ne", "lt": "hermes_fcmp_lt",
    "le": "hermes_fcmp_le", "gt": "hermes_fcmp_gt", "ge": "hermes_fcmp_ge",
}


def _width(value: Value) -> int:
    ty = value.ty
    if isinstance(ty, (IntType, FloatType)):
        return ty.width
    return 32


def _signed(value: Value) -> bool:
    ty = value.ty
    return isinstance(ty, IntType) and ty.signed


def _mem_ident(mem: MemObject) -> str:
    """HDL-legal identifier for a memory array (dots from inlining)."""
    return "mem_" + mem.name.replace(".", "_")


class VerilogEmitter:
    """Emits one Verilog module per HLS function."""

    def __init__(self, func: Function, schedule: FunctionSchedule,
                 binding: Binding, fsm: FSM, module: Module,
                 sub_schedules: Optional[Dict[str, FunctionSchedule]] = None
                 ) -> None:
        self.func = func
        self.schedule = schedule
        self.binding = binding
        self.fsm = fsm
        self.module = module
        self.sub_schedules = sub_schedules or {}
        self.lines: List[str] = []
        self._callee_instances: List[str] = []

    # -- small helpers -----------------------------------------------------

    def emit(self, text: str = "", indent: int = 0) -> None:
        self.lines.append("  " * indent + text)

    def reg_name(self, value: Value) -> str:
        name = self.binding.registers.assignment.get(value)
        if name is not None:
            return name
        if isinstance(value, Temp):
            return f"t{value.index}"
        if isinstance(value, Var):
            return f"reg_{value.name.replace('.', '_')}"
        raise ValueError(f"no register for {value}")

    def rvalue(self, value: Value) -> str:
        if isinstance(value, Const):
            width = _width(value)
            if isinstance(value.ty, FloatType):
                import struct
                bits = struct.unpack("<I", struct.pack("<f",
                                                       float(value.value)))[0]
                return f"32'h{bits:08x}"
            raw = int(value.value)
            if raw < 0:
                raw &= (1 << width) - 1
            return f"{width}'d{raw}" if raw < (1 << 31) else f"{width}'h{raw:x}"
        return self.reg_name(value)

    def _s(self, value: Value) -> str:
        text = self.rvalue(value)
        return f"$signed({text})" if _signed(value) else text

    # -- top level ---------------------------------------------------------

    def generate(self) -> str:
        self._emit_header()
        self._emit_declarations()
        self._emit_memories()
        self._emit_callee_instances()
        self._emit_fsm()
        self.emit("endmodule")
        return "\n".join(self.lines) + "\n"

    def _port_list(self) -> List[str]:
        ports = ["clk", "rst", "start", "done"]
        for param in self.func.scalar_params():
            ports.append(f"arg_{param.name}")
        if self.func.returns_value:
            ports.append("retval")
        for param in self.func.memory_params():
            mem = param.mem
            if mem.storage == "axi":
                bundle = f"m_axi_{mem.name}"
                ports.extend([
                    f"{bundle}_araddr", f"{bundle}_arvalid",
                    f"{bundle}_arready", f"{bundle}_rdata",
                    f"{bundle}_rvalid", f"{bundle}_rready",
                    f"{bundle}_awaddr", f"{bundle}_awvalid",
                    f"{bundle}_awready", f"{bundle}_wdata",
                    f"{bundle}_wvalid", f"{bundle}_wready",
                    f"{bundle}_bvalid", f"{bundle}_bready",
                ])
            else:
                ports.extend([f"{mem.name}_addr", f"{mem.name}_din",
                              f"{mem.name}_dout", f"{mem.name}_we",
                              f"{mem.name}_en"])
        return ports

    def _emit_header(self) -> None:
        func = self.func
        self.emit(f"// Generated by the HERMES HLS flow (Bambu-equivalent)")
        self.emit(f"// function: {func.name}  clock: "
                  f"{self.schedule.clock_ns} ns  states: "
                  f"{self.fsm.state_count}")
        self.emit(f"module {func.name} (")
        ports = self._port_list()
        self.emit(",\n".join("  " + p for p in ports))
        self.emit(");")
        self.emit("input wire clk;", 1)
        self.emit("input wire rst;", 1)
        self.emit("input wire start;", 1)
        self.emit("output reg done;", 1)
        for param in func.scalar_params():
            width = param.type.width
            self.emit(f"input wire [{width - 1}:0] arg_{param.name};", 1)
        if func.returns_value:
            width = func.return_type.width
            self.emit(f"output reg [{width - 1}:0] retval;", 1)
        for param in func.memory_params():
            mem = param.mem
            width = mem.element.width
            if mem.storage == "axi":
                bundle = f"m_axi_{mem.name}"
                self.emit(f"// AXI4 master interface for {mem.name}", 1)
                self.emit(f"output reg [31:0] {bundle}_araddr;", 1)
                self.emit(f"output reg {bundle}_arvalid;", 1)
                self.emit(f"input wire {bundle}_arready;", 1)
                self.emit(f"input wire [{width - 1}:0] {bundle}_rdata;", 1)
                self.emit(f"input wire {bundle}_rvalid;", 1)
                self.emit(f"output reg {bundle}_rready;", 1)
                self.emit(f"output reg [31:0] {bundle}_awaddr;", 1)
                self.emit(f"output reg {bundle}_awvalid;", 1)
                self.emit(f"input wire {bundle}_awready;", 1)
                self.emit(f"output reg [{width - 1}:0] {bundle}_wdata;", 1)
                self.emit(f"output reg {bundle}_wvalid;", 1)
                self.emit(f"input wire {bundle}_wready;", 1)
                self.emit(f"input wire {bundle}_bvalid;", 1)
                self.emit(f"output reg {bundle}_bready;", 1)
            else:
                addr_bits = max(1, (max(1, mem.size) - 1).bit_length())
                self.emit(f"// BRAM port for {mem.name}", 1)
                self.emit(f"output reg [{addr_bits - 1}:0] {mem.name}_addr;", 1)
                self.emit(f"output reg [{width - 1}:0] {mem.name}_din;", 1)
                self.emit(f"input wire [{width - 1}:0] {mem.name}_dout;", 1)
                self.emit(f"output reg {mem.name}_we;", 1)
                self.emit(f"output reg {mem.name}_en;", 1)
        self.emit()

    def _emit_declarations(self) -> None:
        bits = self.fsm.state_bits()
        self.emit(f"reg [{bits - 1}:0] state;", 1)
        for index, name in enumerate(self.fsm.order):
            self.emit(f"localparam {name} = {bits}'d{index};", 1)
        self.emit()
        declared = set()
        for register in self.binding.registers.registers:
            self.emit(f"reg [{register.width - 1}:0] {register.name};", 1)
            declared.add(register.name)
        # Unbound temps live as blocking-assigned scratch regs.
        for block in self.func.ordered_blocks():
            for op in block.all_ops():
                out = op.output()
                if isinstance(out, Temp):
                    name = self.reg_name(out)
                    if name not in declared:
                        self.emit(f"reg [{_width(out) - 1}:0] {name};", 1)
                        declared.add(name)
        self.emit()

    def _emit_memories(self) -> None:
        for mem in self.func.mems.values():
            if mem.is_param:
                continue
            width = mem.element.width
            self.emit(f"// {mem.storage} memory {mem.name} "
                      f"({mem.size} x {width})", 1)
            self.emit(f"reg [{width - 1}:0] "
                      f"{_mem_ident(mem)} [0:{max(1, mem.size) - 1}];", 1)
            if mem.initializer:
                self.emit("initial begin", 1)
                for index, value in enumerate(mem.initializer):
                    raw = int(value) & ((1 << width) - 1) \
                        if not isinstance(mem.element, FloatType) \
                        else _float_bits(float(value))
                    self.emit(f"{_mem_ident(mem)}[{index}] = "
                              f"{width}'h{raw:x};", 2)
                self.emit("end", 1)
        self.emit()

    def _emit_callee_instances(self) -> None:
        callees = sorted({op.callee for op in self.func.all_ops()
                          if isinstance(op, Call) and op.callee != "sqrtf"})
        for callee in callees:
            sub = self.module[callee]
            self.emit(f"// sub-module instance for {callee}", 1)
            self.emit(f"reg {callee}_start;", 1)
            self.emit(f"wire {callee}_done;", 1)
            for param in sub.scalar_params():
                self.emit(f"reg [{param.type.width - 1}:0] "
                          f"{callee}_arg_{param.name};", 1)
            if sub.returns_value:
                self.emit(f"wire [{sub.return_type.width - 1}:0] "
                          f"{callee}_retval;", 1)
            connections = [".clk(clk)", ".rst(rst)",
                           f".start({callee}_start)",
                           f".done({callee}_done)"]
            for param in sub.scalar_params():
                connections.append(
                    f".arg_{param.name}({callee}_arg_{param.name})")
            if sub.returns_value:
                connections.append(f".retval({callee}_retval)")
            for param in sub.memory_params():
                # Shared memories are connected through the caller arrays;
                # emitted as hierarchical wiring stubs.
                mem = param.mem
                for suffix in ("addr", "din", "dout", "we", "en"):
                    connections.append(
                        f".{mem.name}_{suffix}({callee}_{mem.name}_{suffix})")
                    self.emit(f"wire [31:0] {callee}_{mem.name}_{suffix};", 1)
            self.emit(f"{callee} u_{callee} (", 1)
            self.emit(",\n".join("    " + c for c in connections))
            self.emit(");", 1)
        self.emit()

    # -- FSM body ---------------------------------------------------------

    def _emit_fsm(self) -> None:
        self.emit("always @(posedge clk) begin", 1)
        self.emit("if (rst) begin", 2)
        self.emit(f"state <= {IDLE};", 3)
        self.emit("done <= 1'b0;", 3)
        self.emit("end else begin", 2)
        self.emit("case (state)", 3)
        for state_name in self.fsm.order:
            state = self.fsm.states[state_name]
            self.emit(f"{state_name}: begin", 4)
            if state_name == IDLE:
                self.emit("done <= 1'b0;", 5)
                self._emit_param_latch()
                self.emit(f"if (start) state <= "
                          f"{state.transitions[0].target};", 5)
            elif state_name == DONE:
                self.emit("done <= 1'b1;", 5)
                self.emit(f"if (!start) state <= {IDLE};", 5)
            else:
                self._emit_state_body(state)
            self.emit("end", 4)
        self.emit(f"default: state <= {IDLE};", 4)
        self.emit("endcase", 3)
        self.emit("end", 2)
        self.emit("end", 1)

    def _emit_param_latch(self) -> None:
        for param in self.func.scalar_params():
            var = Var(param.name, param.type)
            self.emit(f"{self.reg_name(var)} <= arg_{param.name};", 5)

    def _emit_state_body(self, state) -> None:
        block_sched = self.schedule.blocks[state.block]
        block = self.func.blocks[state.block]
        wait_condition = None
        for entry in block_sched.ops_starting_at(state.cycle):
            wait = self._emit_op(entry.op, state)
            if wait is not None:
                wait_condition = wait
        is_last = state.cycle == block_sched.length - 1
        if wait_condition is not None:
            self.emit(f"if ({wait_condition}) begin", 5)
            self._emit_transition(state, block, is_last, indent=6)
            self.emit("end", 5)
        else:
            self._emit_transition(state, block, is_last, indent=5)

    def _emit_transition(self, state, block, is_last: bool,
                         indent: int) -> None:
        if not is_last:
            self.emit(f"state <= {state_name(block.name, state.cycle + 1)};",
                      indent)
            return
        term = block.terminator
        if isinstance(term, Jump):
            self.emit(f"state <= {state_name(term.target, 0)};", indent)
        elif isinstance(term, Branch):
            cond = self.rvalue(term.cond)
            self.emit(f"state <= ({cond} != 0) ? "
                      f"{state_name(term.if_true, 0)} : "
                      f"{state_name(term.if_false, 0)};", indent)
        elif isinstance(term, Return):
            if term.value is not None:
                self.emit(f"retval <= {self.rvalue(term.value)};", indent)
            self.emit(f"state <= {DONE};", indent)

    def _emit_op(self, op, state) -> Optional[str]:
        """Emit one operation; returns a wait condition when stalling."""
        lvl = 5
        if isinstance(op, BinOp):
            if isinstance(op.lhs.ty, FloatType) and not op.is_comparison \
                    or (op.is_comparison and isinstance(op.lhs.ty, FloatType)):
                unit = _FLOAT_UNIT.get(op.op, "hermes_fop")
                self.emit(f"// float op via {unit} core", lvl)
                self.emit(f"{self.reg_name(op.dst)} <= "
                          f"{unit}({self.rvalue(op.lhs)}, "
                          f"{self.rvalue(op.rhs)});", lvl)
                return None
            text = f"{self._s(op.lhs)} {_BINOP_VERILOG[op.op]} {self._s(op.rhs)}"
            if op.op in ("shl", "shr"):
                shift = self.rvalue(op.rhs)
                base = self._s(op.lhs) if _signed(op.lhs) and op.op == "shr" \
                    else self.rvalue(op.lhs)
                operator = ">>>" if (op.op == "shr" and _signed(op.lhs)) \
                    else _BINOP_VERILOG[op.op]
                text = f"{base} {operator} {shift}"
            self.emit(f"{self.reg_name(op.dst)} = {text};", lvl)
            return None
        if isinstance(op, UnOp):
            operator = {"neg": "-", "not": "!", "bnot": "~"}[op.op]
            self.emit(f"{self.reg_name(op.dst)} = "
                      f"{operator}{self.rvalue(op.src)};", lvl)
            return None
        if isinstance(op, Assign):
            self.emit(f"{self.reg_name(op.dst)} = {self.rvalue(op.src)};", lvl)
            return None
        if isinstance(op, Cast):
            src_ty, dst_ty = op.src.ty, op.dst.ty
            if isinstance(src_ty, FloatType) != isinstance(dst_ty, FloatType):
                direction = "f2i" if isinstance(src_ty, FloatType) else "i2f"
                self.emit(f"{self.reg_name(op.dst)} <= hermes_{direction}"
                          f"({self.rvalue(op.src)});", lvl)
            elif _signed(op.src) and _width(op.dst) > _width(op.src):
                self.emit(f"{self.reg_name(op.dst)} = "
                          f"{{{{{_width(op.dst) - _width(op.src)}"
                          f"{{{self.rvalue(op.src)}[{_width(op.src) - 1}]}}}},"
                          f" {self.rvalue(op.src)}}};", lvl)
            else:
                self.emit(f"{self.reg_name(op.dst)} = "
                          f"{self.rvalue(op.src)};", lvl)
            return None
        if isinstance(op, Select):
            self.emit(f"{self.reg_name(op.dst)} = ({self.rvalue(op.cond)} != 0)"
                      f" ? {self.rvalue(op.if_true)} : "
                      f"{self.rvalue(op.if_false)};", lvl)
            return None
        if isinstance(op, Load):
            return self._emit_load(op, lvl)
        if isinstance(op, Store):
            return self._emit_store(op, lvl)
        if isinstance(op, Call):
            return self._emit_call(op, state, lvl)
        return None

    def _emit_load(self, op: Load, lvl: int) -> Optional[str]:
        mem = op.mem
        if mem.storage == "axi":
            bundle = f"m_axi_{mem.name}"
            self.emit(f"{bundle}_araddr <= {self.rvalue(op.index)} << 2;", lvl)
            self.emit(f"{bundle}_arvalid <= 1'b1;", lvl)
            self.emit(f"{bundle}_rready <= 1'b1;", lvl)
            self.emit(f"if ({bundle}_rvalid) "
                      f"{self.reg_name(op.dst)} <= {bundle}_rdata;", lvl)
            return f"{bundle}_rvalid"
        if mem.is_param:
            self.emit(f"{mem.name}_addr <= {self.rvalue(op.index)};", lvl)
            self.emit(f"{mem.name}_en <= 1'b1;", lvl)
            self.emit(f"{mem.name}_we <= 1'b0;", lvl)
            self.emit(f"{self.reg_name(op.dst)} <= {mem.name}_dout;", lvl)
            return None
        self.emit(f"{self.reg_name(op.dst)} <= "
                  f"{_mem_ident(mem)}[{self.rvalue(op.index)}];", lvl)
        return None

    def _emit_store(self, op: Store, lvl: int) -> Optional[str]:
        mem = op.mem
        if mem.storage == "axi":
            bundle = f"m_axi_{mem.name}"
            self.emit(f"{bundle}_awaddr <= {self.rvalue(op.index)} << 2;", lvl)
            self.emit(f"{bundle}_awvalid <= 1'b1;", lvl)
            self.emit(f"{bundle}_wdata <= {self.rvalue(op.src)};", lvl)
            self.emit(f"{bundle}_wvalid <= 1'b1;", lvl)
            self.emit(f"{bundle}_bready <= 1'b1;", lvl)
            return f"{bundle}_bvalid"
        if mem.is_param:
            self.emit(f"{mem.name}_addr <= {self.rvalue(op.index)};", lvl)
            self.emit(f"{mem.name}_din <= {self.rvalue(op.src)};", lvl)
            self.emit(f"{mem.name}_en <= 1'b1;", lvl)
            self.emit(f"{mem.name}_we <= 1'b1;", lvl)
            return None
        self.emit(f"{_mem_ident(mem)}[{self.rvalue(op.index)}] <= "
                  f"{self.rvalue(op.src)};", lvl)
        return None

    def _emit_call(self, op: Call, state, lvl: int) -> Optional[str]:
        if op.callee == "sqrtf":
            self.emit(f"{self.reg_name(op.dst)} <= "
                      f"hermes_fsqrt({self.rvalue(op.args[0])});", lvl)
            return None
        callee = self.module[op.callee]
        for param, arg in zip(callee.scalar_params(), op.args):
            self.emit(f"{op.callee}_arg_{param.name} <= "
                      f"{self.rvalue(arg)};", lvl)
        self.emit(f"{op.callee}_start <= 1'b1;", lvl)
        if op.dst is not None:
            self.emit(f"if ({op.callee}_done) {self.reg_name(op.dst)} <= "
                      f"{op.callee}_retval;", lvl)
        self.emit(f"if ({op.callee}_done) {op.callee}_start <= 1'b0;", lvl)
        return f"{op.callee}_done"


def _float_bits(value: float) -> int:
    import struct
    return struct.unpack("<I", struct.pack("<f", value))[0]


def generate_verilog(func: Function, schedule: FunctionSchedule,
                     binding: Binding, fsm: FSM, module: Module) -> str:
    """Emit the Verilog module for one scheduled function."""
    return VerilogEmitter(func, schedule, binding, fsm, module).generate()


def generate_fp_support_library() -> str:
    """Simulation-support models for the floating-point cores.

    The synthesizable versions of these units come from the NG-ULTRA
    characterized library; these behavioural functions keep the generated
    design self-contained for RTL simulation.
    """
    ops = [("hermes_fadd", "+"), ("hermes_fsub", "-"), ("hermes_fmul", "*"),
           ("hermes_fdiv", "/")]
    lines = ["// HERMES HLS floating-point simulation support library"]
    for name, operator in ops:
        lines += [
            f"function [31:0] {name};",
            "  input [31:0] a;",
            "  input [31:0] b;",
            "  real ra, rb;",
            "  begin",
            "    ra = $bitstoshortreal(a);",
            "    rb = $bitstoshortreal(b);",
            f"    {name} = $shortrealtobits(ra {operator} rb);",
            "  end",
            "endfunction",
            "",
        ]
    for name, operator in [("hermes_fcmp_eq", "=="), ("hermes_fcmp_ne", "!="),
                           ("hermes_fcmp_lt", "<"), ("hermes_fcmp_le", "<="),
                           ("hermes_fcmp_gt", ">"), ("hermes_fcmp_ge", ">=")]:
        lines += [
            f"function [0:0] {name};",
            "  input [31:0] a;",
            "  input [31:0] b;",
            "  begin",
            f"    {name} = $bitstoshortreal(a) {operator} "
            "$bitstoshortreal(b);",
            "  end",
            "endfunction",
            "",
        ]
    lines += [
        "function [31:0] hermes_fsqrt;",
        "  input [31:0] a;",
        "  begin",
        "    hermes_fsqrt = $shortrealtobits($sqrt($bitstoshortreal(a)));",
        "  end",
        "endfunction",
        "",
        "function [31:0] hermes_i2f;",
        "  input [31:0] a;",
        "  begin",
        "    hermes_i2f = $shortrealtobits(1.0 * $signed(a));",
        "  end",
        "endfunction",
        "",
        "function [31:0] hermes_f2i;",
        "  input [31:0] a;",
        "  begin",
        "    hermes_f2i = $rtoi($bitstoshortreal(a));",
        "  end",
        "endfunction",
    ]
    return "\n".join(lines) + "\n"
