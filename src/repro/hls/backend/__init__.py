"""Bambu-equivalent HLS back end: allocation, scheduling, binding, FSM,
datapath reporting, FSMD simulation and RTL emission (paper Fig. 2)."""

from .allocation import Allocation, OpTiming, allocate
from .binding import Binding, bind, bind_functional_units, bind_registers
from .datapath import AreaReport, DatapathReport, build_datapath_report
from .dfg import BlockDFG, build_dfg
from .fsm import FSM, build_fsm
from .scheduling import (
    BlockSchedule,
    FunctionSchedule,
    ScheduledOp,
    SchedulingError,
    alap_schedule,
    asap_schedule,
    schedule_block,
    schedule_function,
)
from .simulate import FsmdSimulator, SimulationTrace
from .verify import verify_schedule
from .verilog import generate_fp_support_library, generate_verilog

__all__ = [
    "Allocation", "OpTiming", "allocate",
    "Binding", "bind", "bind_functional_units", "bind_registers",
    "AreaReport", "DatapathReport", "build_datapath_report",
    "BlockDFG", "build_dfg",
    "FSM", "build_fsm",
    "BlockSchedule", "FunctionSchedule", "ScheduledOp", "SchedulingError",
    "alap_schedule", "asap_schedule", "schedule_block", "schedule_function",
    "FsmdSimulator", "SimulationTrace",
    "verify_schedule",
    "generate_fp_support_library", "generate_verilog",
]
