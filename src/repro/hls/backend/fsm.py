"""Finite-state-machine controller generation from a schedule.

Each basic block contributes ``length`` states; an extra IDLE state waits
for ``start`` and a DONE state raises ``done``.  The state count is the
controller-complexity metric that the paper's dataflow extension (§II)
attacks for task-parallel ML applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir import Branch, Jump, Return
from .scheduling import FunctionSchedule

IDLE = "S_IDLE"
DONE = "S_DONE"


def state_name(block: str, cycle: int) -> str:
    """HDL-legal state identifier for (block, cycle).

    Block names may contain dots (inlining prefixes, structured-control
    hints like ``if.then0``); identifiers must not.
    """
    return f"S_{block.replace('.', '_')}_{cycle}"


@dataclass
class Transition:
    """Conditional next-state edge. ``condition`` is None for default."""

    target: str
    condition: Optional[object] = None   # IR Value (branch condition)
    negate: bool = False


@dataclass
class State:
    name: str
    block: Optional[str]       # owning basic block (None for IDLE/DONE)
    cycle: int                 # cycle index inside the block
    transitions: List[Transition] = field(default_factory=list)
    is_wait: bool = False      # stalls on variable-latency ops (calls/AXI)


@dataclass
class FSM:
    states: Dict[str, State] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    entry: str = IDLE

    @property
    def state_count(self) -> int:
        return len(self.order)

    def state_bits(self) -> int:
        count = max(1, self.state_count)
        return max(1, (count - 1).bit_length())

    def state_name(self, block: str, cycle: int) -> str:
        return state_name(block, cycle)

    def add(self, state: State) -> State:
        self.states[state.name] = state
        self.order.append(state.name)
        return state


def build_fsm(schedule: FunctionSchedule) -> FSM:
    """Construct the controller FSM for a scheduled function."""
    func = schedule.function
    fsm = FSM()
    idle = fsm.add(State(IDLE, None, 0))
    entry_first = state_name(func.entry, 0)
    idle.transitions.append(Transition(entry_first))

    from ..ir import Call

    for name in func.block_order:
        block = func.blocks[name]
        block_sched = schedule.blocks[name]
        for cycle in range(block_sched.length):
            state = fsm.add(State(state_name(name, cycle), name, cycle))
            # Mark wait states: a user-function call stalls its state
            # until the callee raises done.
            for entry in block_sched.ops_starting_at(cycle):
                if isinstance(entry.op, Call) and entry.op.callee != "sqrtf":
                    state.is_wait = True
            if cycle < block_sched.length - 1:
                state.transitions.append(
                    Transition(state_name(name, cycle + 1)))
            else:
                term = block.terminator
                if isinstance(term, Jump):
                    state.transitions.append(
                        Transition(state_name(term.target, 0)))
                elif isinstance(term, Branch):
                    state.transitions.append(
                        Transition(state_name(term.if_true, 0),
                                   condition=term.cond))
                    state.transitions.append(
                        Transition(state_name(term.if_false, 0),
                                   condition=term.cond, negate=True))
                elif isinstance(term, Return):
                    state.transitions.append(Transition(DONE))
    done = fsm.add(State(DONE, None, 0))
    done.transitions.append(Transition(IDLE))
    return fsm
