"""Functional-unit and register binding (left-edge interval allocation).

Two operations can share a functional unit when their busy intervals never
overlap; since the controller is a single FSM, operations in *different*
basic blocks never execute simultaneously, so conflicts only arise within
one block.  Register binding assigns storage to every value that crosses a
cycle (or block) boundary, sharing registers between values with disjoint
live intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import Function
from ..ir.values import Temp, Value, Var
from .allocation import Allocation
from .scheduling import BlockSchedule, FunctionSchedule


@dataclass
class FUBinding:
    """Mapping of operations to functional-unit instances."""

    instance_counts: Dict[str, int] = field(default_factory=dict)
    # (block name, op index within block) -> (resource class, instance id)
    assignment: Dict[Tuple[str, int], Tuple[str, int]] = field(
        default_factory=dict)

    def instances(self, resource_class: str) -> int:
        return self.instance_counts.get(resource_class, 0)


@dataclass
class Register:
    name: str
    width: int
    is_float: bool = False


@dataclass
class RegisterBinding:
    registers: List[Register] = field(default_factory=list)
    # Value -> register name
    assignment: Dict[Value, str] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.registers)

    def total_bits(self) -> int:
        return sum(r.width for r in self.registers)


@dataclass
class Binding:
    fu: FUBinding
    registers: RegisterBinding


def bind_functional_units(schedule: FunctionSchedule,
                          allocation: Allocation) -> FUBinding:
    """Left-edge FU binding per resource class.

    Within each block, ops of a class are sorted by start cycle and placed
    on the first instance whose previous occupant finished; the global
    instance count of a class is the maximum needed by any block.
    """
    binding = FUBinding()
    for block_name, block_sched in schedule.blocks.items():
        per_class: Dict[str, List[Tuple[int, int, int]]] = {}
        for index, entry in enumerate(block_sched.ops):
            cls = entry.op.resource_class
            if cls in ("none", "wire"):
                continue
            timing = allocation.op_timing(entry.op)
            busy_end = entry.start + max(1, timing.interval) - 1
            per_class.setdefault(cls, []).append((entry.start, busy_end,
                                                  index))
        for cls, intervals in per_class.items():
            intervals.sort()
            instance_free_at: List[int] = []
            for start, end, index in intervals:
                placed = False
                for instance, free_at in enumerate(instance_free_at):
                    if free_at < start:
                        instance_free_at[instance] = end
                        binding.assignment[(block_name, index)] = (cls,
                                                                   instance)
                        placed = True
                        break
                if not placed:
                    instance_free_at.append(end)
                    binding.assignment[(block_name, index)] = (
                        cls, len(instance_free_at) - 1)
            binding.instance_counts[cls] = max(
                binding.instance_counts.get(cls, 0), len(instance_free_at))
    return binding


def _value_width(value: Value) -> Tuple[int, bool]:
    from ..ir.types import FloatType, IntType
    ty = value.ty
    if isinstance(ty, IntType):
        return ty.width, False
    if isinstance(ty, FloatType):
        return ty.width, True
    return 32, False


def bind_registers(schedule: FunctionSchedule,
                   func: Optional[Function] = None) -> RegisterBinding:
    """Assign registers to values that live across cycle boundaries.

    * every ``Var`` (named storage) gets a dedicated register;
    * a ``Temp`` needs a register when its value is consumed after the
      cycle that produced it (a purely chained temp lives in wires);
    * temps with disjoint live intervals inside a block share registers of
      the same width class (left-edge), temps that escape their block get
      dedicated registers.
    """
    func = func or schedule.function
    binding = RegisterBinding()

    # Dedicated registers for Vars (parameters included).
    seen_vars: Dict[Value, None] = {}
    for param in func.scalar_params():
        seen_vars[Var(param.name, param.type)] = None
    for block in func.ordered_blocks():
        for op in block.all_ops():
            for value in list(op.inputs()) + ([op.output()] if op.output()
                                              else []):
                if isinstance(value, Var):
                    seen_vars[value] = None
    for var in seen_vars:
        width, is_float = _value_width(var)
        name = f"reg_{var.name.replace('.', '_')}"
        binding.registers.append(Register(name, width, is_float))
        binding.assignment[var] = name

    # Temps: find defs/uses per block.
    temp_def_block: Dict[Value, str] = {}
    temp_use_blocks: Dict[Value, set] = {}
    for block in func.ordered_blocks():
        for op in block.all_ops():
            out = op.output()
            if isinstance(out, Temp):
                temp_def_block[out] = block.name
            for value in op.inputs():
                if isinstance(value, Temp):
                    temp_use_blocks.setdefault(value, set()).add(block.name)

    escaping = {t for t, uses in temp_use_blocks.items()
                if t in temp_def_block and uses - {temp_def_block[t]}}
    for temp in sorted(escaping, key=lambda t: t.index):
        width, is_float = _value_width(temp)
        name = f"reg_t{temp.index}"
        binding.registers.append(Register(name, width, is_float))
        binding.assignment[temp] = name

    # Block-local temps: left-edge sharing per width class.
    pools: Dict[Tuple[int, bool], List[Tuple[int, str]]] = {}
    pool_counter: Dict[Tuple[int, bool], int] = {}
    for block_name, block_sched in schedule.blocks.items():
        intervals = _temp_intervals(block_sched)
        # The branch condition is read in the final state of the block.
        block = func.blocks.get(block_name)
        if block is not None and block.terminator is not None:
            for value in block.terminator.inputs():
                if isinstance(value, Temp) and value in intervals:
                    birth, death = intervals[value]
                    intervals[value] = (
                        birth, max(death, block_sched.terminator_state))
        # Reset pool availability for each block (blocks don't overlap in
        # time, so instances are reusable; availability resets).
        available: Dict[Tuple[int, bool], List[Tuple[int, str]]] = {}
        for temp, (birth, death) in sorted(intervals.items(),
                                           key=lambda kv: kv[1][0]):
            if temp in binding.assignment or temp in escaping:
                continue
            if birth >= death:
                continue  # purely chained: no register needed
            width, is_float = _value_width(temp)
            key = (width, is_float)
            slots = available.setdefault(key, [])
            placed = False
            for i, (free_at, name) in enumerate(slots):
                if free_at <= birth:
                    slots[i] = (death, name)
                    binding.assignment[temp] = name
                    placed = True
                    break
            if not placed:
                count = pool_counter.get(key, 0)
                pool_counter[key] = count + 1
                name = f"reg_w{width}{'f' if is_float else ''}_{count}"
                register = Register(name, width, is_float)
                binding.registers.append(register)
                pools.setdefault(key, []).append((death, name))
                slots.append((death, name))
                binding.assignment[temp] = name
    return binding


def _temp_intervals(block_sched: BlockSchedule) -> Dict[Value, Tuple[int, int]]:
    """Live intervals of temps inside one scheduled block.

    The interval is ``(birth, death)`` where birth is the cycle after
    which the value sits in a register and death is the last cycle that
    reads the registered copy.  A temp only consumed through chaining in
    its production cycle gets ``birth == death`` (no register).
    """
    produced_at: Dict[Value, Tuple[int, bool]] = {}
    intervals: Dict[Value, Tuple[int, int]] = {}
    for entry in block_sched.ops:
        out = entry.op.output()
        if isinstance(out, Temp):
            comb = entry.cycles <= 1 and entry.ready_delay > 0
            birth = entry.start if comb else entry.start + entry.cycles - 1
            produced_at[out] = (birth, comb)
            intervals[out] = (birth, birth)
    for entry in block_sched.ops:
        for value in entry.op.inputs():
            if isinstance(value, Temp) and value in intervals:
                birth, death = intervals[value]
                read_cycle = entry.start
                prod_birth, comb = produced_at[value]
                if comb and read_cycle == prod_birth:
                    continue  # chained use, no register read
                intervals[value] = (birth, max(death, read_cycle))
    return intervals


def bind(schedule: FunctionSchedule, allocation: Allocation) -> Binding:
    """Complete binding step: functional units plus registers."""
    return Binding(fu=bind_functional_units(schedule, allocation),
                   registers=bind_registers(schedule))
