"""Operation scheduling under clock, dependence and resource constraints.

Implements the scheduling step of the Bambu backend (paper Fig. 2):

* **list scheduling** (default) — resource-constrained, with operator
  chaining: combinational operations share a cycle while the accumulated
  path delay fits the clock period;
* **ASAP / ALAP** — unconstrained schedules used for comparison and as
  priority functions (ALAP slack drives the list-scheduler priority).

Timing conventions:

* a combinational op scheduled at cycle ``s`` produces its value inside
  cycle ``s`` (consumers may chain in the same cycle, or read the
  registered copy from ``s+1`` onwards);
* a sequential op (latency ``L``) samples registered inputs at the start
  of ``s`` and its registered result is usable from cycle ``s+L``;
* the block executes states ``0 .. length-1``; the branch decision is
  taken in the last state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import Function
from ..ir.operations import Load, Store
from .allocation import Allocation, OpTiming
from .dfg import RAW, WAR, BlockDFG, build_dfg


class SchedulingError(Exception):
    pass


@dataclass
class ScheduledOp:
    op: object
    start: int                # first cycle of execution
    cycles: int               # latency (result usable at start+cycles)
    ready_delay: float        # intra-cycle delay at which the result is ready
    chained: bool             # True when it consumed a same-cycle input

    @property
    def completion(self) -> int:
        return self.start + max(1, self.cycles)

    @property
    def result_cycle(self) -> int:
        """First cycle in which the (registered) result can be consumed."""
        if self.cycles <= 1 and self.ready_delay > 0:
            return self.start  # combinational: usable within its own cycle
        return self.start + self.cycles


@dataclass
class BlockSchedule:
    name: str
    ops: List[ScheduledOp] = field(default_factory=list)
    length: int = 1
    terminator_state: int = 0

    def ops_starting_at(self, cycle: int) -> List[ScheduledOp]:
        return [s for s in self.ops if s.start == cycle]


@dataclass
class FunctionSchedule:
    function: Function
    clock_ns: float
    algorithm: str
    blocks: Dict[str, BlockSchedule] = field(default_factory=dict)

    @property
    def total_states(self) -> int:
        return sum(b.length for b in self.blocks.values())

    def static_latency(self) -> Optional[int]:
        """Worst-case cycle count when the CFG is loop-free (else ``None``)."""
        func = self.function
        color: Dict[str, int] = {}

        def acyclic(name: str) -> bool:
            color[name] = 1
            for succ in func.blocks[name].successors():
                state = color.get(succ, 0)
                if state == 1:
                    return False
                if state == 0 and not acyclic(succ):
                    return False
            color[name] = 2
            return True

        if not acyclic(func.entry):
            return None
        memo: Dict[str, int] = {}

        def longest(name: str) -> int:
            if name in memo:
                return memo[name]
            succs = func.blocks[name].successors()
            tail = max((longest(s) for s in succs), default=0)
            memo[name] = self.blocks[name].length + tail
            return memo[name]

        return longest(func.entry)


class _ResourceTracker:
    """Tracks functional-unit and memory-port occupancy per cycle."""

    def __init__(self, allocation: Allocation) -> None:
        self.allocation = allocation
        self._fu: Dict[Tuple[str, int], int] = {}
        self._ports: Dict[Tuple[str, int], int] = {}

    def fits(self, op, cycle: int, timing: OpTiming) -> bool:
        cls = op.resource_class
        if cls in ("none", "wire"):
            fu_ok = True
        else:
            limit = self.allocation.units_for(cls)
            span = range(cycle, cycle + max(1, timing.interval))
            fu_ok = all(self._fu.get((cls, c), 0) < limit for c in span)
        if not fu_ok:
            return False
        if isinstance(op, (Load, Store)):
            ports = self.allocation.ports_for(op.mem.name)
            span = range(cycle, cycle + max(1, timing.interval))
            return all(self._ports.get((op.mem.name, c), 0) < ports
                       for c in span)
        return True

    def commit(self, op, cycle: int, timing: OpTiming) -> None:
        cls = op.resource_class
        if cls not in ("none", "wire"):
            for c in range(cycle, cycle + max(1, timing.interval)):
                self._fu[(cls, c)] = self._fu.get((cls, c), 0) + 1
        if isinstance(op, (Load, Store)):
            for c in range(cycle, cycle + max(1, timing.interval)):
                key = (op.mem.name, c)
                self._ports[key] = self._ports.get(key, 0) + 1


def _earliest_start(node: int, op, timing: OpTiming, dfg: BlockDFG,
                    scheduled: Dict[int, ScheduledOp],
                    clock_ns: float) -> Tuple[int, float, bool]:
    """Earliest start cycle honouring dependence edges and chaining.

    Returns ``(start, input_ready_delay, chained)`` where
    ``input_ready_delay`` is the worst intra-cycle arrival time among
    inputs produced in the start cycle (0 when all inputs are registered).
    """
    start = 0
    for edge in dfg.preds(node):
        producer = scheduled.get(edge.src)
        if producer is None:
            continue
        if edge.kind == RAW:
            if producer.cycles <= 1 and producer.ready_delay > 0:
                # Combinational producer: either chain in the same cycle
                # or read the registered value one cycle later.
                if timing.chainable:
                    start = max(start, producer.start)
                else:
                    start = max(start, producer.start + 1)
            else:
                start = max(start, producer.start + producer.cycles)
        elif edge.kind == WAR:
            start = max(start, producer.start)
        else:  # ORDER
            start = max(start, producer.start + max(1, producer.cycles))
    # Chaining legality: compute the arrival time of same-cycle inputs.
    while True:
        arrival = 0.0
        for edge in dfg.preds(node):
            producer = scheduled.get(edge.src)
            if producer is None or edge.kind != RAW:
                continue
            if producer.cycles <= 1 and producer.ready_delay > 0 \
                    and producer.start == start:
                arrival = max(arrival, producer.ready_delay)
        if not timing.chainable and arrival > 0:
            start += 1
            continue
        if timing.chainable and arrival + timing.delay_ns > clock_ns \
                and arrival > 0:
            # The chain would violate the clock: take the registered input.
            start += 1
            continue
        return start, arrival, arrival > 0


def schedule_block(block, allocation: Allocation, clock_ns: float,
                   resource_constrained: bool = True,
                   tracker: Optional[_ResourceTracker] = None
                   ) -> BlockSchedule:
    """List-schedule one block (block order is a valid topological order)."""
    dfg = build_dfg(block)
    tracker = tracker or _ResourceTracker(allocation)
    scheduled: Dict[int, ScheduledOp] = {}
    result = BlockSchedule(block.name)
    for node, op in enumerate(block.ops):
        timing = allocation.op_timing(op)
        start, arrival, chained = _earliest_start(
            node, op, timing, dfg, scheduled, clock_ns)
        if resource_constrained:
            guard = 0
            while not tracker.fits(op, start, timing):
                start += 1
                # Once a new cycle begins no inputs chain any more.
                arrival, chained = 0.0, False
                guard += 1
                if guard > 100_000:  # pragma: no cover - defensive
                    raise SchedulingError(
                        f"cannot place {op} in block {block.name}")
            tracker.commit(op, start, timing)
        ready_delay = 0.0
        if timing.cycles <= 1 and timing.chainable:
            ready_delay = (arrival if chained else 0.0) + timing.delay_ns
            if ready_delay > clock_ns:
                ready_delay = clock_ns  # clipped; Fmax limited by this op
        entry = ScheduledOp(op=op, start=start, cycles=timing.cycles,
                            ready_delay=ready_delay, chained=chained)
        scheduled[node] = entry
        result.ops.append(entry)
    # Terminator: the branch decision happens in the last state.
    term_state = 0
    if block.terminator is not None:
        node = len(block.ops)
        for edge in dfg.preds(node):
            producer = scheduled.get(edge.src)
            if producer is None:
                continue
            if edge.kind == RAW:
                if producer.cycles <= 1 and producer.ready_delay > 0:
                    term_state = max(term_state, producer.start)
                else:
                    term_state = max(term_state,
                                     producer.start + producer.cycles)
            else:
                term_state = max(term_state,
                                 producer.start + max(1, producer.cycles) - 1)
    length = term_state + 1
    for entry in result.ops:
        length = max(length, entry.completion)
    result.length = max(1, length)
    result.terminator_state = result.length - 1
    return result


def schedule_function(func: Function, allocation: Allocation,
                      algorithm: str = "list") -> FunctionSchedule:
    """Schedule every block of ``func``.

    Algorithms: ``list`` (resource constrained, default), ``asap``
    (dependence-only) — ALAP is available per block via
    :func:`alap_schedule` for slack analysis.
    """
    if algorithm not in ("list", "asap"):
        raise SchedulingError(f"unknown scheduling algorithm {algorithm!r}")
    clock = allocation.clock_ns
    schedule = FunctionSchedule(function=func, clock_ns=clock,
                                algorithm=algorithm)
    for block in func.ordered_blocks():
        schedule.blocks[block.name] = schedule_block(
            block, allocation, clock,
            resource_constrained=(algorithm == "list"))
    return schedule


def asap_schedule(block, allocation: Allocation) -> BlockSchedule:
    """Dependence-only schedule (infinite resources)."""
    return schedule_block(block, allocation, allocation.clock_ns,
                          resource_constrained=False)


def alap_schedule(block, allocation: Allocation) -> Dict[int, int]:
    """ALAP start cycles given the ASAP length (for slack/priority)."""
    asap = asap_schedule(block, allocation)
    length = asap.length
    dfg = build_dfg(block)
    latest: Dict[int, int] = {}
    for node in reversed(range(len(block.ops))):
        timing = allocation.op_timing(block.ops[node])
        bound = length - max(1, timing.cycles)
        for edge in dfg.succs(node):
            if edge.dst >= len(block.ops):
                continue
            succ_start = latest.get(edge.dst, bound)
            if edge.kind == RAW:
                bound = min(bound, succ_start - max(1, timing.cycles))
            elif edge.kind == WAR:
                bound = min(bound, succ_start)
            else:
                bound = min(bound, succ_start - max(1, timing.cycles))
        latest[node] = max(0, bound)
    return latest
