"""Cycle-accurate execution of scheduled designs (FSMD simulation).

This plays the role RTL simulation plays in the Bambu flow: the generated
design is executed state by state, producing both the functional results
(checked against the IR interpreter by the testbench) and the dynamic
cycle count used in the performance reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir import Call, Function, Module
from ..ir.interp import Interpreter, Memory
from ..ir.operations import Branch, Jump, Load, Return, Store
from .allocation import Allocation
from .scheduling import FunctionSchedule

# Cycles consumed by the start/done handshake of a sub-module call.
CALL_HANDSHAKE_CYCLES = 2


class SimulationError(Exception):
    pass


@dataclass
class SimulationTrace:
    """Execution trace of one FSMD run."""

    blocks: List[str] = field(default_factory=list)
    cycles: int = 0
    calls: Dict[str, int] = field(default_factory=dict)
    mem_reads: int = 0
    mem_writes: int = 0
    # (function, block) -> cumulative cycles spent there (profiling).
    block_cycles: Dict[tuple, int] = field(default_factory=dict)
    block_visits: Dict[tuple, int] = field(default_factory=dict)

    @property
    def states_visited(self) -> int:
        return self.cycles

    def hot_blocks(self, top: int = 5) -> List[tuple]:
        """The costliest (function, block, cycles, visits) entries."""
        ranked = sorted(self.block_cycles.items(), key=lambda kv: -kv[1])
        return [(func, block, cycles,
                 self.block_visits.get((func, block), 0))
                for (func, block), cycles in ranked[:top]]


class FsmdSimulator:
    """Executes scheduled functions with dynamic cycle accounting.

    Functional semantics are delegated to the same evaluation rules as the
    IR interpreter (they are identical by construction once the schedule
    is verified legal); what this adds is the FSM walk: per-block state
    counts, variable-latency call stalls and the final cycle total.
    """

    def __init__(self, module: Module,
                 schedules: Dict[str, FunctionSchedule],
                 allocations: Dict[str, Allocation],
                 max_cycles: int = 50_000_000) -> None:
        self.module = module
        self.schedules = schedules
        self.allocations = allocations
        self.max_cycles = max_cycles
        self._interp = Interpreter(module)

    def run(self, func_name: str, args: Sequence = (),
            mem_args: Optional[Dict[str, object]] = None):
        """Run ``func_name``; returns ``(result, trace, memories)``."""
        func = self.module[func_name]
        trace = SimulationTrace()
        env: Dict[object, object] = {}
        from ..ir.values import Var
        scalar_params = func.scalar_params()
        if len(args) != len(scalar_params):
            raise SimulationError(
                f"{func_name} expects {len(scalar_params)} args")
        for param, value in zip(scalar_params, args):
            env[Var(param.name, param.type)] = self._interp._coerce_scalar(
                value, param.type)
        memories: Dict[str, Memory] = {}
        mem_args = dict(mem_args or {})
        for name, mem in func.mems.items():
            if mem.is_param:
                supplied = mem_args.get(name)
                if supplied is None:
                    raise SimulationError(f"missing memory argument {name!r}")
                if isinstance(supplied, Memory):
                    memories[name] = supplied
                else:
                    memories[name] = Memory(mem, data=list(supplied),
                                            size=len(supplied))
            else:
                memories[name] = self._interp._memory_for(mem)
        result = self._run_function(func, env, memories, trace)
        return result, trace, memories

    # -- internals -------------------------------------------------------

    def _run_function(self, func: Function, env, memories, trace,
                     base_cycles: int = 0):
        schedule = self.schedules[func.name]
        block = func.blocks[func.entry]
        visits = 0
        while True:
            block_sched = schedule.blocks[block.name]
            trace.blocks.append(block.name)
            trace.cycles += block_sched.length
            key = (func.name, block.name)
            trace.block_cycles[key] = trace.block_cycles.get(key, 0) \
                + block_sched.length
            trace.block_visits[key] = trace.block_visits.get(key, 0) + 1
            # ``base_cycles`` charges this walk against the *global*
            # budget (cycles already consumed by callers and earlier
            # calls), not a fresh per-call allowance; the visit counter
            # catches zero-length self-loops that never advance cycles.
            visits += 1
            if (base_cycles + trace.cycles > self.max_cycles
                    or visits > self.max_cycles):
                raise SimulationError(f"{func.name}: cycle limit exceeded")
            for op in block.ops:
                if isinstance(op, Call) and op.callee != "sqrtf":
                    self._run_call(func, op, env, memories, trace,
                                   base_cycles)
                else:
                    if isinstance(op, Load):
                        trace.mem_reads += 1
                    elif isinstance(op, Store):
                        trace.mem_writes += 1
                    self._interp._exec_op(func, op, env, memories)
            term = block.terminator
            if isinstance(term, Return):
                if term.value is None:
                    return None
                return self._interp._value(term.value, env)
            if isinstance(term, Jump):
                block = func.blocks[term.target]
            elif isinstance(term, Branch):
                cond = self._interp._value(term.cond, env)
                block = func.blocks[term.if_true if cond
                                    else term.if_false]
            else:  # pragma: no cover - verified IR always terminates
                raise SimulationError(f"bad terminator in {block.name}")

    def _run_call(self, caller: Function, op: Call, env, memories, trace,
                  base_cycles: int = 0):
        callee = self.module[op.callee]
        sub_env: Dict[object, object] = {}
        from ..ir.values import Var
        for param, arg in zip(callee.scalar_params(), op.args):
            sub_env[Var(param.name, param.type)] = \
                self._interp._coerce_scalar(self._interp._value(arg, env),
                                            param.type)
        sub_mems: Dict[str, Memory] = {}
        for param, mem_arg in zip(callee.memory_params(), op.mem_args):
            sub_mems[param.name] = memories[mem_arg.name]
        for name, mem in callee.mems.items():
            if not mem.is_param and name not in sub_mems:
                sub_mems[name] = self._interp._memory_for(mem)
        sub_trace = SimulationTrace()
        value = self._run_function(callee, sub_env, sub_mems, sub_trace,
                                   base_cycles + trace.cycles)
        # The caller's schedule already budgeted the estimated latency;
        # replace it with the measured callee cycles plus the handshake.
        allocation = self.allocations[caller.name]
        estimated = max(1, allocation.call_latency.get(op.callee, 1))
        actual = sub_trace.cycles + CALL_HANDSHAKE_CYCLES
        trace.cycles += max(0, actual - estimated)
        trace.calls[op.callee] = trace.calls.get(op.callee, 0) + 1
        trace.mem_reads += sub_trace.mem_reads
        trace.mem_writes += sub_trace.mem_writes
        for name, count in sub_trace.calls.items():
            trace.calls[name] = trace.calls.get(name, 0) + count
        for key, cycles in sub_trace.block_cycles.items():
            trace.block_cycles[key] = trace.block_cycles.get(key, 0) + cycles
        for key, visits in sub_trace.block_visits.items():
            trace.block_visits[key] = trace.block_visits.get(key, 0) + visits
        if op.dst is not None:
            env[op.dst] = value
