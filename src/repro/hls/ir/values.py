"""Value operands of the HLS IR.

Three kinds of values flow through operations:

* :class:`Const` — compile-time constant (integer or float).
* :class:`Var` — named storage declared in the source program (parameters
  and locals); a ``Var`` lives in a register between basic blocks.
* :class:`Temp` — compiler temporary produced by exactly one operation
  inside a basic block (single assignment within the block).

Arrays are represented by :class:`MemObject`, which loads and stores refer
to by name; they are mapped to BRAM or external (AXI) memory during
interface synthesis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .types import ArrayType, FloatType, IntType, PointerType, Type


@dataclass(frozen=True)
class Value:
    """Base class for IR operands."""

    @property
    def ty(self) -> Type:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Value):
    value: object
    type: Type

    @property
    def ty(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return f"{self.value}:{self.type}"


@dataclass(frozen=True)
class Var(Value):
    name: str
    type: Type

    @property
    def ty(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Temp(Value):
    index: int
    type: Type

    @property
    def ty(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return f"t{self.index}"


@dataclass
class MemObject:
    """An addressable memory object (local array or pointer parameter).

    ``storage`` selects where interface synthesis maps it:

    * ``"bram"``   — on-chip true-dual-port RAM (NG-ULTRA TDPRAM);
    * ``"axi"``    — external memory behind a generated AXI4 master;
    * ``"rom"``    — constant initialized array, mapped to ROM.
    """

    name: str
    element: Type
    size: int
    dims: tuple = ()
    storage: str = "bram"
    initializer: list = field(default_factory=list)
    is_param: bool = False
    is_global: bool = False
    # SEU protection scheme applied by ``#pragma HLS protect`` ("none",
    # "ecc", "secded" or "tmr"); the radhard package owns the vocabulary.
    protection: str = "none"

    @property
    def ty(self) -> Type:
        if self.dims:
            return ArrayType(self.element, self.dims)
        return PointerType(self.element)

    def flat_index(self, indices) -> int:
        """Row-major flattening of a multidimensional index."""
        if not self.dims:
            (index,) = indices
            return index
        assert len(indices) == len(self.dims)
        flat = 0
        for idx, dim in zip(indices, self.dims):
            flat = flat * dim + idx
        return flat

    def __str__(self) -> str:
        return f"@{self.name}"


class TempFactory:
    """Allocates fresh :class:`Temp` values with unique indices."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def new(self, ty: Type) -> Temp:
        return Temp(next(self._counter), ty)


def const_int(value: int, ty: IntType) -> Const:
    return Const(ty.wrap(int(value)), ty)


def const_float(value: float, ty: FloatType) -> Const:
    return Const(ty.round(float(value)), ty)
