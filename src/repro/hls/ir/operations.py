"""Operations of the HLS IR.

Each operation names the functional-unit *resource class* it occupies when
scheduled (``resource_class``); the Eucalyptus characterization library is
keyed by these class names plus operand bit widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .types import FloatType, IntType, Type
from .values import MemObject, Value

# Binary operator mnemonics understood by the IR.
BINARY_OPS = {
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
}
UNARY_OPS = {"neg", "not", "bnot"}

_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}

# Map operator mnemonic -> functional unit resource class used during
# allocation/binding.  Adders and subtractors share hardware; comparisons
# use a dedicated comparator class; shifts use barrel shifters.
_RESOURCE_CLASS = {
    "add": "addsub", "sub": "addsub",
    "mul": "mult", "div": "divider", "rem": "divider",
    "and": "logic", "or": "logic", "xor": "logic",
    "shl": "shifter", "shr": "shifter",
    "eq": "comparator", "ne": "comparator",
    "lt": "comparator", "le": "comparator",
    "gt": "comparator", "ge": "comparator",
    "neg": "addsub", "not": "logic", "bnot": "logic",
    "fadd": "faddsub", "fsub": "faddsub", "fmul": "fmult",
    "fdiv": "fdivider",
    "fneg": "flogic",
    "feq": "fcomparator", "fne": "fcomparator",
    "flt": "fcomparator", "fle": "fcomparator",
    "fgt": "fcomparator", "fge": "fcomparator",
}


@dataclass
class Operation:
    """Base class for IR operations."""

    def inputs(self) -> List[Value]:
        return []

    def output(self) -> Optional[Value]:
        return None

    def replace_input(self, old: Value, new: Value) -> None:
        """Replace every occurrence of ``old`` among the inputs by ``new``."""
        raise NotImplementedError

    @property
    def resource_class(self) -> str:
        return "none"

    @property
    def has_side_effects(self) -> bool:
        return False


@dataclass
class BinOp(Operation):
    op: str
    dst: Value
    lhs: Value
    rhs: Value

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def inputs(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        if self.lhs == old:
            self.lhs = new
        if self.rhs == old:
            self.rhs = new

    @property
    def is_float(self) -> bool:
        return isinstance(self.lhs.ty, FloatType)

    @property
    def mnemonic(self) -> str:
        return ("f" + self.op) if self.is_float else self.op

    @property
    def resource_class(self) -> str:
        return _RESOURCE_CLASS[self.mnemonic]

    @property
    def is_comparison(self) -> bool:
        return self.op in _COMPARISONS

    def __str__(self) -> str:
        return f"{self.dst} = {self.mnemonic} {self.lhs}, {self.rhs}"


@dataclass
class UnOp(Operation):
    op: str
    dst: Value
    src: Value

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def inputs(self) -> List[Value]:
        return [self.src]

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new

    @property
    def mnemonic(self) -> str:
        if isinstance(self.src.ty, FloatType) and self.op == "neg":
            return "fneg"
        return self.op

    @property
    def resource_class(self) -> str:
        return _RESOURCE_CLASS[self.mnemonic]

    def __str__(self) -> str:
        return f"{self.dst} = {self.mnemonic} {self.src}"


@dataclass
class Assign(Operation):
    """Register-to-register move (also used for constants)."""

    dst: Value
    src: Value

    def inputs(self) -> List[Value]:
        return [self.src]

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new

    @property
    def resource_class(self) -> str:
        return "wire"

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class Cast(Operation):
    """Width/signedness/float conversion."""

    dst: Value
    src: Value

    def inputs(self) -> List[Value]:
        return [self.src]

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new

    @property
    def resource_class(self) -> str:
        src, dst = self.src.ty, self.dst.ty
        if isinstance(src, FloatType) != isinstance(dst, FloatType):
            return "fconvert"
        return "wire"

    def __str__(self) -> str:
        return f"{self.dst} = cast {self.src} to {self.dst.ty}"


@dataclass
class Load(Operation):
    """``dst = mem[index]`` — read from a memory object."""

    dst: Value
    mem: MemObject
    index: Value

    def inputs(self) -> List[Value]:
        return [self.index]

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        if self.index == old:
            self.index = new

    @property
    def resource_class(self) -> str:
        return "mem_axi" if self.mem.storage == "axi" else "mem_bram"

    @property
    def has_side_effects(self) -> bool:
        # Loads are idempotent but must stay ordered w.r.t. stores; the
        # dependence graph handles that, so no side effect flag.
        return False

    def __str__(self) -> str:
        return f"{self.dst} = load {self.mem}[{self.index}]"


@dataclass
class Store(Operation):
    """``mem[index] = src`` — write to a memory object."""

    mem: MemObject
    index: Value
    src: Value

    def inputs(self) -> List[Value]:
        return [self.index, self.src]

    def output(self) -> Optional[Value]:
        return None

    def replace_input(self, old: Value, new: Value) -> None:
        if self.index == old:
            self.index = new
        if self.src == old:
            self.src = new

    @property
    def resource_class(self) -> str:
        return "mem_axi" if self.mem.storage == "axi" else "mem_bram"

    @property
    def has_side_effects(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"store {self.mem}[{self.index}] = {self.src}"


@dataclass
class Call(Operation):
    """Call to another HLS function (instantiated as a sub-module)."""

    dst: Optional[Value]
    callee: str
    args: List[Value] = field(default_factory=list)
    # Memory objects passed by reference (arrays / pointers).
    mem_args: List[MemObject] = field(default_factory=list)

    def inputs(self) -> List[Value]:
        return list(self.args)

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        self.args = [new if a == old else a for a in self.args]

    @property
    def resource_class(self) -> str:
        return f"call:{self.callee}"

    @property
    def has_side_effects(self) -> bool:
        return True

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args + self.mem_args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass
class Select(Operation):
    """``dst = cond ? if_true : if_false`` — multiplexer."""

    dst: Value
    cond: Value
    if_true: Value
    if_false: Value

    def inputs(self) -> List[Value]:
        return [self.cond, self.if_true, self.if_false]

    def output(self) -> Optional[Value]:
        return self.dst

    def replace_input(self, old: Value, new: Value) -> None:
        if self.cond == old:
            self.cond = new
        if self.if_true == old:
            self.if_true = new
        if self.if_false == old:
            self.if_false = new

    @property
    def resource_class(self) -> str:
        return "mux"

    def __str__(self) -> str:
        return f"{self.dst} = select {self.cond}, {self.if_true}, {self.if_false}"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass
class Terminator(Operation):
    @property
    def has_side_effects(self) -> bool:
        return True


@dataclass
class Jump(Terminator):
    target: str

    def replace_input(self, old: Value, new: Value) -> None:
        pass

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class Branch(Terminator):
    cond: Value
    if_true: str
    if_false: str

    def inputs(self) -> List[Value]:
        return [self.cond]

    def replace_input(self, old: Value, new: Value) -> None:
        if self.cond == old:
            self.cond = new

    def __str__(self) -> str:
        return f"branch {self.cond} ? {self.if_true} : {self.if_false}"


@dataclass
class Return(Terminator):
    value: Optional[Value] = None

    def inputs(self) -> List[Value]:
        return [] if self.value is None else [self.value]

    def replace_input(self, old: Value, new: Value) -> None:
        if self.value == old:
            self.value = new

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


def operand_width(op: Operation) -> int:
    """Widest operand width, used as the characterization key."""
    widths = [8]
    for value in list(op.inputs()) + ([op.output()] if op.output() else []):
        ty = value.ty
        if isinstance(ty, (IntType, FloatType)):
            widths.append(ty.width)
    return max(widths)


def eval_binop(op: str, lhs, rhs, result_ty: Type):
    """Bit-accurate constant evaluation of a binary operation."""
    if isinstance(result_ty, FloatType) and op not in _COMPARISONS:
        ops = {
            "add": lambda a, b: a + b,
            "sub": lambda a, b: a - b,
            "mul": lambda a, b: a * b,
            "div": lambda a, b: a / b if b != 0 else float("inf"),
        }
        if op not in ops:
            raise ValueError(f"float op {op} unsupported")
        return result_ty.round(ops[op](lhs, rhs))
    if op in _COMPARISONS:
        table = {
            "eq": lhs == rhs, "ne": lhs != rhs, "lt": lhs < rhs,
            "le": lhs <= rhs, "gt": lhs > rhs, "ge": lhs >= rhs,
        }
        return 1 if table[op] else 0
    assert isinstance(result_ty, IntType)
    lhs, rhs = int(lhs), int(rhs)
    if op == "add":
        raw = lhs + rhs
    elif op == "sub":
        raw = lhs - rhs
    elif op == "mul":
        raw = lhs * rhs
    elif op == "div":
        raw = 0 if rhs == 0 else int(lhs / rhs)  # C truncating division
    elif op == "rem":
        raw = 0 if rhs == 0 else lhs - int(lhs / rhs) * rhs
    elif op == "and":
        raw = lhs & rhs
    elif op == "or":
        raw = lhs | rhs
    elif op == "xor":
        raw = lhs ^ rhs
    elif op == "shl":
        raw = lhs << (rhs & (result_ty.width - 1) if rhs >= result_ty.width else rhs)
    elif op == "shr":
        shift = rhs if rhs < result_ty.width else result_ty.width - 1
        if result_ty.signed:
            raw = lhs >> shift
        else:
            mask = (1 << result_ty.width) - 1
            raw = (lhs & mask) >> shift
    else:  # pragma: no cover - guarded by BINARY_OPS
        raise ValueError(op)
    return result_ty.wrap(raw)


def eval_unop(op: str, src, result_ty: Type):
    """Bit-accurate constant evaluation of a unary operation."""
    if isinstance(result_ty, FloatType):
        if op == "neg":
            return result_ty.round(-src)
        raise ValueError(f"float unary op {op} unsupported")
    assert isinstance(result_ty, IntType)
    if op == "neg":
        return result_ty.wrap(-int(src))
    if op == "not":
        return 0 if src else 1
    if op == "bnot":
        return result_ty.wrap(~int(src))
    raise ValueError(op)
