"""Reference interpreter for the HLS IR.

Executes a function with bit-accurate C semantics.  It is the golden model
against which the scheduled FSMD simulation (and ultimately the generated
RTL) is checked, mirroring the role of C/RTL co-simulation in the Bambu
flow described in the paper.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Union

from .cfg import Function, Module
from .operations import (
    Assign,
    BinOp,
    Branch,
    Call,
    Cast,
    Jump,
    Load,
    Return,
    Select,
    Store,
    UnOp,
    eval_binop,
    eval_unop,
)
from .types import FloatType, IntType
from .values import Const, MemObject, Temp, Value, Var


class InterpError(Exception):
    pass


class Memory:
    """Backing store for one memory object during interpretation."""

    def __init__(self, mem: MemObject, data: Optional[Sequence] = None,
                 size: Optional[int] = None) -> None:
        self.mem = mem
        length = size if size is not None else mem.size
        if data is not None:
            self.data = list(data)
            if length and len(self.data) < length:
                self.data.extend([0] * (length - len(self.data)))
        else:
            self.data = [0] * length
            for index, value in enumerate(mem.initializer):
                self.data[index] = self._wrap(value)

    def _wrap(self, value):
        if isinstance(self.mem.element, IntType):
            return self.mem.element.wrap(int(value))
        if isinstance(self.mem.element, FloatType):
            return self.mem.element.round(float(value))
        return value

    def load(self, index: int):
        if not 0 <= index < len(self.data):
            raise InterpError(
                f"out-of-bounds read {self.mem.name}[{index}] "
                f"(size {len(self.data)})")
        return self.data[index]

    def store(self, index: int, value) -> None:
        if not 0 <= index < len(self.data):
            raise InterpError(
                f"out-of-bounds write {self.mem.name}[{index}] "
                f"(size {len(self.data)})")
        self.data[index] = self._wrap(value)


class Interpreter:
    """Executes IR functions; collects dynamic statistics."""

    def __init__(self, module: Module, max_steps: int = 10_000_000) -> None:
        self.module = module
        self.max_steps = max_steps
        self.op_count = 0
        self.mem_reads = 0
        self.mem_writes = 0
        # Global arrays are shared across all functions of the module.
        self._globals: Dict[str, Memory] = {}

    def _memory_for(self, mem: MemObject) -> Memory:
        if mem.is_global:
            if mem.name not in self._globals:
                self._globals[mem.name] = Memory(mem)
            return self._globals[mem.name]
        return Memory(mem)

    def run(self, func_name: str, args: Sequence = (),
            mem_args: Optional[Dict[str, Union[Memory, Sequence]]] = None):
        """Execute ``func_name``.

        ``args`` supplies the scalar parameters in order; ``mem_args`` maps
        memory-parameter names to :class:`Memory` objects or plain
        sequences (converted in place, mutations visible to the caller via
        the returned ``Memory``).  Returns ``(return_value, memories)``.
        """
        func = self.module[func_name]
        scalar_params = func.scalar_params()
        if len(args) != len(scalar_params):
            raise InterpError(
                f"{func_name} expects {len(scalar_params)} scalar args, "
                f"got {len(args)}")
        env: Dict[Value, object] = {}
        for param, value in zip(scalar_params, args):
            var = Var(param.name, param.type)
            env[var] = self._coerce_scalar(value, param.type)
        memories: Dict[str, Memory] = {}
        mem_args = dict(mem_args or {})
        for name, mem in func.mems.items():
            if mem.is_param:
                if name not in mem_args:
                    raise InterpError(f"missing memory argument {name!r}")
                supplied = mem_args[name]
                if isinstance(supplied, Memory):
                    memories[name] = supplied
                else:
                    memories[name] = Memory(mem, data=list(supplied),
                                            size=len(supplied))
            else:
                memories[name] = self._memory_for(mem)
        result = self._exec_function(func, env, memories)
        return result, memories

    # -- execution ------------------------------------------------------

    def _exec_function(self, func: Function, env: Dict[Value, object],
                       memories: Dict[str, Memory]):
        block = func.blocks[func.entry]
        steps = 0
        while True:
            for op in block.ops:
                steps += 1
                if steps > self.max_steps:
                    raise InterpError(f"{func.name}: step limit exceeded")
                self._exec_op(func, op, env, memories)
            term = block.terminator
            self.op_count += 1
            if isinstance(term, Return):
                if term.value is None:
                    return None
                return self._value(term.value, env)
            if isinstance(term, Jump):
                block = func.blocks[term.target]
            elif isinstance(term, Branch):
                cond = self._value(term.cond, env)
                block = func.blocks[term.if_true if cond else term.if_false]
            else:
                raise InterpError(f"{func.name}: fell off block {block.name}")

    def _exec_op(self, func: Function, op, env: Dict[Value, object],
                 memories: Dict[str, Memory]) -> None:
        self.op_count += 1
        if isinstance(op, BinOp):
            lhs = self._value(op.lhs, env)
            rhs = self._value(op.rhs, env)
            # Comparisons take their semantics from the operand type
            # (signedness); other ops from the destination type.
            result_ty = op.lhs.ty if op.is_comparison else op.dst.ty
            env[op.dst] = eval_binop(op.op, lhs, rhs, result_ty)
        elif isinstance(op, UnOp):
            env[op.dst] = eval_unop(op.op, self._value(op.src, env), op.dst.ty)
        elif isinstance(op, Assign):
            env[op.dst] = self._coerce_scalar(self._value(op.src, env),
                                              op.dst.ty)
        elif isinstance(op, Cast):
            env[op.dst] = self._cast(self._value(op.src, env), op.src.ty,
                                     op.dst.ty)
        elif isinstance(op, Load):
            index = self._value(op.index, env)
            memory = memories[op.mem.name]
            env[op.dst] = memory.load(int(index))
            self.mem_reads += 1
        elif isinstance(op, Store):
            index = self._value(op.index, env)
            memory = memories[op.mem.name]
            memory.store(int(index), self._value(op.src, env))
            self.mem_writes += 1
        elif isinstance(op, Select):
            cond = self._value(op.cond, env)
            chosen = op.if_true if cond else op.if_false
            env[op.dst] = self._coerce_scalar(self._value(chosen, env),
                                              op.dst.ty)
        elif isinstance(op, Call):
            env_result = self._exec_call(op, env, memories)
            if op.dst is not None:
                env[op.dst] = env_result
        else:
            raise InterpError(f"cannot interpret {op}")

    def _exec_call(self, op: Call, env: Dict[Value, object],
                   memories: Dict[str, Memory]):
        if op.callee == "sqrtf":
            value = self._value(op.args[0], env)
            return FloatType(32).round(math.sqrt(max(0.0, value)))
        callee = self.module[op.callee]
        sub_env: Dict[Value, object] = {}
        for param, arg in zip(callee.scalar_params(), op.args):
            sub_env[Var(param.name, param.type)] = self._coerce_scalar(
                self._value(arg, env), param.type)
        sub_mems: Dict[str, Memory] = {}
        mem_params = callee.memory_params()
        if len(mem_params) != len(op.mem_args):
            raise InterpError(f"call {op.callee}: memory arity mismatch")
        for param, mem_arg in zip(mem_params, op.mem_args):
            sub_mems[param.name] = memories[mem_arg.name]
        for name, mem in callee.mems.items():
            if not mem.is_param and name not in sub_mems:
                sub_mems[name] = self._memory_for(mem)
        return self._exec_function(callee, sub_env, sub_mems)

    # -- value helpers ---------------------------------------------------

    @staticmethod
    def _value(value: Value, env: Dict[Value, object]):
        if isinstance(value, Const):
            return value.value
        if value in env:
            return env[value]
        if isinstance(value, (Var, Temp)):
            # Uninitialized variable: C gives indeterminate; we give 0 so
            # hardware and reference agree deterministically.
            if isinstance(value.ty, FloatType):
                return 0.0
            return 0
        raise InterpError(f"unbound value {value}")

    @staticmethod
    def _coerce_scalar(value, ty):
        if isinstance(ty, IntType):
            return ty.wrap(int(value))
        if isinstance(ty, FloatType):
            return ty.round(float(value))
        return value

    @staticmethod
    def _cast(value, src_ty, dst_ty):
        if isinstance(dst_ty, FloatType):
            return dst_ty.round(float(value))
        if isinstance(src_ty, FloatType) and isinstance(dst_ty, IntType):
            return dst_ty.wrap(int(value))  # trunc toward zero
        if isinstance(dst_ty, IntType):
            return dst_ty.wrap(int(value))
        return value


def run_function(module: Module, name: str, args: Sequence = (),
                 mem_args: Optional[Dict[str, Sequence]] = None):
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(module)
    return interp.run(name, args, mem_args)
