"""Control-flow graph, function and module containers of the HLS IR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .operations import Branch, Jump, Operation, Return, Terminator
from .types import Type, VoidType
from .values import MemObject, TempFactory, Var


class BasicBlock:
    """A straight-line sequence of operations ended by one terminator."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ops: List[Operation] = []
        self.terminator: Optional[Terminator] = None

    def append(self, op: Operation) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.name} already terminated")
        if isinstance(op, Terminator):
            self.terminator = op
        else:
            self.ops.append(op)

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            return [term.if_true, term.if_false]
        return []

    def all_ops(self) -> List[Operation]:
        """Operations including the terminator (if present)."""
        ops = list(self.ops)
        if self.terminator is not None:
            ops.append(self.terminator)
        return ops

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {op}" for op in self.all_ops())
        return "\n".join(lines)


@dataclass
class Param:
    """A scalar or memory function parameter."""

    name: str
    type: Type
    mem: Optional[MemObject] = None

    @property
    def is_memory(self) -> bool:
        return self.mem is not None


class Function:
    """An HLS function: parameters, memory objects, and a CFG."""

    def __init__(self, name: str, return_type: Type) -> None:
        self.name = name
        self.return_type = return_type
        self.params: List[Param] = []
        self.mems: Dict[str, MemObject] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []
        self.temps = TempFactory()
        self.entry = "entry"
        self._label_counter = 0
        # Pragma-driven attributes set by the front end.
        self.pragmas: Dict[str, object] = {}

    # -- construction -------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = f"{hint}{self._label_counter}"
        self._label_counter += 1
        block = BasicBlock(name)
        self.blocks[name] = block
        self.block_order.append(name)
        return block

    def add_entry_block(self) -> BasicBlock:
        block = BasicBlock(self.entry)
        self.blocks[self.entry] = block
        self.block_order.insert(0, self.entry)
        return block

    def add_mem(self, mem: MemObject) -> MemObject:
        if mem.name in self.mems:
            raise ValueError(f"duplicate memory object {mem.name}")
        self.mems[mem.name] = mem
        return mem

    # -- queries --------------------------------------------------------

    @property
    def returns_value(self) -> bool:
        return not isinstance(self.return_type, VoidType)

    def scalar_params(self) -> List[Param]:
        return [p for p in self.params if not p.is_memory]

    def memory_params(self) -> List[Param]:
        return [p for p in self.params if p.is_memory]

    def ordered_blocks(self) -> List[BasicBlock]:
        return [self.blocks[name] for name in self.block_order if name in self.blocks]

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for block in self.ordered_blocks():
            for succ in block.successors():
                if succ in preds:  # unknown targets are a lint finding
                    preds[succ].append(block.name)
        return preds

    def reachable_blocks(self) -> List[str]:
        """Block names reachable from the entry, in DFS preorder."""
        seen: List[str] = []
        seen_set = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in seen_set or name not in self.blocks:
                continue
            seen_set.add(name)
            seen.append(name)
            stack.extend(reversed(self.blocks[name].successors()))
        return seen

    def remove_unreachable_blocks(self) -> int:
        """Drop unreachable blocks; returns how many were removed."""
        reachable = set(self.reachable_blocks())
        removed = [name for name in self.block_order if name not in reachable]
        for name in removed:
            self.blocks.pop(name, None)
        self.block_order = [n for n in self.block_order if n in reachable]
        return len(removed)

    def all_ops(self) -> Iterable[Operation]:
        for block in self.ordered_blocks():
            yield from block.all_ops()

    def op_count(self) -> int:
        return sum(1 for _ in self.all_ops())

    def var(self, name: str, ty: Type) -> Var:
        return Var(name, ty)

    def __str__(self) -> str:
        params = ", ".join(
            f"{p.type} {p.name}" for p in self.params
        )
        lines = [f"function {self.return_type} {self.name}({params})"]
        for mem in self.mems.values():
            lines.append(f"  mem {mem.name}: {mem.element} x {mem.size} [{mem.storage}]")
        for block in self.ordered_blocks():
            lines.append(str(block))
        return "\n".join(lines)


class Module:
    """A compilation unit: several functions plus global constants."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())


def verify_function(func: Function) -> List[str]:
    """Structural well-formedness checks; returns a list of problems."""
    problems: List[str] = []
    if func.entry not in func.blocks:
        problems.append(f"{func.name}: missing entry block")
    for block in func.ordered_blocks():
        if block.terminator is None:
            problems.append(f"{func.name}/{block.name}: not terminated")
            continue
        for succ in block.successors():
            if succ not in func.blocks:
                problems.append(
                    f"{func.name}/{block.name}: jump to unknown block {succ}"
                )
        if isinstance(block.terminator, Return):
            has_value = block.terminator.value is not None
            if func.returns_value and not has_value:
                problems.append(f"{func.name}/{block.name}: missing return value")
            if not func.returns_value and has_value:
                problems.append(f"{func.name}/{block.name}: unexpected return value")
    return problems
