"""Type system for the HLS intermediate representation.

The HERMES HLS flow (Bambu-equivalent) operates on a small, explicit type
lattice: fixed-width signed/unsigned integers and a 32-bit float.  Types
carry enough information for bit-accurate interpretation (wrapping
arithmetic) and for hardware cost estimation (bit widths drive the
Eucalyptus component characterization).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Fixed-width integer type.

    ``width`` is the bit width (8/16/32/64 from C declarations, arbitrary
    after bit-width analysis), ``signed`` selects two's-complement
    interpretation.
    """

    width: int
    signed: bool = True

    def __str__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.width}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this type's range (two's complement)."""
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE-754 floating point; only binary32 is used by the C front end."""

    width: int = 32

    def __str__(self) -> str:
        return f"f{self.width}"

    def round(self, value: float) -> float:
        """Round a Python float to binary32 precision (binary64 passthrough)."""
        if self.width == 32:
            return struct.unpack("<f", struct.pack("<f", value))[0]
        return float(value)


@dataclass(frozen=True)
class ArrayType(Type):
    """Statically sized (possibly multidimensional) array."""

    element: Type
    dims: tuple

    def __str__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dims)
        return f"{self.element}{dims}"

    @property
    def size(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim
        return total


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to an element type.

    Pointer parameters are treated as external memory interfaces (BRAM or
    AXI4 master depending on interface configuration), matching the paper's
    description of Bambu's interface synthesis.
    """

    element: Type

    def __str__(self) -> str:
        return f"{self.element}*"


VOID = VoidType()
BOOL = IntType(1, signed=False)
I8 = IntType(8, True)
I16 = IntType(16, True)
I32 = IntType(32, True)
I64 = IntType(64, True)
U8 = IntType(8, False)
U16 = IntType(16, False)
U32 = IntType(32, False)
U64 = IntType(64, False)
F32 = FloatType(32)

_C_TYPE_NAMES = {
    ("void",): VOID,
    ("char",): I8,
    ("signed", "char"): I8,
    ("unsigned", "char"): U8,
    ("short",): I16,
    ("short", "int"): I16,
    ("unsigned", "short"): U16,
    ("unsigned", "short", "int"): U16,
    ("int",): I32,
    ("signed",): I32,
    ("signed", "int"): I32,
    ("unsigned",): U32,
    ("unsigned", "int"): U32,
    ("long",): I32,
    ("long", "int"): I32,
    ("unsigned", "long"): U32,
    ("long", "long"): I64,
    ("long", "long", "int"): I64,
    ("unsigned", "long", "long"): U64,
    ("float",): F32,
    ("_Bool",): BOOL,
}

_TYPEDEF_NAMES = {
    "int8_t": I8,
    "int16_t": I16,
    "int32_t": I32,
    "int64_t": I64,
    "uint8_t": U8,
    "uint16_t": U16,
    "uint32_t": U32,
    "uint64_t": U64,
    "size_t": U32,
    "bool": BOOL,
}


def c_type_from_specifiers(specifiers) -> Type:
    """Resolve a sequence of C type-specifier keywords to an IR type."""
    key = tuple(specifiers)
    if key in _C_TYPE_NAMES:
        return _C_TYPE_NAMES[key]
    if len(key) == 1 and key[0] in _TYPEDEF_NAMES:
        return _TYPEDEF_NAMES[key[0]]
    raise ValueError(f"unsupported C type: {' '.join(specifiers)}")


def is_integer(ty: Type) -> bool:
    return isinstance(ty, IntType)


def is_float(ty: Type) -> bool:
    return isinstance(ty, FloatType)


def is_scalar(ty: Type) -> bool:
    return isinstance(ty, (IntType, FloatType))


def common_type(a: Type, b: Type) -> Type:
    """C-style usual arithmetic conversions (restricted to our lattice)."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        return F32
    if not (isinstance(a, IntType) and isinstance(b, IntType)):
        raise TypeError(f"no common type for {a} and {b}")
    width = max(a.width, b.width, 32)
    if a.width == b.width and a.signed != b.signed:
        return IntType(width, signed=False)
    signed = a.signed and b.signed
    if a.width != b.width:
        wider = a if a.width > b.width else b
        signed = wider.signed if wider.width >= 32 else True
    return IntType(width, signed)
