"""AST-level loop unrolling driven by ``#pragma HLS unroll``.

Unrolling happens after semantic analysis so every cloned expression keeps
its inferred type.  A loop is unrollable when it is *canonical*:

* ``for (i = C0; i <op> C1; i = i +/- C2)`` with compile-time constants;
* the body never reassigns the induction variable;
* the body contains no ``break``/``continue``.

Full unrolling replaces the loop by ``trip`` copies of the body with the
induction variable substituted by literals.  Partial unrolling by factor
``k`` (trip divisible by ``k``) widens the step and replicates the body
``k`` times.  Non-canonical loops are left untouched and recorded in the
returned report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ast
from .pragmas import loop_unroll_factor

_MAX_TRIP = 1 << 16
_MAX_FULL_UNROLL = 4096


@dataclass
class UnrollReport:
    unrolled: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)


@dataclass
class _Canonical:
    var: str
    start: int
    op: str          # cond operator: lt/le/gt/ge/ne
    limit: int
    step: int        # signed step per iteration
    decl_type: Optional[object]  # set when init is a Declaration


def _const_value(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "neg":
        inner = _const_value(expr.operand)
        return None if inner is None else -inner
    return None


def _match_canonical(loop: ast.For) -> Optional[_Canonical]:
    # init: `int i = C` or `i = C`
    if isinstance(loop.init, ast.Declaration) and not loop.init.dims:
        var = loop.init.name
        start = None if loop.init.init is None else _const_value(loop.init.init)
        decl_type = loop.init.var_type
    elif isinstance(loop.init, ast.Assignment) and \
            isinstance(loop.init.target, ast.NameRef):
        var = loop.init.target.name
        start = _const_value(loop.init.value)
        decl_type = None
    else:
        return None
    if start is None:
        return None
    # cond: `i <op> C`
    cond = loop.cond
    if not (isinstance(cond, ast.Binary)
            and cond.op in ("lt", "le", "gt", "ge", "ne")
            and isinstance(cond.lhs, ast.NameRef) and cond.lhs.name == var):
        return None
    limit = _const_value(cond.rhs)
    if limit is None:
        return None
    # step: `i = i + C` / `i = i - C` (includes lowered ++/--/+=)
    step_stmt = loop.step
    if not (isinstance(step_stmt, ast.Assignment)
            and isinstance(step_stmt.target, ast.NameRef)
            and step_stmt.target.name == var
            and isinstance(step_stmt.value, ast.Binary)
            and step_stmt.value.op in ("add", "sub")
            and isinstance(step_stmt.value.lhs, ast.NameRef)
            and step_stmt.value.lhs.name == var):
        return None
    step_const = _const_value(step_stmt.value.rhs)
    if step_const is None or step_const == 0:
        return None
    step = step_const if step_stmt.value.op == "add" else -step_const
    return _Canonical(var=var, start=start, op=cond.op, limit=limit,
                      step=step, decl_type=decl_type)


def _trip_count(canon: _Canonical) -> Optional[int]:
    checks = {
        "lt": lambda i: i < canon.limit,
        "le": lambda i: i <= canon.limit,
        "gt": lambda i: i > canon.limit,
        "ge": lambda i: i >= canon.limit,
        "ne": lambda i: i != canon.limit,
    }
    check = checks[canon.op]
    i = canon.start
    trip = 0
    while check(i):
        trip += 1
        i += canon.step
        if trip > _MAX_TRIP:
            return None
    return trip


def _assigns_var(block: ast.Block, name: str) -> bool:
    found = [False]

    def visit(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assignment):
            target = stmt.target
            if isinstance(target, ast.NameRef) and target.name == name:
                found[0] = True
        elif isinstance(stmt, ast.Declaration):
            if stmt.name == name:
                found[0] = True  # shadowing — be conservative
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                visit(inner)
        elif isinstance(stmt, ast.If):
            for inner in stmt.then.stmts:
                visit(inner)
            if stmt.orelse is not None:
                for inner in stmt.orelse.stmts:
                    visit(inner)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            for inner in stmt.body.stmts:
                visit(inner)
        elif isinstance(stmt, ast.For):
            for part in (stmt.init, stmt.step):
                if part is not None:
                    visit(part)
            for inner in stmt.body.stmts:
                visit(inner)

    for stmt in block.stmts:
        visit(stmt)
    return found[0]


def _has_break_or_continue(block: ast.Block) -> bool:
    """Break/continue directly inside this loop body (not nested loops)."""
    found = [False]

    def visit(stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.Break, ast.Continue)):
            found[0] = True
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                visit(inner)
        elif isinstance(stmt, ast.If):
            for inner in stmt.then.stmts:
                visit(inner)
            if stmt.orelse is not None:
                for inner in stmt.orelse.stmts:
                    visit(inner)
        # While/DoWhile/For introduce their own break scope: do not recurse.

    for stmt in block.stmts:
        visit(stmt)
    return found[0]


# -- AST cloning with substitution -------------------------------------------


def _clone_expr(expr: ast.Expr, subst: Dict[str, ast.Expr]) -> ast.Expr:
    if isinstance(expr, ast.IntLiteral):
        return ast.IntLiteral(line=expr.line, type=expr.type, value=expr.value)
    if isinstance(expr, ast.FloatLiteral):
        return ast.FloatLiteral(line=expr.line, type=expr.type, value=expr.value)
    if isinstance(expr, ast.NameRef):
        if expr.name in subst:
            return _clone_expr(subst[expr.name], {})
        return ast.NameRef(line=expr.line, type=expr.type, name=expr.name)
    if isinstance(expr, ast.ArrayRef):
        return ast.ArrayRef(line=expr.line, type=expr.type, name=expr.name,
                            indices=[_clone_expr(i, subst) for i in expr.indices])
    if isinstance(expr, ast.Unary):
        return ast.Unary(line=expr.line, type=expr.type, op=expr.op,
                         operand=_clone_expr(expr.operand, subst))
    if isinstance(expr, ast.Binary):
        return ast.Binary(line=expr.line, type=expr.type, op=expr.op,
                          lhs=_clone_expr(expr.lhs, subst),
                          rhs=_clone_expr(expr.rhs, subst))
    if isinstance(expr, ast.Conditional):
        return ast.Conditional(line=expr.line, type=expr.type,
                               cond=_clone_expr(expr.cond, subst),
                               if_true=_clone_expr(expr.if_true, subst),
                               if_false=_clone_expr(expr.if_false, subst))
    if isinstance(expr, ast.CastExpr):
        return ast.CastExpr(line=expr.line, type=expr.type, target=expr.target,
                            operand=_clone_expr(expr.operand, subst))
    if isinstance(expr, ast.CallExpr):
        return ast.CallExpr(line=expr.line, type=expr.type, callee=expr.callee,
                            args=[_clone_expr(a, subst) for a in expr.args])
    raise TypeError(f"cannot clone {type(expr).__name__}")  # pragma: no cover


def _clone_stmt(stmt: ast.Stmt, subst: Dict[str, ast.Expr]) -> ast.Stmt:
    if isinstance(stmt, ast.Declaration):
        return ast.Declaration(
            line=stmt.line, name=stmt.name, var_type=stmt.var_type,
            dims=list(stmt.dims),
            init=None if stmt.init is None else _clone_expr(stmt.init, subst),
            array_init=None if stmt.array_init is None else list(stmt.array_init),
            is_const=stmt.is_const, is_static=stmt.is_static)
    if isinstance(stmt, ast.Assignment):
        return ast.Assignment(line=stmt.line,
                              target=_clone_expr(stmt.target, subst),
                              value=_clone_expr(stmt.value, subst))
    if isinstance(stmt, ast.ExprStmt):
        return ast.ExprStmt(line=stmt.line, expr=_clone_expr(stmt.expr, subst))
    if isinstance(stmt, ast.Block):
        return ast.Block(line=stmt.line,
                         stmts=[_clone_stmt(s, subst) for s in stmt.stmts])
    if isinstance(stmt, ast.If):
        return ast.If(line=stmt.line, cond=_clone_expr(stmt.cond, subst),
                      then=_clone_stmt(stmt.then, subst),
                      orelse=None if stmt.orelse is None
                      else _clone_stmt(stmt.orelse, subst))
    if isinstance(stmt, ast.While):
        return ast.While(line=stmt.line, cond=_clone_expr(stmt.cond, subst),
                         body=_clone_stmt(stmt.body, subst),
                         pragmas=list(stmt.pragmas))
    if isinstance(stmt, ast.DoWhile):
        return ast.DoWhile(line=stmt.line, cond=_clone_expr(stmt.cond, subst),
                           body=_clone_stmt(stmt.body, subst))
    if isinstance(stmt, ast.For):
        return ast.For(
            line=stmt.line,
            init=None if stmt.init is None else _clone_stmt(stmt.init, subst),
            cond=None if stmt.cond is None else _clone_expr(stmt.cond, subst),
            step=None if stmt.step is None else _clone_stmt(stmt.step, subst),
            body=_clone_stmt(stmt.body, subst), pragmas=list(stmt.pragmas))
    if isinstance(stmt, ast.Return):
        return ast.Return(line=stmt.line, value=None if stmt.value is None
                          else _clone_expr(stmt.value, subst))
    if isinstance(stmt, ast.Break):
        return ast.Break(line=stmt.line)
    if isinstance(stmt, ast.Continue):
        return ast.Continue(line=stmt.line)
    raise TypeError(f"cannot clone {type(stmt).__name__}")  # pragma: no cover


def _literal(value: int, like: ast.Expr) -> ast.IntLiteral:
    return ast.IntLiteral(line=like.line, type=like.type, value=value)


class _Unroller:
    def __init__(self, report: UnrollReport, func_name: str) -> None:
        self.report = report
        self.func = func_name

    def rewrite_block(self, block: ast.Block) -> ast.Block:
        out = ast.Block(line=block.line)
        for stmt in block.stmts:
            out.stmts.extend(self._rewrite_stmt(stmt))
        return out

    def _rewrite_stmt(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(stmt, ast.For):
            return self._rewrite_for(stmt)
        if isinstance(stmt, ast.Block):
            return [self.rewrite_block(stmt)]
        if isinstance(stmt, ast.If):
            stmt.then = self.rewrite_block(stmt.then)
            if stmt.orelse is not None:
                stmt.orelse = self.rewrite_block(stmt.orelse)
            return [stmt]
        if isinstance(stmt, (ast.While, ast.DoWhile)):
            stmt.body = self.rewrite_block(stmt.body)
            return [stmt]
        return [stmt]

    def _rewrite_for(self, loop: ast.For) -> List[ast.Stmt]:
        loop.body = self.rewrite_block(loop.body)
        factor = loop_unroll_factor(loop.pragmas)
        if factor is None:
            return [loop]
        where = f"{self.func}:line {loop.line}"
        canon = _match_canonical(loop)
        if canon is None:
            self.report.skipped.append(f"{where}: not canonical")
            return [loop]
        if _assigns_var(loop.body, canon.var):
            self.report.skipped.append(f"{where}: body modifies induction var")
            return [loop]
        if _has_break_or_continue(loop.body):
            self.report.skipped.append(f"{where}: break/continue in body")
            return [loop]
        trip = _trip_count(canon)
        if trip is None:
            self.report.skipped.append(f"{where}: trip count too large")
            return [loop]
        if factor == 0 or factor >= trip:
            if trip > _MAX_FULL_UNROLL:
                self.report.skipped.append(f"{where}: trip {trip} too large "
                                           "for full unroll")
                return [loop]
            return self._full_unroll(loop, canon, trip, where)
        if trip % factor != 0:
            self.report.skipped.append(
                f"{where}: trip {trip} not divisible by factor {factor}")
            return [loop]
        return self._partial_unroll(loop, canon, factor, where)

    def _full_unroll(self, loop: ast.For, canon: _Canonical, trip: int,
                     where: str) -> List[ast.Stmt]:
        ref = _induction_ref(loop, canon)
        stmts: List[ast.Stmt] = []
        value = canon.start
        for _ in range(trip):
            subst = {canon.var: _literal(value, ref)}
            cloned = _clone_stmt(loop.body, subst)
            stmts.append(cloned)
            value += canon.step
        if canon.decl_type is None:
            # Loop variable lives on after the loop: set its final value.
            stmts.append(ast.Assignment(
                line=loop.line,
                target=ast.NameRef(line=loop.line, type=ref.type,
                                   name=canon.var),
                value=_literal(value, ref)))
        self.report.unrolled.append(f"{where}: full x{trip}")
        return stmts

    def _partial_unroll(self, loop: ast.For, canon: _Canonical, factor: int,
                        where: str) -> List[ast.Stmt]:
        ref = _induction_ref(loop, canon)
        bodies: List[ast.Stmt] = []
        for lane in range(factor):
            offset = lane * canon.step
            if offset == 0:
                index: ast.Expr = ast.NameRef(line=loop.line, type=ref.type,
                                              name=canon.var)
            else:
                index = ast.Binary(
                    line=loop.line, type=ref.type,
                    op="add" if offset > 0 else "sub",
                    lhs=ast.NameRef(line=loop.line, type=ref.type,
                                    name=canon.var),
                    rhs=_literal(abs(offset), ref))
            bodies.append(_clone_stmt(loop.body, {canon.var: index}))
        new_step_value = abs(canon.step) * factor
        assert isinstance(loop.step, ast.Assignment)
        step_expr = loop.step.value
        assert isinstance(step_expr, ast.Binary)
        new_step = ast.Assignment(
            line=loop.line,
            target=ast.NameRef(line=loop.line, type=ref.type, name=canon.var),
            value=ast.Binary(line=loop.line, type=step_expr.type,
                             op=step_expr.op,
                             lhs=ast.NameRef(line=loop.line, type=ref.type,
                                             name=canon.var),
                             rhs=_literal(new_step_value, ref)))
        new_loop = ast.For(line=loop.line, init=loop.init, cond=loop.cond,
                           step=new_step,
                           body=ast.Block(line=loop.line, stmts=bodies),
                           pragmas=[])
        self.report.unrolled.append(f"{where}: partial x{factor}")
        return [new_loop]


def _induction_ref(loop: ast.For, canon: _Canonical) -> ast.NameRef:
    """A typed NameRef for the induction variable (for literal typing)."""
    cond = loop.cond
    assert isinstance(cond, ast.Binary) and isinstance(cond.lhs, ast.NameRef)
    return cond.lhs


def unroll_loops(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Apply unroll pragmas across a translation unit (in place)."""
    report = UnrollReport()
    for func in unit.functions:
        unroller = _Unroller(report, func.name)
        func.body = unroller.rewrite_block(func.body)
    unit.unroll_report = report  # attached for diagnostics
    return unit
