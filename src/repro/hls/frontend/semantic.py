"""Semantic analysis for HermesC: name resolution and type checking.

Annotates every expression node with its IR type and rejects programs
outside the supported subset with located diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.types import (
    BOOL,
    F32,
    I32,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VoidType,
    common_type,
    is_scalar,
)
from . import ast

# Intrinsic math functions recognized by the front end (synthesized to
# dedicated functional units, mirroring Bambu's libm support).
INTRINSICS: Dict[str, tuple] = {
    "abs": (I32, [I32]),
    "min": (I32, [I32, I32]),
    "max": (I32, [I32, I32]),
    "fabsf": (F32, [F32]),
    "sqrtf": (F32, [F32]),
    "fminf": (F32, [F32, F32]),
    "fmaxf": (F32, [F32, F32]),
}


class SemanticError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, Type] = {}

    def declare(self, name: str, ty: Type, line: int) -> None:
        if name in self.symbols:
            raise SemanticError(f"redeclaration of {name!r}", line)
        self.symbols[name] = ty

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class _FunctionSignature:
    def __init__(self, func: ast.FunctionDef) -> None:
        self.name = func.name
        self.return_type = func.return_type
        self.param_types: List[Type] = []
        for param in func.params:
            if param.is_array:
                if param.dims:
                    self.param_types.append(ArrayType(param.type, tuple(param.dims)))
                else:
                    self.param_types.append(PointerType(param.type))
            else:
                self.param_types.append(param.type)


class Analyzer:
    """Checks a translation unit and annotates expression types in place."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.signatures: Dict[str, _FunctionSignature] = {}
        self.globals = _Scope()

    def run(self) -> ast.TranslationUnit:
        for decl in self.unit.globals:
            if decl.dims:
                if decl.array_init is None and not decl.is_const:
                    # mutable global arrays are allowed (become shared BRAM)
                    pass
                self.globals.declare(decl.name,
                                     ArrayType(decl.var_type, tuple(decl.dims)),
                                     decl.line)
            else:
                if decl.init is None:
                    raise SemanticError(
                        f"global scalar {decl.name!r} needs a constant initializer",
                        decl.line)
                self._check_expr(decl.init, self.globals)
                self.globals.declare(decl.name, decl.var_type, decl.line)
        for func in self.unit.functions:
            if func.name in self.signatures:
                raise SemanticError(f"redefinition of {func.name!r}", func.line)
            self.signatures[func.name] = _FunctionSignature(func)
        for func in self.unit.functions:
            self._check_function(func)
        return self.unit

    # -- functions -----------------------------------------------------

    def _check_function(self, func: ast.FunctionDef) -> None:
        scope = _Scope(self.globals)
        for param in func.params:
            if param.is_array:
                if param.dims:
                    ty: Type = ArrayType(param.type, tuple(param.dims))
                else:
                    ty = PointerType(param.type)
            else:
                ty = param.type
            scope.declare(param.name, ty, param.line)
        self._check_block(func.body, scope, func)

    def _check_block(self, block: ast.Block, scope: _Scope,
                     func: ast.FunctionDef) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, func)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope,
                    func: ast.FunctionDef) -> None:
        if isinstance(stmt, ast.Declaration):
            self._check_declaration(stmt, scope)
        elif isinstance(stmt, ast.Assignment):
            self._check_assignment(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, func)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.line)
            self._check_block(stmt.then, scope, func)
            if stmt.orelse is not None:
                self._check_block(stmt.orelse, scope, func)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.line)
            self._check_block(stmt.body, scope, func)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, func)
            if stmt.cond is not None:
                self._require_scalar(self._check_expr(stmt.cond, inner), stmt.line)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner, func)
            self._check_block(stmt.body, inner, func)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if isinstance(func.return_type, VoidType):
                    raise SemanticError("void function returns a value", stmt.line)
                self._check_expr(stmt.value, scope)
            elif not isinstance(func.return_type, VoidType):
                raise SemanticError("non-void function returns nothing", stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover
            raise SemanticError(f"unsupported statement {type(stmt).__name__}",
                                stmt.line)

    def _check_declaration(self, decl: ast.Declaration, scope: _Scope) -> None:
        if isinstance(decl.var_type, VoidType):
            raise SemanticError("cannot declare void variable", decl.line)
        if decl.dims:
            for dim in decl.dims:
                if dim <= 0:
                    raise SemanticError("array dimension must be positive",
                                        decl.line)
            total = 1
            for dim in decl.dims:
                total *= dim
            if decl.array_init is not None and len(decl.array_init) > total:
                raise SemanticError("too many array initializers", decl.line)
            scope.declare(decl.name, ArrayType(decl.var_type, tuple(decl.dims)),
                          decl.line)
        else:
            if decl.init is not None:
                self._check_expr(decl.init, scope)
            scope.declare(decl.name, decl.var_type, decl.line)

    def _check_assignment(self, stmt: ast.Assignment, scope: _Scope) -> None:
        value_ty = self._check_expr(stmt.value, scope)
        self._require_scalar(value_ty, stmt.line)
        target = stmt.target
        if isinstance(target, ast.NameRef):
            ty = scope.lookup(target.name)
            if ty is None:
                raise SemanticError(f"undeclared variable {target.name!r}",
                                    stmt.line)
            if not is_scalar(ty):
                raise SemanticError(
                    f"cannot assign whole array {target.name!r}", stmt.line)
            target.type = ty
        elif isinstance(target, ast.ArrayRef):
            self._check_array_ref(target, scope)
        else:  # pragma: no cover
            raise SemanticError("invalid assignment target", stmt.line)

    # -- expressions -----------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        ty = self._infer(expr, scope)
        expr.type = ty
        return ty

    def _infer(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return I32 if -(1 << 31) <= expr.value < (1 << 31) else IntType(64, True)
        if isinstance(expr, ast.FloatLiteral):
            return F32
        if isinstance(expr, ast.NameRef):
            ty = scope.lookup(expr.name)
            if ty is None:
                raise SemanticError(f"undeclared variable {expr.name!r}", expr.line)
            if not is_scalar(ty):
                raise SemanticError(
                    f"array {expr.name!r} used without subscript", expr.line)
            return ty
        if isinstance(expr, ast.ArrayRef):
            return self._check_array_ref(expr, scope)
        if isinstance(expr, ast.Unary):
            operand_ty = self._check_expr(expr.operand, scope)
            self._require_scalar(operand_ty, expr.line)
            if expr.op == "not":
                return BOOL
            if expr.op == "bnot" and isinstance(operand_ty, FloatType):
                raise SemanticError("bitwise not on float", expr.line)
            if isinstance(operand_ty, IntType) and operand_ty.width < 32:
                return I32  # integer promotion
            return operand_ty
        if isinstance(expr, ast.Binary):
            lhs_ty = self._check_expr(expr.lhs, scope)
            rhs_ty = self._check_expr(expr.rhs, scope)
            self._require_scalar(lhs_ty, expr.line)
            self._require_scalar(rhs_ty, expr.line)
            if expr.op in ("land", "lor"):
                return BOOL
            if expr.op in ("eq", "ne", "lt", "le", "gt", "ge"):
                common_type(lhs_ty, rhs_ty)  # validates compatibility
                return BOOL
            if expr.op in ("and", "or", "xor", "shl", "shr", "rem"):
                if isinstance(lhs_ty, FloatType) or isinstance(rhs_ty, FloatType):
                    raise SemanticError(f"{expr.op} requires integer operands",
                                        expr.line)
            if expr.op in ("shl", "shr"):
                base = lhs_ty
                if isinstance(base, IntType) and base.width < 32:
                    base = IntType(32, base.signed)
                return base
            return common_type(lhs_ty, rhs_ty)
        if isinstance(expr, ast.Conditional):
            self._require_scalar(self._check_expr(expr.cond, scope), expr.line)
            true_ty = self._check_expr(expr.if_true, scope)
            false_ty = self._check_expr(expr.if_false, scope)
            return common_type(true_ty, false_ty)
        if isinstance(expr, ast.CastExpr):
            self._check_expr(expr.operand, scope)
            if not is_scalar(expr.target):
                raise SemanticError("cast target must be scalar", expr.line)
            return expr.target
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, scope)
        raise SemanticError(f"unsupported expression {type(expr).__name__}",
                            expr.line)  # pragma: no cover

    def _check_array_ref(self, ref: ast.ArrayRef, scope: _Scope) -> Type:
        ty = scope.lookup(ref.name)
        if ty is None:
            raise SemanticError(f"undeclared array {ref.name!r}", ref.line)
        for index in ref.indices:
            index_ty = self._check_expr(index, scope)
            if not isinstance(index_ty, IntType):
                raise SemanticError("array index must be integer", ref.line)
        if isinstance(ty, ArrayType):
            if len(ref.indices) != len(ty.dims):
                raise SemanticError(
                    f"array {ref.name!r} expects {len(ty.dims)} indices, "
                    f"got {len(ref.indices)}", ref.line)
            ref.type = ty.element
            return ty.element
        if isinstance(ty, PointerType):
            if len(ref.indices) != 1:
                raise SemanticError(
                    f"pointer {ref.name!r} expects one index", ref.line)
            ref.type = ty.element
            return ty.element
        raise SemanticError(f"{ref.name!r} is not an array", ref.line)

    def _check_call(self, call: ast.CallExpr, scope: _Scope) -> Type:
        if call.callee in INTRINSICS:
            ret, param_types = INTRINSICS[call.callee]
            if len(call.args) != len(param_types):
                raise SemanticError(
                    f"{call.callee} expects {len(param_types)} arguments",
                    call.line)
            for arg in call.args:
                self._require_scalar(self._check_expr(arg, scope), call.line)
            return ret
        sig = self.signatures.get(call.callee)
        if sig is None:
            raise SemanticError(f"call to unknown function {call.callee!r}",
                                call.line)
        if len(call.args) != len(sig.param_types):
            raise SemanticError(
                f"{call.callee} expects {len(sig.param_types)} arguments, "
                f"got {len(call.args)}", call.line)
        for arg, param_ty in zip(call.args, sig.param_types):
            if isinstance(param_ty, (ArrayType, PointerType)):
                if not isinstance(arg, (ast.NameRef, ast.ArrayRef)) or (
                        isinstance(arg, ast.ArrayRef) and arg.indices):
                    raise SemanticError(
                        "array argument must be an array name", call.line)
                name = arg.name
                actual = scope.lookup(name)
                if not isinstance(actual, (ArrayType, PointerType)):
                    raise SemanticError(
                        f"argument {name!r} is not an array", call.line)
                arg.type = actual
            else:
                self._require_scalar(self._check_expr(arg, scope), call.line)
        return sig.return_type

    @staticmethod
    def _require_scalar(ty: Type, line: int) -> None:
        if not is_scalar(ty):
            raise SemanticError(f"expected scalar value, got {ty}", line)


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis; returns the annotated unit."""
    return Analyzer(unit).run()
