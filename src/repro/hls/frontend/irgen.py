"""Lowering of the annotated HermesC AST into the CFG-based HLS IR."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import (
    Assign,
    BinOp,
    BOOL,
    Branch,
    Call,
    Cast,
    Const,
    Function,
    Jump,
    Load,
    MemObject,
    Module,
    Param,
    Return,
    Select,
    Store,
    UnOp,
    Value,
    Var,
    const_float,
    const_int,
    verify_function,
)
from ..ir.types import FloatType, IntType, Type, VoidType, common_type
from . import ast
from .pragmas import FunctionPragmas, collect_function_pragmas
from .semantic import INTRINSICS, SemanticError, analyze
from .parser import parse
from .unroll import unroll_loops


class IRGenError(Exception):
    pass


class _Bindings:
    """Lexically scoped map from source names to Var/MemObject."""

    def __init__(self) -> None:
        self._scopes: List[Dict[str, object]] = [{}]
        self._rename_counter: Dict[str, int] = {}

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        self._scopes.pop()

    def declare(self, name: str, binding) -> None:
        self._scopes[-1][name] = binding

    def lookup(self, name: str):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def unique_name(self, name: str) -> str:
        """Return a storage name unique across the whole function."""
        count = self._rename_counter.get(name, 0)
        self._rename_counter[name] = count + 1
        return name if count == 0 else f"{name}.{count}"


class _FunctionLowering:
    def __init__(self, gen: "IRGenerator", node: ast.FunctionDef,
                 pragmas: FunctionPragmas) -> None:
        self.gen = gen
        self.node = node
        self.func = Function(node.name, node.return_type)
        self.pragmas = pragmas
        self.bindings = _Bindings()
        self.block = self.func.add_entry_block()
        self.break_targets: List[str] = []
        self.continue_targets: List[str] = []
        self.func.pragmas = {
            "inline": pragmas.inline,
            "dataflow": pragmas.dataflow,
            "allocation": dict(pragmas.allocation),
        }

    # -- plumbing -------------------------------------------------------

    def emit(self, op) -> None:
        self.block.append(op)

    def new_block(self, hint: str = "bb"):
        return self.func.new_block(hint)

    def switch_to(self, block) -> None:
        self.block = block

    def temp(self, ty: Type) -> Value:
        return self.func.temps.new(ty)

    # -- entry ------------------------------------------------------------

    def run(self) -> Function:
        for param in self.node.params:
            self._lower_param(param)
        for decl in self.gen.unit.globals:
            self._bind_global(decl)
        self._lower_block(self.node.body)
        if not self.block.is_terminated:
            if self.func.returns_value:
                # C allows missing return; hardware needs a value.
                zero = self._zero(self.func.return_type)
                self.emit(Return(zero))
            else:
                self.emit(Return())
        problems = verify_function(self.func)
        if problems:
            raise IRGenError("; ".join(problems))
        return self.func

    def _lower_param(self, param: ast.ParamDecl) -> None:
        if param.is_array:
            mode = "bram"
            pragma = self.pragmas.interfaces.get(param.name)
            if pragma is not None:
                mode = pragma.mode
            size = 1
            for dim in param.dims:
                size *= dim
            mem = MemObject(
                name=param.name, element=param.type,
                size=size if param.dims else 0,
                dims=tuple(param.dims), storage=mode, is_param=True,
                protection=self.pragmas.protections.get(param.name, "none"),
            )
            self.func.add_mem(mem)
            self.func.params.append(Param(param.name, mem.ty, mem=mem))
            self.bindings.declare(param.name, mem)
        else:
            var = Var(param.name, param.type)
            self.func.params.append(Param(param.name, param.type))
            self.bindings.declare(param.name, var)

    def _bind_global(self, decl: ast.Declaration) -> None:
        if decl.dims:
            mem = self.gen.global_mems[decl.name]
            if mem.name not in self.func.mems:
                self.func.add_mem(mem)
            self.bindings.declare(decl.name, mem)
        else:
            self.bindings.declare(decl.name, self.gen.global_consts[decl.name])

    # -- statements -----------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        self.bindings.push()
        for stmt in block.stmts:
            if self.block.is_terminated:
                break  # dead code after return/break
            self._lower_stmt(stmt)
        self.bindings.pop()

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.Assignment):
            self._lower_assignment(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise IRGenError(f"line {stmt.line}: break outside loop")
            self.emit(Jump(self.break_targets[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise IRGenError(f"line {stmt.line}: continue outside loop")
            self.emit(Jump(self.continue_targets[-1]))
        else:  # pragma: no cover
            raise IRGenError(f"unsupported statement {type(stmt).__name__}")

    def _lower_declaration(self, decl: ast.Declaration) -> None:
        if decl.dims:
            size = 1
            for dim in decl.dims:
                size *= dim
            storage = "rom" if (decl.is_const and decl.array_init) else "bram"
            name = self.bindings.unique_name(decl.name)
            init = list(decl.array_init or [])
            mem = MemObject(name=name, element=decl.var_type, size=size,
                            dims=tuple(decl.dims), storage=storage,
                            initializer=init,
                            protection=self.pragmas.protections.get(
                                decl.name, "none"))
            self.func.add_mem(mem)
            self.bindings.declare(decl.name, mem)
            if init and storage == "bram":
                # Non-const initialized local arrays get explicit stores.
                for index, value in enumerate(init):
                    const = self._const_of(value, decl.var_type)
                    self.emit(Store(mem, const_int(index, IntType(32, False)),
                                    const))
        else:
            name = self.bindings.unique_name(decl.name)
            var = Var(name, decl.var_type)
            self.bindings.declare(decl.name, var)
            if decl.init is not None:
                value = self._lower_expr(decl.init)
                value = self._coerce(value, decl.var_type)
                self.emit(Assign(var, value))

    def _lower_assignment(self, stmt: ast.Assignment) -> None:
        value = self._lower_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.NameRef):
            binding = self.bindings.lookup(target.name)
            if not isinstance(binding, Var):
                raise IRGenError(
                    f"line {stmt.line}: cannot assign to {target.name!r}")
            self.emit(Assign(binding, self._coerce(value, binding.type)))
        elif isinstance(target, ast.ArrayRef):
            mem, index = self._lower_array_address(target)
            self.emit(Store(mem, index, self._coerce(value, mem.element)))
        else:  # pragma: no cover
            raise IRGenError("invalid assignment target")

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_condition(stmt.cond)
        then_block = self.new_block("if.then")
        join_block = self.new_block("if.end")
        else_block = join_block
        if stmt.orelse is not None:
            else_block = self.new_block("if.else")
        self.emit(Branch(cond, then_block.name, else_block.name))
        self.switch_to(then_block)
        self._lower_block(stmt.then)
        if not self.block.is_terminated:
            self.emit(Jump(join_block.name))
        if stmt.orelse is not None:
            self.switch_to(else_block)
            self._lower_block(stmt.orelse)
            if not self.block.is_terminated:
                self.emit(Jump(join_block.name))
        self.switch_to(join_block)
        if not self._has_predecessor(join_block.name):
            # Both arms returned; keep a dead-but-valid terminator.
            self._terminate_dead_block()

    def _terminate_dead_block(self) -> None:
        if self.func.returns_value:
            self.emit(Return(self._zero(self.func.return_type)))
        else:
            self.emit(Return())

    def _has_predecessor(self, name: str) -> bool:
        for block in self.func.ordered_blocks():
            if name in block.successors():
                return True
        return False

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.new_block("while.head")
        body = self.new_block("while.body")
        exit_block = self.new_block("while.end")
        self.emit(Jump(head.name))
        self.switch_to(head)
        cond = self._lower_condition(stmt.cond)
        self.emit(Branch(cond, body.name, exit_block.name))
        self.break_targets.append(exit_block.name)
        self.continue_targets.append(head.name)
        self.switch_to(body)
        self._lower_block(stmt.body)
        if not self.block.is_terminated:
            self.emit(Jump(head.name))
        self.break_targets.pop()
        self.continue_targets.pop()
        self.switch_to(exit_block)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.new_block("do.body")
        head = self.new_block("do.cond")
        exit_block = self.new_block("do.end")
        self.emit(Jump(body.name))
        self.break_targets.append(exit_block.name)
        self.continue_targets.append(head.name)
        self.switch_to(body)
        self._lower_block(stmt.body)
        if not self.block.is_terminated:
            self.emit(Jump(head.name))
        self.break_targets.pop()
        self.continue_targets.pop()
        self.switch_to(head)
        cond = self._lower_condition(stmt.cond)
        self.emit(Branch(cond, body.name, exit_block.name))
        self.switch_to(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        self.bindings.push()
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self.new_block("for.head")
        body = self.new_block("for.body")
        step = self.new_block("for.step")
        exit_block = self.new_block("for.end")
        self.emit(Jump(head.name))
        self.switch_to(head)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            self.emit(Branch(cond, body.name, exit_block.name))
        else:
            self.emit(Jump(body.name))
        self.break_targets.append(exit_block.name)
        self.continue_targets.append(step.name)
        self.switch_to(body)
        self._lower_block(stmt.body)
        if not self.block.is_terminated:
            self.emit(Jump(step.name))
        self.break_targets.pop()
        self.continue_targets.pop()
        self.switch_to(step)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        if not self.block.is_terminated:
            self.emit(Jump(head.name))
        self.switch_to(exit_block)
        self.bindings.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            value = self._lower_expr(stmt.value)
            value = self._coerce(value, self.func.return_type)
            self.emit(Return(value))
        else:
            self.emit(Return())

    # -- expressions -----------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return const_int(expr.value, expr.type)
        if isinstance(expr, ast.FloatLiteral):
            return const_float(expr.value, expr.type)
        if isinstance(expr, ast.NameRef):
            binding = self.bindings.lookup(expr.name)
            if isinstance(binding, Var):
                return binding
            if isinstance(binding, Const):
                return binding
            raise IRGenError(f"line {expr.line}: {expr.name!r} is not scalar")
        if isinstance(expr, ast.ArrayRef):
            mem, index = self._lower_array_address(expr)
            dst = self.temp(mem.element)
            self.emit(Load(dst, mem, index))
            return dst
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.CastExpr):
            value = self._lower_expr(expr.operand)
            return self._coerce(value, expr.target, force=True)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        raise IRGenError(f"unsupported expression {type(expr).__name__}")

    def _lower_unary(self, expr: ast.Unary) -> Value:
        operand = self._lower_expr(expr.operand)
        if expr.op == "not":
            cond = self._normalize_condition(operand)
            dst = self.temp(BOOL)
            self.emit(UnOp("not", dst, cond))
            return dst
        operand = self._coerce(operand, expr.type)
        dst = self.temp(expr.type)
        self.emit(UnOp(expr.op, dst, operand))
        return dst

    def _lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("land", "lor"):
            return self._lower_short_circuit(expr)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if expr.op in ("eq", "ne", "lt", "le", "gt", "ge"):
            operand_ty = common_type(expr.lhs.type, expr.rhs.type)
            lhs = self._coerce(lhs, operand_ty)
            rhs = self._coerce(rhs, operand_ty)
            dst = self.temp(BOOL)
        elif expr.op in ("shl", "shr"):
            lhs = self._coerce(lhs, expr.type)
            rhs = self._coerce(rhs, IntType(32, False))
            dst = self.temp(expr.type)
        else:
            lhs = self._coerce(lhs, expr.type)
            rhs = self._coerce(rhs, expr.type)
            dst = self.temp(expr.type)
        self.emit(BinOp(expr.op, dst, lhs, rhs))
        return dst

    def _lower_short_circuit(self, expr: ast.Binary) -> Value:
        """Lower ``&&`` / ``||`` with proper control flow."""
        result = Var(self.bindings.unique_name("sc.tmp"), BOOL)
        rhs_block = self.new_block("sc.rhs")
        join_block = self.new_block("sc.end")
        lhs = self._normalize_condition(self._lower_expr(expr.lhs))
        self.emit(Assign(result, lhs))
        if expr.op == "land":
            self.emit(Branch(lhs, rhs_block.name, join_block.name))
        else:
            self.emit(Branch(lhs, join_block.name, rhs_block.name))
        self.switch_to(rhs_block)
        rhs = self._normalize_condition(self._lower_expr(expr.rhs))
        self.emit(Assign(result, rhs))
        self.emit(Jump(join_block.name))
        self.switch_to(join_block)
        return result

    def _lower_conditional(self, expr: ast.Conditional) -> Value:
        cond = self._lower_condition(expr.cond)
        if self._is_pure(expr.if_true) and self._is_pure(expr.if_false):
            if_true = self._coerce(self._lower_expr(expr.if_true), expr.type)
            if_false = self._coerce(self._lower_expr(expr.if_false), expr.type)
            dst = self.temp(expr.type)
            self.emit(Select(dst, cond, if_true, if_false))
            return dst
        result = Var(self.bindings.unique_name("cond.tmp"), expr.type)
        true_block = self.new_block("cond.true")
        false_block = self.new_block("cond.false")
        join_block = self.new_block("cond.end")
        self.emit(Branch(cond, true_block.name, false_block.name))
        self.switch_to(true_block)
        value = self._coerce(self._lower_expr(expr.if_true), expr.type)
        self.emit(Assign(result, value))
        self.emit(Jump(join_block.name))
        self.switch_to(false_block)
        value = self._coerce(self._lower_expr(expr.if_false), expr.type)
        self.emit(Assign(result, value))
        self.emit(Jump(join_block.name))
        self.switch_to(join_block)
        return result

    @staticmethod
    def _is_pure(expr: ast.Expr) -> bool:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.NameRef)):
            return True
        if isinstance(expr, ast.ArrayRef):
            return all(_FunctionLowering._is_pure(i) for i in expr.indices)
        if isinstance(expr, ast.Unary):
            return _FunctionLowering._is_pure(expr.operand)
        if isinstance(expr, ast.Binary):
            return (expr.op not in ("land", "lor")
                    and _FunctionLowering._is_pure(expr.lhs)
                    and _FunctionLowering._is_pure(expr.rhs))
        if isinstance(expr, ast.CastExpr):
            return _FunctionLowering._is_pure(expr.operand)
        if isinstance(expr, ast.Conditional):
            return all(_FunctionLowering._is_pure(e)
                       for e in (expr.cond, expr.if_true, expr.if_false))
        return False  # calls

    def _lower_call(self, expr: ast.CallExpr) -> Optional[Value]:
        if expr.callee in INTRINSICS:
            return self._lower_intrinsic(expr)
        callee_sig = self.gen.functions[expr.callee]
        args: List[Value] = []
        mem_args: List[MemObject] = []
        for arg, param in zip(expr.args, callee_sig.params):
            if param.is_array:
                binding = self.bindings.lookup(arg.name)
                if not isinstance(binding, MemObject):
                    raise IRGenError(
                        f"line {expr.line}: argument {arg.name!r} is not a "
                        "memory object")
                mem_args.append(binding)
            else:
                value = self._lower_expr(arg)
                args.append(self._coerce(value, param.type))
        dst = None
        if not isinstance(callee_sig.return_type, VoidType):
            dst = self.temp(callee_sig.return_type)
        self.emit(Call(dst, expr.callee, args, mem_args))
        return dst

    def _lower_intrinsic(self, expr: ast.CallExpr) -> Value:
        name = expr.callee
        args = [self._lower_expr(a) for a in expr.args]
        if name in ("abs", "fabsf"):
            value = self._coerce(args[0], expr.type)
            neg = self.temp(expr.type)
            self.emit(UnOp("neg", neg, value))
            zero = self._zero(expr.type)
            cond = self.temp(BOOL)
            self.emit(BinOp("lt", cond, value, zero))
            dst = self.temp(expr.type)
            self.emit(Select(dst, cond, neg, value))
            return dst
        if name in ("min", "max", "fminf", "fmaxf"):
            lhs = self._coerce(args[0], expr.type)
            rhs = self._coerce(args[1], expr.type)
            cond = self.temp(BOOL)
            op = "lt" if name in ("min", "fminf") else "gt"
            self.emit(BinOp(op, cond, lhs, rhs))
            dst = self.temp(expr.type)
            self.emit(Select(dst, cond, lhs, rhs))
            return dst
        if name == "sqrtf":
            value = self._coerce(args[0], expr.type)
            dst = self.temp(expr.type)
            self.emit(Call(dst, "sqrtf", [value], []))
            return dst
        raise IRGenError(f"unhandled intrinsic {name}")  # pragma: no cover

    # -- helpers -----------------------------------------------------------

    def _lower_array_address(self, ref: ast.ArrayRef):
        binding = self.bindings.lookup(ref.name)
        if not isinstance(binding, MemObject):
            raise IRGenError(f"line {ref.line}: {ref.name!r} is not an array")
        index_ty = IntType(32, False)
        indices = [self._coerce(self._lower_expr(i), IntType(32, True))
                   for i in ref.indices]
        if len(indices) == 1:
            return binding, self._coerce(indices[0], index_ty)
        # Row-major flattening: ((i0 * d1 + i1) * d2 + i2) ...
        flat = indices[0]
        for dim, index in zip(binding.dims[1:], indices[1:]):
            scaled = self.temp(IntType(32, True))
            self.emit(BinOp("mul", scaled, flat,
                            const_int(dim, IntType(32, True))))
            summed = self.temp(IntType(32, True))
            self.emit(BinOp("add", summed, scaled, index))
            flat = summed
        return binding, self._coerce(flat, index_ty)

    def _lower_condition(self, expr: ast.Expr) -> Value:
        return self._normalize_condition(self._lower_expr(expr))

    def _normalize_condition(self, value: Value) -> Value:
        if isinstance(value.ty, IntType) and value.ty.width == 1:
            return value
        dst = self.temp(BOOL)
        self.emit(BinOp("ne", dst, value, self._zero(value.ty)))
        return dst

    def _zero(self, ty: Type) -> Const:
        if isinstance(ty, FloatType):
            return const_float(0.0, ty)
        return const_int(0, ty)

    def _const_of(self, value, ty: Type) -> Const:
        if isinstance(ty, FloatType):
            return const_float(float(value), ty)
        return const_int(int(value), ty)

    def _coerce(self, value: Value, target: Type, force: bool = False) -> Value:
        if value.ty == target and not force:
            return value
        if value.ty == target:
            return value
        if isinstance(value, Const):
            if isinstance(target, FloatType):
                return const_float(float(value.value), target)
            if isinstance(target, IntType):
                return const_int(int(value.value), target)
        dst = self.temp(target)
        self.emit(Cast(dst, value))
        return dst


class IRGenerator:
    """Drives the per-function lowering over a translation unit."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.functions: Dict[str, ast.FunctionDef] = {
            f.name: f for f in unit.functions
        }
        self.global_mems: Dict[str, MemObject] = {}
        self.global_consts: Dict[str, Const] = {}

    def run(self) -> Module:
        module = Module()
        for decl in self.unit.globals:
            if decl.dims:
                size = 1
                for dim in decl.dims:
                    size *= dim
                storage = "rom" if (decl.is_const and decl.array_init) else "bram"
                self.global_mems[decl.name] = MemObject(
                    name=decl.name, element=decl.var_type, size=size,
                    dims=tuple(decl.dims), storage=storage,
                    initializer=list(decl.array_init or []), is_global=True)
            else:
                value = _const_fold_global(decl.init)
                if isinstance(decl.var_type, FloatType):
                    self.global_consts[decl.name] = const_float(
                        float(value), decl.var_type)
                else:
                    self.global_consts[decl.name] = const_int(
                        int(value), decl.var_type)
        for node in self.unit.functions:
            pragmas = collect_function_pragmas(node.pragmas)
            lowering = _FunctionLowering(self, node, pragmas)
            module.add_function(lowering.run())
        return module


def _const_fold_global(expr: ast.Expr):
    """Evaluate a global scalar initializer (constants only)."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "neg":
        return -_const_fold_global(expr.operand)
    raise SemanticError("global initializer must be constant", expr.line)


def compile_to_ir(source: str) -> Module:
    """Front-end pipeline: parse → analyze → unroll → lower to IR."""
    unit = analyze(parse(source))
    unit = unroll_loops(unit)
    return IRGenerator(unit).run()
