"""Lexer for the HermesC subset of C accepted by the HLS front end.

Supports identifiers, integer/float/char literals, all C operators used by
the subset, line/block comments, and a minimal preprocessor:

* ``#include`` lines are ignored (the subset is self-contained);
* object-like ``#define NAME value`` macros are substituted;
* ``#pragma HLS ...`` lines are turned into :class:`Token` of kind
  ``pragma`` so the parser can attach them to functions/loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "const", "static", "inline", "volatile", "restrict",
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "struct", "typedef", "sizeof", "_Bool",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "size_t", "bool",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]


class LexerError(Exception):
    """Raised on malformed input with position information."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str        # 'ident', 'keyword', 'int', 'float', 'op', 'pragma', 'eof'
    text: str
    line: int
    col: int
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def _expand_macros(line: str, macros: Dict[str, str]) -> str:
    """Whole-word textual macro substitution (iterated to a fixed point)."""
    for _ in range(8):
        changed = False
        out: List[str] = []
        i = 0
        while i < len(line):
            ch = line[i]
            if ch.isalpha() or ch == "_":
                j = i
                while j < len(line) and (line[j].isalnum() or line[j] == "_"):
                    j += 1
                word = line[i:j]
                if word in macros:
                    out.append(macros[word])
                    changed = True
                else:
                    out.append(word)
                i = j
            else:
                out.append(ch)
                i += 1
        line = "".join(out)
        if not changed:
            break
    return line


def preprocess(source: str) -> List[str]:
    """Strip comments, handle #define/#include/#pragma; returns lines.

    ``#pragma`` lines are kept verbatim (they become pragma tokens).
    """
    # Remove block comments first (may span lines); keep line structure.
    chars: List[str] = []
    i = 0
    while i < len(source):
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated block comment", 1, 1)
            chars.append("\n" * source.count("\n", i, end))
            i = end + 2
        elif source.startswith("//", i):
            end = source.find("\n", i)
            i = len(source) if end < 0 else end
        else:
            chars.append(source[i])
            i += 1
    text = "".join(chars)

    macros: Dict[str, str] = {}
    lines: List[str] = []
    for raw in text.split("\n"):
        stripped = raw.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) >= 2:
                name = parts[1]
                if "(" in name:
                    raise LexerError(
                        "function-like macros are not supported", len(lines) + 1, 1
                    )
                macros[name] = parts[2] if len(parts) == 3 else "1"
            lines.append("")
        elif stripped.startswith("#include") or stripped.startswith("#ifndef") \
                or stripped.startswith("#ifdef") or stripped.startswith("#endif") \
                or stripped.startswith("#if ") or stripped.startswith("#else"):
            lines.append("")
        elif stripped.startswith("#pragma"):
            lines.append(stripped)
        else:
            lines.append(_expand_macros(raw, macros))
    return lines


def tokenize(source: str) -> List[Token]:
    """Tokenize HermesC source into a list ending with an ``eof`` token."""
    tokens: List[Token] = []
    for lineno, line in enumerate(preprocess(source), start=1):
        if line.strip().startswith("#pragma"):
            tokens.append(Token("pragma", line.strip(), lineno, 1))
            continue
        col = 0
        n = len(line)
        while col < n:
            ch = line[col]
            if ch in " \t\r":
                col += 1
                continue
            start_col = col + 1
            if ch.isalpha() or ch == "_":
                j = col
                while j < n and (line[j].isalnum() or line[j] == "_"):
                    j += 1
                word = line[col:j]
                kind = "keyword" if word in KEYWORDS else "ident"
                tokens.append(Token(kind, word, lineno, start_col))
                col = j
                continue
            if ch.isdigit() or (ch == "." and col + 1 < n and line[col + 1].isdigit()):
                j = col
                is_float = False
                if line.startswith("0x", col) or line.startswith("0X", col):
                    j = col + 2
                    while j < n and (line[j] in "0123456789abcdefABCDEF"):
                        j += 1
                    value = int(line[col:j], 16)
                else:
                    while j < n and line[j].isdigit():
                        j += 1
                    if j < n and line[j] == ".":
                        is_float = True
                        j += 1
                        while j < n and line[j].isdigit():
                            j += 1
                    if j < n and line[j] in "eE":
                        is_float = True
                        j += 1
                        if j < n and line[j] in "+-":
                            j += 1
                        while j < n and line[j].isdigit():
                            j += 1
                    text = line[col:j]
                    value = float(text) if is_float else int(text)
                # Swallow C literal suffixes (u, l, f combinations).
                while j < n and line[j] in "uUlLfF":
                    if line[j] in "fF":
                        is_float = True
                        value = float(value)
                    j += 1
                kind = "float" if is_float else "int"
                tokens.append(Token(kind, line[col:j], lineno, start_col, value))
                col = j
                continue
            if ch == "'":
                j = col + 1
                if j < n and line[j] == "\\":
                    escapes = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39}
                    if j + 1 >= n or line[j + 1] not in escapes:
                        raise LexerError("bad escape", lineno, start_col)
                    value = escapes[line[j + 1]]
                    j += 2
                elif j < n:
                    value = ord(line[j])
                    j += 1
                else:
                    raise LexerError("unterminated char literal", lineno, start_col)
                if j >= n or line[j] != "'":
                    raise LexerError("unterminated char literal", lineno, start_col)
                tokens.append(Token("int", line[col:j + 1], lineno, start_col, value))
                col = j + 1
                continue
            for op in OPERATORS:
                if line.startswith(op, col):
                    tokens.append(Token("op", op, lineno, start_col))
                    col += len(op)
                    break
            else:
                raise LexerError(f"unexpected character {ch!r}", lineno, start_col)
    last_line = tokens[-1].line if tokens else 1
    tokens.append(Token("eof", "", last_line, 0))
    return tokens
