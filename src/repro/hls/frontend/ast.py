"""Abstract syntax tree for the HermesC subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.types import Type


@dataclass
class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------


@dataclass
class Expr(Node):
    # Filled in by semantic analysis.
    type: Optional[Type] = None


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class NameRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    """``base[i0][i1]...`` — base must be an array/pointer name."""

    name: str = ""
    indices: List[Expr] = field(default_factory=list)


@dataclass
class Unary(Expr):
    op: str = ""          # '-', '!', '~', '+'
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""          # arithmetic / bitwise / comparison / '&&' / '||'
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr = None
    if_true: Expr = None
    if_false: Expr = None


@dataclass
class CastExpr(Expr):
    target: Type = None
    operand: Expr = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# -- statements --------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Declaration(Stmt):
    """Scalar or array declaration, with an optional initializer."""

    name: str = ""
    var_type: Type = None
    dims: List[int] = field(default_factory=list)
    init: Optional[Expr] = None
    array_init: Optional[List[object]] = None  # flat constant list
    is_const: bool = False
    is_static: bool = False


@dataclass
class Assignment(Stmt):
    """``target = value`` or ``target[idx] = value`` (compound ops lowered)."""

    target: Expr = None        # NameRef or ArrayRef
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Block = None
    orelse: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Block = None
    pragmas: List[str] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None
    pragmas: List[str] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- declarations ------------------------------------------------------------


@dataclass
class ParamDecl(Node):
    name: str = ""
    type: Type = None          # scalar type, or element type when is_array
    is_array: bool = False
    dims: List[int] = field(default_factory=list)  # may be empty for T*/T[]


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: Type = None
    params: List[ParamDecl] = field(default_factory=list)
    body: Block = None
    pragmas: List[str] = field(default_factory=list)
    is_static: bool = False


@dataclass
class TranslationUnit(Node):
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[Declaration] = field(default_factory=list)
