"""Recursive-descent parser for the HermesC subset.

Restrictions versus full C (documented, checked with clear errors):

* assignments are statements, not expressions (except in ``for`` clauses);
* pointers may appear only as function parameters (treated as memory
  interfaces);
* no structs, unions, enums, gotos, switch, function pointers;
* array dimensions and array initializers must be compile-time constants.

These restrictions match what a pragmatic HLS front end accepts for
accelerator kernels, which is the role Bambu plays in the paper.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.types import Type, c_type_from_specifiers
from . import ast
from .lexer import Token, tokenize

_TYPE_SPECIFIERS = {
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "_Bool",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "size_t", "bool",
}
_QUALIFIERS = {"const", "static", "inline", "volatile", "restrict"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operator precedence (C-like); higher binds tighter.
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]
_OP_NAME = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "&&": "land", "||": "lor",
}


class ParseError(Exception):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._pending_pragmas: List[str] = []

    # -- token helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self._peek())
        return self._advance()

    def _collect_pragmas(self) -> None:
        while self._check("pragma"):
            self._pending_pragmas.append(self._advance().text)

    def _take_pragmas(self) -> List[str]:
        pragmas, self._pending_pragmas = self._pending_pragmas, []
        return pragmas

    # -- type parsing ----------------------------------------------------

    def _at_type(self) -> bool:
        tok = self._peek()
        return tok.kind == "keyword" and (
            tok.text in _TYPE_SPECIFIERS or tok.text in _QUALIFIERS
        )

    def _parse_type(self) -> tuple:
        """Parse qualifiers+specifiers; returns (type, is_const, is_static)."""
        is_const = False
        is_static = False
        specifiers: List[str] = []
        while True:
            tok = self._peek()
            if tok.kind != "keyword":
                break
            if tok.text in _QUALIFIERS:
                if tok.text == "const":
                    is_const = True
                if tok.text == "static":
                    is_static = True
                self._advance()
                continue
            if tok.text in _TYPE_SPECIFIERS:
                specifiers.append(self._advance().text)
                continue
            break
        if not specifiers:
            raise ParseError("expected type specifier", self._peek())
        if specifiers == ["double"]:
            specifiers = ["float"]  # doubles degrade to binary32 in HW
        return c_type_from_specifiers(specifiers), is_const, is_static

    # -- top level ------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self._check("eof"):
            self._collect_pragmas()
            if self._check("eof"):
                break
            line = self._peek().line
            base_type, is_const, is_static = self._parse_type()
            pointer = self._accept("op", "*") is not None
            name = self._expect("ident").text
            if self._check("op", "("):
                # Take pragmas now: pragmas inside the body belong to loops.
                pragmas = self._take_pragmas()
                func = self._parse_function(base_type, name, is_static, line)
                func.pragmas = pragmas
                unit.functions.append(func)
            else:
                if pointer:
                    raise ParseError("global pointers unsupported", self._peek())
                decls = self._parse_declarators(base_type, name, is_const, is_static, line)
                self._expect("op", ";")
                unit.globals.extend(decls)
                self._take_pragmas()
        return unit

    def _parse_function(self, return_type: Type, name: str, is_static: bool,
                        line: int) -> ast.FunctionDef:
        self._expect("op", "(")
        params: List[ast.ParamDecl] = []
        if not self._check("op", ")"):
            if self._check("keyword", "void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    params.append(self._parse_param())
                    if not self._accept("op", ","):
                        break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.FunctionDef(
            line=line, name=name, return_type=return_type, params=params,
            body=body, is_static=is_static,
        )

    def _parse_param(self) -> ast.ParamDecl:
        line = self._peek().line
        ptype, _, _ = self._parse_type()
        is_pointer = self._accept("op", "*") is not None
        while self._accept("keyword", "const") or self._accept("keyword", "restrict"):
            pass
        name = self._expect("ident").text
        dims: List[int] = []
        is_array = is_pointer
        while self._accept("op", "["):
            is_array = True
            if not self._check("op", "]"):
                dims.append(self._parse_const_int())
            self._expect("op", "]")
        return ast.ParamDecl(line=line, name=name, type=ptype,
                             is_array=is_array, dims=dims)

    # -- statements -------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self._expect("op", "{").line
        block = ast.Block(line=line)
        while not self._check("op", "}"):
            if self._check("eof"):
                raise ParseError("unterminated block", self._peek())
            block.stmts.append(self._parse_statement())
        self._expect("op", "}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        self._collect_pragmas()
        tok = self._peek()
        if tok.kind == "op" and tok.text == "{":
            return self._parse_block()
        if tok.kind == "op" and tok.text == ";":
            self._advance()
            return ast.Block(line=tok.line)
        if tok.kind == "keyword":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "do":
                return self._parse_do_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self._advance()
                value = None
                if not self._check("op", ";"):
                    value = self._parse_expression()
                self._expect("op", ";")
                return ast.Return(line=tok.line, value=value)
            if tok.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=tok.line)
            if tok.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=tok.line)
            if self._at_type():
                stmt = self._parse_declaration_stmt()
                self._expect("op", ";")
                return stmt
            raise ParseError("unexpected keyword", tok)
        stmt = self._parse_simple_statement()
        self._expect("op", ";")
        return stmt

    def _parse_declaration_stmt(self) -> ast.Stmt:
        line = self._peek().line
        base_type, is_const, is_static = self._parse_type()
        name = self._expect("ident").text
        decls = self._parse_declarators(base_type, name, is_const, is_static, line)
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line=line, stmts=list(decls))

    def _parse_declarators(self, base_type: Type, first_name: str,
                           is_const: bool, is_static: bool,
                           line: int) -> List[ast.Declaration]:
        decls = [self._parse_one_declarator(base_type, first_name, is_const,
                                            is_static, line)]
        while self._accept("op", ","):
            name = self._expect("ident").text
            decls.append(self._parse_one_declarator(base_type, name, is_const,
                                                    is_static, line))
        return decls

    def _parse_one_declarator(self, base_type: Type, name: str, is_const: bool,
                              is_static: bool, line: int) -> ast.Declaration:
        dims: List[int] = []
        while self._accept("op", "["):
            dims.append(self._parse_const_int())
            self._expect("op", "]")
        init = None
        array_init = None
        if self._accept("op", "="):
            if dims:
                array_init = self._parse_array_initializer()
            else:
                init = self._parse_expression()
        return ast.Declaration(line=line, name=name, var_type=base_type,
                               dims=dims, init=init, array_init=array_init,
                               is_const=is_const, is_static=is_static)

    def _parse_array_initializer(self) -> List[object]:
        """Parse a (possibly nested) brace initializer into a flat list."""
        self._expect("op", "{")
        values: List[object] = []
        if not self._check("op", "}"):
            while True:
                if self._check("op", "{"):
                    values.extend(self._parse_array_initializer())
                else:
                    values.append(self._parse_const_number())
                if not self._accept("op", ","):
                    break
                if self._check("op", "}"):
                    break  # trailing comma
        self._expect("op", "}")
        return values

    def _parse_const_number(self):
        negative = self._accept("op", "-") is not None
        tok = self._peek()
        if tok.kind not in ("int", "float"):
            raise ParseError("expected constant", tok)
        self._advance()
        value = tok.value
        return -value if negative else value

    def _parse_const_int(self) -> int:
        value = self._parse_const_number()
        if not isinstance(value, int):
            raise ParseError("expected integer constant", self._peek())
        return value

    def _parse_simple_statement(self) -> ast.Stmt:
        """Assignment, inc/dec, or bare expression (e.g. a call)."""
        start = self._pos
        line = self._peek().line
        if self._check("ident"):
            target = self._parse_postfix_target()
            if target is not None:
                tok = self._peek()
                if tok.kind == "op" and tok.text in _ASSIGN_OPS:
                    self._advance()
                    value = self._parse_expression()
                    if tok.text != "=":
                        op = _OP_NAME[tok.text[:-1]]
                        value = ast.Binary(line=line, op=op,
                                           lhs=self._clone_ref(target), rhs=value)
                    return ast.Assignment(line=line, target=target, value=value)
                if tok.kind == "op" and tok.text in ("++", "--"):
                    self._advance()
                    op = "add" if tok.text == "++" else "sub"
                    one = ast.IntLiteral(line=line, value=1)
                    value = ast.Binary(line=line, op=op,
                                       lhs=self._clone_ref(target), rhs=one)
                    return ast.Assignment(line=line, target=target, value=value)
            self._pos = start
        if self._check("op", "++") or self._check("op", "--"):
            tok = self._advance()
            target = self._parse_postfix_target()
            if target is None:
                raise ParseError("expected lvalue after ++/--", self._peek())
            op = "add" if tok.text == "++" else "sub"
            one = ast.IntLiteral(line=line, value=1)
            value = ast.Binary(line=line, op=op,
                               lhs=self._clone_ref(target), rhs=one)
            return ast.Assignment(line=line, target=target, value=value)
        expr = self._parse_expression()
        return ast.ExprStmt(line=line, expr=expr)

    def _parse_postfix_target(self) -> Optional[ast.Expr]:
        """Parse ``name`` or ``name[e]...`` when it is an lvalue position."""
        tok = self._expect("ident")
        if self._check("op", "("):
            # It is a call, not an lvalue — rewind caller handles this.
            self._pos -= 1
            return None
        if self._check("op", "["):
            indices = []
            while self._accept("op", "["):
                indices.append(self._parse_expression())
                self._expect("op", "]")
            return ast.ArrayRef(line=tok.line, name=tok.text, indices=indices)
        return ast.NameRef(line=tok.line, name=tok.text)

    @staticmethod
    def _clone_ref(target: ast.Expr) -> ast.Expr:
        if isinstance(target, ast.NameRef):
            return ast.NameRef(line=target.line, name=target.name)
        assert isinstance(target, ast.ArrayRef)
        return ast.ArrayRef(line=target.line, name=target.name,
                            indices=list(target.indices))

    def _parse_if(self) -> ast.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._as_block(self._parse_statement())
        orelse = None
        if self._accept("keyword", "else"):
            orelse = self._as_block(self._parse_statement())
        return ast.If(line=line, cond=cond, then=then, orelse=orelse)

    def _parse_while(self) -> ast.While:
        pragmas = self._take_pragmas()
        line = self._expect("keyword", "while").line
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._as_block(self._parse_statement())
        return ast.While(line=line, cond=cond, body=body, pragmas=pragmas)

    def _parse_do_while(self) -> ast.DoWhile:
        line = self._expect("keyword", "do").line
        body = self._as_block(self._parse_statement())
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(line=line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        pragmas = self._take_pragmas()
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init = None
        if not self._check("op", ";"):
            if self._at_type():
                init = self._parse_declaration_stmt()
            else:
                init = self._parse_simple_statement()
        self._expect("op", ";")
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_simple_statement()
        self._expect("op", ")")
        body = self._as_block(self._parse_statement())
        return ast.For(line=line, init=init, cond=cond, step=step, body=body,
                       pragmas=pragmas)

    @staticmethod
    def _as_block(stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(line=stmt.line, stmts=[stmt])

    # -- expressions ---------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("op", "?"):
            if_true = self._parse_expression()
            self._expect("op", ":")
            if_false = self._parse_conditional()
            return ast.Conditional(line=cond.line, cond=cond,
                                   if_true=if_true, if_false=if_false)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self._peek().kind == "op" and self._peek().text in ops:
            tok = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(line=tok.line, op=_OP_NAME[tok.text],
                             lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "+"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            op = {"-": "neg", "!": "not", "~": "bnot"}[tok.text]
            return ast.Unary(line=tok.line, op=op, operand=operand)
        # Cast: '(' type ')' unary
        if tok.kind == "op" and tok.text == "(":
            next_tok = self._peek(1)
            if next_tok.kind == "keyword" and (
                next_tok.text in _TYPE_SPECIFIERS or next_tok.text in _QUALIFIERS
            ):
                self._advance()
                target, _, _ = self._parse_type()
                self._expect("op", ")")
                operand = self._parse_unary()
                return ast.CastExpr(line=tok.line, target=target, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        if tok.kind == "int":
            self._advance()
            return ast.IntLiteral(line=tok.line, value=tok.value)
        if tok.kind == "float":
            self._advance()
            return ast.FloatLiteral(line=tok.line, value=tok.value)
        if tok.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                return ast.CallExpr(line=tok.line, callee=tok.text, args=args)
            if self._check("op", "["):
                indices = []
                while self._accept("op", "["):
                    indices.append(self._parse_expression())
                    self._expect("op", "]")
                return ast.ArrayRef(line=tok.line, name=tok.text, indices=indices)
            return ast.NameRef(line=tok.line, name=tok.text)
        raise ParseError("expected expression", tok)


def parse(source: str) -> ast.TranslationUnit:
    """Parse HermesC source text into a translation unit."""
    return Parser(tokenize(source)).parse_translation_unit()
