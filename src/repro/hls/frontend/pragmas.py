"""HLS pragma parsing.

The front end accepts Bambu/Vitis-style pragmas:

* ``#pragma HLS interface port=<name> mode=<bram|axi|rom> [bundle=<name>]``
  — selects how a pointer/array parameter is accessed (paper §II: AXI4
  master generation);
* ``#pragma HLS unroll factor=<N>`` — unrolls the following loop;
* ``#pragma HLS inline`` — always inline this function;
* ``#pragma HLS dataflow`` — synthesize the function as a dynamically
  controlled coarse-grained task pipeline (paper §II, ref [14]);
* ``#pragma HLS allocation <resource>=<N>`` — cap functional unit count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class PragmaError(Exception):
    pass


@dataclass
class InterfacePragma:
    port: str
    mode: str               # 'bram' | 'axi' | 'rom'
    bundle: Optional[str] = None


@dataclass
class UnrollPragma:
    factor: int             # 0 means "full"


@dataclass
class AllocationPragma:
    limits: Dict[str, int] = field(default_factory=dict)


@dataclass
class ProtectPragma:
    """``#pragma HLS protect port=<name> scheme=<ecc|secded|tmr|none>`` —
    declares the SEU mitigation applied to a memory object (used by the
    SEU-taint dataflow analysis and the radhard campaigns)."""

    port: str
    scheme: str


@dataclass
class FunctionPragmas:
    """Aggregated function-level pragma state."""

    inline: bool = False
    dataflow: bool = False
    interfaces: Dict[str, InterfacePragma] = field(default_factory=dict)
    allocation: Dict[str, int] = field(default_factory=dict)
    # Memory-object name -> SEU protection scheme.
    protections: Dict[str, str] = field(default_factory=dict)


def _parse_kv(parts: List[str]) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for part in parts:
        if "=" in part:
            key, _, value = part.partition("=")
            kv[key.strip()] = value.strip()
        else:
            kv[part.strip()] = ""
    return kv


def parse_pragma(text: str):
    """Parse one ``#pragma`` line; returns a pragma object or ``None``.

    Non-HLS pragmas are ignored (returns ``None``); malformed HLS pragmas
    raise :class:`PragmaError`.
    """
    words = text.split()
    if len(words) < 2 or words[0] != "#pragma":
        raise PragmaError(f"not a pragma: {text!r}")
    if words[1].upper() != "HLS":
        return None
    if len(words) < 3:
        raise PragmaError(f"empty HLS pragma: {text!r}")
    directive = words[2].lower()
    kv = _parse_kv(words[3:])
    if directive == "interface":
        port = kv.get("port")
        mode = kv.get("mode", "bram").lower()
        if not port:
            raise PragmaError(f"interface pragma needs port=: {text!r}")
        if mode not in ("bram", "axi", "rom"):
            raise PragmaError(f"unknown interface mode {mode!r}")
        return InterfacePragma(port=port, mode=mode, bundle=kv.get("bundle"))
    if directive == "unroll":
        factor_text = kv.get("factor", "0")
        try:
            factor = int(factor_text)
        except ValueError:
            raise PragmaError(f"bad unroll factor {factor_text!r}") from None
        if factor < 0:
            raise PragmaError("unroll factor must be >= 0")
        return UnrollPragma(factor=factor)
    if directive == "inline":
        return "inline"
    if directive == "dataflow":
        return "dataflow"
    if directive == "pipeline":
        # Accepted for compatibility; treated as full unroll request of the
        # innermost loop body scheduling (no initiation-interval pipelining).
        return UnrollPragma(factor=0)
    if directive == "protect":
        port = kv.get("port")
        scheme = kv.get("scheme", "none").lower()
        if not port:
            raise PragmaError(f"protect pragma needs port=: {text!r}")
        if scheme not in ("ecc", "secded", "tmr", "none"):
            raise PragmaError(f"unknown protection scheme {scheme!r}")
        return ProtectPragma(port=port, scheme=scheme)
    if directive == "allocation":
        limits: Dict[str, int] = {}
        for key, value in kv.items():
            try:
                limits[key] = int(value)
            except ValueError:
                raise PragmaError(f"bad allocation limit {key}={value!r}") from None
        return AllocationPragma(limits=limits)
    raise PragmaError(f"unknown HLS directive {directive!r}")


def collect_function_pragmas(lines: List[str]) -> FunctionPragmas:
    """Aggregate the pragma lines attached to a function definition."""
    result = FunctionPragmas()
    for line in lines:
        pragma = parse_pragma(line)
        if pragma == "inline":
            result.inline = True
        elif pragma == "dataflow":
            result.dataflow = True
        elif isinstance(pragma, InterfacePragma):
            result.interfaces[pragma.port] = pragma
        elif isinstance(pragma, AllocationPragma):
            result.allocation.update(pragma.limits)
        elif isinstance(pragma, ProtectPragma):
            result.protections[pragma.port] = pragma.scheme
        # Unroll pragmas are loop-level; ignore at function level.
    return result


def loop_unroll_factor(lines: List[str]) -> Optional[int]:
    """Extract the unroll factor from the pragmas attached to a loop."""
    for line in lines:
        pragma = parse_pragma(line)
        if isinstance(pragma, UnrollPragma):
            return pragma.factor
    return None
