"""HermesC front end: lexer, parser, semantic analysis, IR generation."""

from .irgen import IRGenError, compile_to_ir
from .lexer import LexerError, Token, tokenize
from .parser import ParseError, parse
from .pragmas import (
    AllocationPragma,
    FunctionPragmas,
    InterfacePragma,
    PragmaError,
    UnrollPragma,
    collect_function_pragmas,
    parse_pragma,
)
from .semantic import SemanticError, analyze
from .unroll import UnrollReport, unroll_loops

__all__ = [
    "IRGenError", "compile_to_ir",
    "LexerError", "Token", "tokenize",
    "ParseError", "parse",
    "AllocationPragma", "FunctionPragmas", "InterfacePragma", "PragmaError",
    "UnrollPragma", "collect_function_pragmas", "parse_pragma",
    "SemanticError", "analyze",
    "UnrollReport", "unroll_loops",
]
