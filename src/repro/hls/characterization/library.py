"""Technology library of RTL components used by the HLS backend.

Bambu annotates every library component (adders, multipliers, memories,
floating-point cores, ...) with latency and resource occupation under
different clock-period constraints; the paper describes how the Eucalyptus
tool produces those annotations for the NG-ULTRA fabric (§II).

This module provides:

* :class:`ComponentRecord` — one characterization point
  (resource class × bit width × pipeline stages);
* :class:`ComponentLibrary` — the lookup structure used by allocation and
  scheduling, including clock-aware latency queries;
* :func:`default_library` — an analytic pre-characterization of the
  NG-ULTRA fabric (LUT4 + DSP + TDPRAM based delay/area formulas).  The
  Eucalyptus tool (``eucalyptus.py``) can re-characterize the library by
  synthesizing each component through the NXmap-equivalent flow, replacing
  these analytic values with measured ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple
from xml.etree import ElementTree


@dataclass(frozen=True)
class ComponentRecord:
    """One characterized configuration of a library component."""

    resource_class: str
    width: int
    stages: int          # pipeline stages (0 = purely combinational)
    delay_ns: float      # combinational delay, or per-stage delay if staged
    luts: int
    ffs: int
    dsps: int = 0
    brams: int = 0

    @property
    def is_sequential(self) -> bool:
        return self.stages > 0


class CharacterizationError(Exception):
    pass


class ComponentLibrary:
    """Characterized component store with clock-aware selection."""

    def __init__(self, name: str = "ng-ultra-analytic") -> None:
        self.name = name
        self._records: Dict[Tuple[str, int, int], ComponentRecord] = {}

    # -- population ------------------------------------------------------

    def add(self, record: ComponentRecord) -> None:
        key = (record.resource_class, record.width, record.stages)
        self._records[key] = record

    def records(self) -> List[ComponentRecord]:
        return sorted(self._records.values(),
                      key=lambda r: (r.resource_class, r.width, r.stages))

    # -- queries -----------------------------------------------------------

    def widths_for(self, resource_class: str) -> List[int]:
        return sorted({w for (cls, w, _s) in self._records
                       if cls == resource_class})

    def lookup(self, resource_class: str, width: int,
               stages: Optional[int] = None) -> ComponentRecord:
        """Find the record for the smallest characterized width >= width."""
        widths = self.widths_for(resource_class)
        if not widths:
            raise CharacterizationError(
                f"no characterization for {resource_class!r}")
        chosen_width = next((w for w in widths if w >= width), widths[-1])
        if stages is not None:
            record = self._records.get((resource_class, chosen_width, stages))
            if record is None:
                raise CharacterizationError(
                    f"{resource_class} width {chosen_width} has no "
                    f"{stages}-stage variant")
            return record
        candidates = [r for (cls, w, _s), r in self._records.items()
                      if cls == resource_class and w == chosen_width]
        return min(candidates, key=lambda r: r.stages)

    def select(self, resource_class: str, width: int,
               clock_ns: float) -> ComponentRecord:
        """Pick the cheapest variant whose stage delay fits the clock.

        Prefers combinational variants (stage 0); falls back to the most
        shallowly pipelined variant that meets timing; if nothing meets
        timing the deepest variant is returned (the design will then limit
        Fmax, exactly as a real flow reports a timing violation).
        """
        widths = self.widths_for(resource_class)
        if not widths:
            raise CharacterizationError(
                f"no characterization for {resource_class!r}")
        chosen_width = next((w for w in widths if w >= width), widths[-1])
        variants = sorted(
            (r for (cls, w, _s), r in self._records.items()
             if cls == resource_class and w == chosen_width),
            key=lambda r: r.stages)
        for record in variants:
            if record.delay_ns <= clock_ns:
                return record
        return variants[-1]

    def latency_cycles(self, resource_class: str, width: int,
                       clock_ns: float) -> int:
        """Cycles consumed by an operation at the given clock.

        Combinational components take 1 cycle (they can additionally chain
        — the scheduler uses ``delay`` for that); staged components take
        ``stages`` cycles.
        """
        record = self.select(resource_class, width, clock_ns)
        if record.stages == 0:
            return 1
        return record.stages

    def delay(self, resource_class: str, width: int, clock_ns: float) -> float:
        """Combinational delay contribution for chaining decisions."""
        record = self.select(resource_class, width, clock_ns)
        if record.stages == 0:
            return record.delay_ns
        return record.delay_ns  # per-stage delay of the selected variant

    # -- XML persistence (the Eucalyptus exchange format, paper §II) ------

    def to_xml(self) -> str:
        root = ElementTree.Element("component_library", name=self.name)
        for record in self.records():
            ElementTree.SubElement(
                root, "component",
                resource_class=record.resource_class,
                width=str(record.width),
                stages=str(record.stages),
                delay_ns=f"{record.delay_ns:.4f}",
                luts=str(record.luts),
                ffs=str(record.ffs),
                dsps=str(record.dsps),
                brams=str(record.brams),
            )
        ElementTree.indent(root)
        return ElementTree.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "ComponentLibrary":
        root = ElementTree.fromstring(text)
        if root.tag != "component_library":
            raise CharacterizationError(f"unexpected root tag {root.tag!r}")
        library = cls(name=root.get("name", "imported"))
        for element in root.findall("component"):
            library.add(ComponentRecord(
                resource_class=element.get("resource_class"),
                width=int(element.get("width")),
                stages=int(element.get("stages")),
                delay_ns=float(element.get("delay_ns")),
                luts=int(element.get("luts")),
                ffs=int(element.get("ffs")),
                dsps=int(element.get("dsps", "0")),
                brams=int(element.get("brams", "0")),
            ))
        return library


# ---------------------------------------------------------------------------
# Analytic NG-ULTRA pre-characterization
# ---------------------------------------------------------------------------

# Base timing parameters for the modelled 28nm FD-SOI fabric.  A LUT4 level
# costs ~0.35 ns including local routing; carry chains amortize ripple
# logic; DSP blocks run a 32x32 multiply in ~2.4 ns.
_LUT_LEVEL_NS = 0.35
_CARRY_NS_PER_BIT = 0.035
_DSP_MUL_NS = 2.4
_WIDTHS = (1, 8, 16, 24, 32, 64)


def _addsub(width: int) -> Iterable[ComponentRecord]:
    delay = _LUT_LEVEL_NS + _CARRY_NS_PER_BIT * width
    yield ComponentRecord("addsub", width, 0, delay, luts=width, ffs=0)
    yield ComponentRecord("addsub", width, 2, delay / 2 + 0.15,
                          luts=width + 4, ffs=width * 2)


def _mult(width: int) -> Iterable[ComponentRecord]:
    if width <= 18:
        # Fits a single DSP slice.
        yield ComponentRecord("mult", width, 0, _DSP_MUL_NS * 0.7,
                              luts=0, ffs=0, dsps=1)
        yield ComponentRecord("mult", width, 2, _DSP_MUL_NS * 0.4,
                              luts=0, ffs=width * 2, dsps=1)
    else:
        dsps = max(1, math.ceil(width / 18) ** 2 // 2)
        yield ComponentRecord("mult", width, 0, _DSP_MUL_NS,
                              luts=width // 2, ffs=0, dsps=dsps)
        yield ComponentRecord("mult", width, 2, _DSP_MUL_NS * 0.55,
                              luts=width // 2, ffs=width * 2, dsps=dsps)
        yield ComponentRecord("mult", width, 4, _DSP_MUL_NS * 0.35,
                              luts=width // 2, ffs=width * 4, dsps=dsps)


def _divider(width: int) -> Iterable[ComponentRecord]:
    # Radix-2 restoring divider: one bit per stage, `width` cycles.
    yield ComponentRecord("divider", width, max(1, width),
                          _LUT_LEVEL_NS + _CARRY_NS_PER_BIT * width,
                          luts=width * 3, ffs=width * 3)


def _logic(width: int) -> Iterable[ComponentRecord]:
    yield ComponentRecord("logic", width, 0, _LUT_LEVEL_NS,
                          luts=max(1, width // 2), ffs=0)


def _shifter(width: int) -> Iterable[ComponentRecord]:
    levels = max(1, math.ceil(math.log2(max(2, width))))
    yield ComponentRecord("shifter", width, 0, _LUT_LEVEL_NS * levels,
                          luts=width * levels // 2, ffs=0)


def _comparator(width: int) -> Iterable[ComponentRecord]:
    delay = _LUT_LEVEL_NS + _CARRY_NS_PER_BIT * width * 0.6
    yield ComponentRecord("comparator", width, 0, delay,
                          luts=max(1, width // 2), ffs=0)


def _mux(width: int) -> Iterable[ComponentRecord]:
    yield ComponentRecord("mux", width, 0, _LUT_LEVEL_NS,
                          luts=max(1, width // 2), ffs=0)


def _wire(width: int) -> Iterable[ComponentRecord]:
    yield ComponentRecord("wire", width, 0, 0.05, luts=0, ffs=0)


def _memories(width: int) -> Iterable[ComponentRecord]:
    # NG-ULTRA true-dual-port RAM: registered output, 1-cycle read.
    yield ComponentRecord("mem_bram", width, 1, 1.1, luts=0, ffs=0, brams=1)
    # External memory over AXI: characterized at the nominal 8-cycle round
    # trip; the interface model adds the configured extra latency.
    yield ComponentRecord("mem_axi", width, 8, 1.2, luts=60, ffs=90)


def _float_units() -> Iterable[ComponentRecord]:
    yield ComponentRecord("faddsub", 32, 3, 2.6, luts=380, ffs=250)
    yield ComponentRecord("fmult", 32, 2, 2.8, luts=120, ffs=140, dsps=2)
    yield ComponentRecord("fdivider", 32, 12, 2.9, luts=700, ffs=520)
    yield ComponentRecord("fsqrt", 32, 16, 2.9, luts=460, ffs=380)
    yield ComponentRecord("fcomparator", 32, 0, 1.4, luts=70, ffs=0)
    yield ComponentRecord("fconvert", 32, 2, 2.1, luts=180, ffs=90)
    yield ComponentRecord("flogic", 32, 0, _LUT_LEVEL_NS, luts=16, ffs=0)


def default_library() -> ComponentLibrary:
    """Analytic NG-ULTRA component library (pre-Eucalyptus)."""
    library = ComponentLibrary()
    generators = (_addsub, _mult, _divider, _logic, _shifter, _comparator,
                  _mux, _wire, _memories)
    for width in _WIDTHS:
        for generator in generators:
            for record in generator(width):
                library.add(record)
    for record in _float_units():
        library.add(record)
    return library
