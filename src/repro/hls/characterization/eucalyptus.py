"""Eucalyptus: component pre-characterization through the fabric flow.

Paper §II: "Bambu integrates a characterization tool called Eucalyptus to
synthesize different configurations of library components and collect the
resulting latency and resource consumption metrics as XML files in the
Bambu library.  The configurations are obtained by specializing a generic
template of the resource component according to the bit widths of its
input and output arguments, and to the number of pipeline stages."

This module does exactly that against the NXmap-equivalent backend: every
(component, width, stages) configuration is synthesized structurally,
placed, routed and timed on the target device; the measured delay and
resource counts become :class:`ComponentRecord` entries, exported as XML.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ...cache import FlowCache, content_key, device_fingerprint
from ...exec.engine import ExecError, ExecutionReport, ParallelEngine
from ...fabric.device import Device, NG_ULTRA
from ...fabric.nxmap import NXmapProject
from ...fabric.synthesis import supported_components, synthesize_component
from ...telemetry import Tracer
from .library import ComponentLibrary, ComponentRecord

DEFAULT_WIDTHS = (8, 16, 32)
DEFAULT_STAGES = (0, 2)

# Components whose template ignores the stages parameter.
_COMBINATIONAL_ONLY = {"logic", "shifter", "comparator", "mux"}
# Sequential-by-construction components (latency fixed by the template).
_FIXED_LATENCY = {"divider", "mem_bram"}


@dataclass
class CharacterizationRun:
    """Result of characterizing one configuration."""

    component: str
    width: int
    stages: int
    delay_ns: float
    luts: int
    ffs: int
    dsps: int
    brams: int
    wirelength: int

    def to_record(self) -> ComponentRecord:
        return ComponentRecord(
            resource_class=self.component, width=self.width,
            stages=self.stages, delay_ns=self.delay_ns, luts=self.luts,
            ffs=self.ffs, dsps=self.dsps, brams=self.brams)

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "CharacterizationRun":
        return cls(**{name: payload[name]
                      for name in ("component", "width", "stages",
                                   "delay_ns", "luts", "ffs", "dsps",
                                   "brams", "wirelength")})

    def summary(self) -> str:
        return (f"{self.component}/w{self.width}/s{self.stages}: "
                f"{self.delay_ns:.3f} ns, {self.luts} LUTs, "
                f"{self.ffs} FFs, {self.dsps} DSPs, {self.brams} BRAMs")


@dataclass
class SweepReport:
    """JSON-able result of one characterization sweep.

    The wire-format report the ``characterize`` job kind returns: the
    target device, the sweep effort and every configuration's measured
    run, in configuration order.
    """

    device: str
    effort: float
    runs: List[CharacterizationRun]

    def to_json(self) -> Dict[str, Any]:
        return {"device": self.device, "effort": self.effort,
                "runs": [run.to_json() for run in self.runs]}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SweepReport":
        return cls(device=payload["device"], effort=payload["effort"],
                   runs=[CharacterizationRun.from_json(entry)
                         for entry in payload["runs"]])

    def summary(self) -> str:
        worst = max((run.delay_ns for run in self.runs), default=0.0)
        return (f"sweep on {self.device}: {len(self.runs)} "
                f"configurations, worst delay {worst:.3f} ns")


class Eucalyptus:
    """Drives characterization sweeps over the fabric flow."""

    def __init__(self, device: Device = NG_ULTRA, seed: int = 7,
                 effort: float = 0.3,
                 tracer: Optional[Tracer] = None,
                 cache: Optional[FlowCache] = None) -> None:
        self.device = device
        self.seed = seed
        self.effort = effort
        self.tracer = tracer
        self.cache = cache
        self.runs: List[CharacterizationRun] = []
        self.last_sweep_report: Optional[ExecutionReport] = None

    def _config_key(self, component: str, width: int, stages: int) -> str:
        """Content key of one configuration (requested, not effective)."""
        return content_key("characterize", {
            "device": device_fingerprint(self.device),
            "seed": self.seed, "effort": self.effort,
            "component": component, "width": width, "stages": stages})

    def characterize_one(self, component: str, width: int,
                         stages: int = 0) -> CharacterizationRun:
        if self.cache is not None:
            key = self._config_key(component, width, stages)
            hit, run = self.cache.get("characterize", key,
                                      CharacterizationRun.from_json)
            if not hit:
                run = self._characterize(component, width, stages,
                                         tracer=self.tracer)
                self.cache.put("characterize", key, run,
                               CharacterizationRun.to_json)
        else:
            run = self._characterize(component, width, stages,
                                     tracer=self.tracer)
        self.runs.append(run)
        return run

    def _characterize(self, component: str, width: int, stages: int = 0,
                      tracer: Optional[Tracer] = None
                      ) -> CharacterizationRun:
        """Characterize one configuration (pure: no state mutation).

        ``tracer`` is only threaded through on serial paths — sweep
        workers run untraced, and the sweep emits its deterministic
        per-configuration spans from the merged report instead.
        """
        netlist = synthesize_component(component, width, stages)
        project = NXmapProject(netlist, self.device, seed=self.seed,
                               tracer=tracer)
        project.run_place(effort=self.effort)
        project.run_route()
        timing = project.run_sta()
        stats = netlist.stats()
        if component == "divider":
            effective_stages = max(1, width)
        elif component == "mem_bram":
            effective_stages = 1
        elif stages > 0 and stats["ffs"] > 0:
            effective_stages = stages
        else:
            effective_stages = 0
        run = CharacterizationRun(
            component=component, width=width, stages=effective_stages,
            delay_ns=timing.critical_path_ns,
            luts=stats["luts"], ffs=stats["ffs"], dsps=stats["dsps"],
            brams=stats["brams"],
            wirelength=project.routing.wirelength if project.routing else 0)
        return run

    @staticmethod
    def configurations(components: Optional[Iterable[str]] = None,
                       widths: Iterable[int] = DEFAULT_WIDTHS,
                       stages: Iterable[int] = DEFAULT_STAGES
                       ) -> List[Tuple[str, int, int]]:
        """The cartesian configuration space a sweep will visit."""
        components = list(components or supported_components())
        configs: List[Tuple[str, int, int]] = []
        for component in components:
            for width in widths:
                stage_options: Tuple[int, ...]
                if component in _COMBINATIONAL_ONLY:
                    stage_options = (0,)
                elif component in _FIXED_LATENCY:
                    stage_options = (0,)
                else:
                    stage_options = tuple(stages)
                for stage in stage_options:
                    configs.append((component, width, stage))
        return configs

    def sweep(self, components: Optional[Iterable[str]] = None,
              widths: Iterable[int] = DEFAULT_WIDTHS,
              stages: Iterable[int] = DEFAULT_STAGES,
              jobs: int = 1, backend: str = "auto",
              timeout_s: Optional[float] = None, retries: int = 0,
              progress: Optional[Callable[[int, int], None]] = None
              ) -> List[CharacterizationRun]:
        """Characterize the cartesian configuration space.

        With ``jobs > 1`` configurations are characterized in parallel;
        every configuration uses the same fixed placement seed, so the
        measured numbers (and the exported XML library) are identical no
        matter the backend or job count.  A configuration that fails to
        synthesize aborts the sweep with :class:`~repro.exec.ExecError`
        naming the configuration — characterization must be complete to
        be usable as an HLS library.

        Thin shim over the unified job facade (:func:`repro.api.submit`,
        kind ``"characterize"``); the sweep body is
        :meth:`_sweep_impl`, driven by the runner against this live tool
        instance from the context's resources.
        """
        from ...api import JobSpec, submit
        spec = JobSpec(kind="characterize", params={
            "device": device_fingerprint(self.device),
            "effort": self.effort,
            "components": (list(components)
                           if components is not None else None),
            "widths": list(widths), "stages": list(stages)},
            seed=self.seed)
        result = submit(spec, jobs=jobs, backend=backend,
                        timeout_s=timeout_s, retries=retries,
                        progress=progress, tracer=self.tracer,
                        cache=self.cache, resources={"tool": self})
        return result.artifact

    def _sweep_impl(self, components: Optional[Iterable[str]] = None,
                    widths: Iterable[int] = DEFAULT_WIDTHS,
                    stages: Iterable[int] = DEFAULT_STAGES,
                    jobs: int = 1, backend: str = "auto",
                    timeout_s: Optional[float] = None, retries: int = 0,
                    progress: Optional[Callable[[int, int], None]] = None
                    ) -> List[CharacterizationRun]:
        """The sweep body (see :meth:`sweep` for the contract)."""
        configs = self.configurations(components, widths, stages)

        # Cache lookups (and later stores) happen parent-side: worker
        # threads/processes never touch the cache, so there are no
        # lost-update races and fork backends need no shared state.
        found: Dict[int, CharacterizationRun] = {}
        missing: List[int] = []
        if self.cache is not None:
            for index, (component, width, stage) in enumerate(configs):
                hit, value = self.cache.get(
                    "characterize", self._config_key(component, width,
                                                     stage),
                    CharacterizationRun.from_json)
                if hit:
                    found[index] = value
                else:
                    missing.append(index)
        else:
            missing = list(range(len(configs)))

        def characterize_config(index: int, _run_seed: int
                                ) -> CharacterizationRun:
            component, width, stage = configs[missing[index]]
            return self._characterize(component, width, stage)

        engine = ParallelEngine(jobs=jobs, backend=backend,
                                timeout_s=timeout_s, retries=retries,
                                progress=progress, tracer=self.tracer)
        report = engine.map_seeded(characterize_config, len(missing),
                                   self.seed)
        self.last_sweep_report = report
        failures = report.failures
        if failures:
            first = failures[0]
            raise ExecError(
                f"characterization of {configs[missing[first.index]]} "
                f"failed after {first.attempts} attempt(s): {first.error}")
        computed = [run_result.value for run_result in report.results]
        if self.cache is not None:
            for position, index in enumerate(missing):
                component, width, stage = configs[index]
                self.cache.put(
                    "characterize",
                    self._config_key(component, width, stage),
                    computed[position], CharacterizationRun.to_json)
        for position, index in enumerate(missing):
            found[index] = computed[position]
        results = [found[index] for index in range(len(configs))]
        if self.tracer is not None:
            self._emit_telemetry(configs, results)
        self.runs.extend(results)
        return results

    def _emit_telemetry(self, configs: List[Tuple[str, int, int]],
                        results: List[CharacterizationRun]) -> None:
        """Deterministic per-configuration spans from the merged sweep."""
        tracer = self.tracer
        assert tracer is not None
        sweep_counter = tracer.counter("fabric.characterizations",
                                       "fabric")
        base = sweep_counter.value
        sweep_counter.add(len(results))
        for index, run in enumerate(results):
            tracer.add_span(f"characterize:{run.component}", "fabric",
                            base + index, base + index + 1,
                            component=run.component, width=run.width,
                            stages=run.stages,
                            delay_ns=round(run.delay_ns, 6),
                            luts=run.luts, ffs=run.ffs, dsps=run.dsps,
                            brams=run.brams, wirelength=run.wirelength)
        tracer.add_span("sweep", "fabric", base, base + len(results),
                        device=self.device.name, configs=len(configs))

    def build_library(self, name: Optional[str] = None) -> ComponentLibrary:
        """Collect all runs into a component library (XML-exportable)."""
        library = ComponentLibrary(
            name=name or f"eucalyptus-{self.device.name.lower()}")
        for run in self.runs:
            library.add(run.to_record())
        return library
