"""Component characterization (the Eucalyptus tool of paper §II)."""

from .library import (
    CharacterizationError,
    ComponentLibrary,
    ComponentRecord,
    default_library,
)

__all__ = [
    "CharacterizationError", "ComponentLibrary", "ComponentRecord",
    "default_library",
]
