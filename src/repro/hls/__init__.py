"""Bambu-equivalent High-Level Synthesis tool (paper §II)."""

from .flow import CosimResult, HlsDesign, HlsFlowError, HlsProject, synthesize
from .frontend import compile_to_ir

__all__ = [
    "CosimResult", "HlsDesign", "HlsFlowError", "HlsProject", "synthesize",
    "compile_to_ir",
]
