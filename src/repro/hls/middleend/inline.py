"""Function inlining.

Functions marked ``#pragma HLS inline`` and small leaf functions are
spliced into their callers.  Inlining removes the handshake latency of a
sub-module call and opens the callee body to the caller's optimizations,
at the cost of duplicated hardware — the classic HLS trade-off.
"""

from __future__ import annotations

from typing import Dict

from ..ir import (
    Assign,
    Branch,
    Call,
    Function,
    Jump,
    Module,
    Operation,
    Return,
    Value,
)
from ..ir.values import MemObject, Temp, Var

# A function is auto-inlined when its op count is at most this and it has
# no local memories (duplicating BRAMs is rarely profitable).
_AUTO_INLINE_MAX_OPS = 12


def _should_inline(callee: Function) -> bool:
    if callee.pragmas.get("inline"):
        return True
    if callee.pragmas.get("dataflow"):
        return False
    has_local_mem = any(not m.is_param and not m.is_global
                        for m in callee.mems.values())
    has_calls = any(isinstance(op, Call) for op in callee.all_ops())
    return (callee.op_count() <= _AUTO_INLINE_MAX_OPS
            and not has_local_mem and not has_calls)


class _Cloner:
    """Clones callee values into the caller's namespace."""

    def __init__(self, caller: Function, prefix: str,
                 mem_map: Dict[str, MemObject]) -> None:
        self.caller = caller
        self.prefix = prefix
        self.mem_map = mem_map
        self.value_map: Dict[Value, Value] = {}

    def value(self, value: Value) -> Value:
        if value in self.value_map:
            return self.value_map[value]
        if isinstance(value, Var):
            clone: Value = Var(f"{self.prefix}.{value.name}", value.type)
        elif isinstance(value, Temp):
            clone = self.caller.temps.new(value.type)
        else:
            return value  # constants
        self.value_map[value] = clone
        return clone

    def op(self, op: Operation, label_map: Dict[str, str]) -> Operation:
        """Rebuild ``op`` with remapped values, memories and labels.

        Reconstruction (rather than in-place ``replace_input``) is
        essential: caller temps are numbered independently of callee
        temps, so a freshly substituted caller temp can compare equal to a
        not-yet-substituted callee temp and be clobbered by a later
        replacement.
        """
        from ..ir import Assign as IRAssign
        from ..ir import BinOp, Cast, Load, Select, Store, UnOp

        v = self.value
        if isinstance(op, BinOp):
            return BinOp(op.op, v(op.dst), v(op.lhs), v(op.rhs))
        if isinstance(op, UnOp):
            return UnOp(op.op, v(op.dst), v(op.src))
        if isinstance(op, IRAssign):
            return IRAssign(v(op.dst), v(op.src))
        if isinstance(op, Cast):
            return Cast(v(op.dst), v(op.src))
        if isinstance(op, Select):
            return Select(v(op.dst), v(op.cond), v(op.if_true), v(op.if_false))
        if isinstance(op, Load):
            return Load(v(op.dst), self.mem_map.get(op.mem.name, op.mem),
                        v(op.index))
        if isinstance(op, Store):
            return Store(self.mem_map.get(op.mem.name, op.mem),
                         v(op.index), v(op.src))
        if isinstance(op, Call):
            dst = None if op.dst is None else v(op.dst)
            return Call(dst, op.callee, [v(a) for a in op.args],
                        [self.mem_map.get(m.name, m) for m in op.mem_args])
        if isinstance(op, Jump):
            return Jump(label_map[op.target])
        if isinstance(op, Branch):
            return Branch(v(op.cond), label_map[op.if_true],
                          label_map[op.if_false])
        raise TypeError(f"cannot clone {op}")  # pragma: no cover


def _inline_call(caller: Function, block_name: str, op_index: int,
                 callee: Function, counter: int) -> None:
    """Splice ``callee`` in place of the call at (block, index)."""
    block = caller.blocks[block_name]
    call = block.ops[op_index]
    assert isinstance(call, Call)
    prefix = f"inl{counter}.{callee.name}"

    # Map callee memories: params to caller arguments, locals to fresh
    # copies in the caller, globals shared as-is.
    mem_map: Dict[str, MemObject] = {}
    mem_params = callee.memory_params()
    for param, arg_mem in zip(mem_params, call.mem_args):
        mem_map[param.name] = arg_mem
    for name, mem in callee.mems.items():
        if mem.is_param or mem.is_global:
            if mem.is_global and name not in caller.mems:
                caller.add_mem(mem)
            continue
        local = MemObject(name=f"{prefix}.{name}", element=mem.element,
                          size=mem.size, dims=mem.dims, storage=mem.storage,
                          initializer=list(mem.initializer))
        caller.add_mem(local)
        mem_map[name] = local

    cloner = _Cloner(caller, prefix, mem_map)

    # Fresh labels for callee blocks plus a continuation label.
    label_map = {name: f"{prefix}.{name}" for name in callee.blocks}
    cont_name = f"{prefix}.cont"

    # Continuation block: the remainder of the original block.
    cont = caller.blocks[cont_name] = type(block)(cont_name)
    caller.block_order.insert(caller.block_order.index(block_name) + 1,
                              cont_name)
    cont.ops = block.ops[op_index + 1:]
    cont.terminator = block.terminator

    # Original block: ops before the call, bind scalar args, jump in.
    block.ops = block.ops[:op_index]
    block.terminator = None
    for param, arg in zip(callee.scalar_params(), call.args):
        param_var = cloner.value(Var(param.name, param.type))
        block.append(Assign(param_var, arg))
    block.append(Jump(label_map[callee.entry]))

    # Clone callee blocks; returns become result assignment + jump out.
    insert_at = caller.block_order.index(cont_name)
    for src_name in callee.block_order:
        src = callee.blocks[src_name]
        new_name = label_map[src_name]
        new_block = type(block)(new_name)
        caller.blocks[new_name] = new_block
        caller.block_order.insert(insert_at, new_name)
        insert_at += 1
        for op in src.ops:
            new_block.append(cloner.op(op, label_map))
        term = src.terminator
        if isinstance(term, Return):
            if call.dst is not None and term.value is not None:
                new_block.append(Assign(call.dst, cloner.value(term.value)))
            new_block.append(Jump(cont_name))
        else:
            new_block.append(cloner.op(term, label_map))


def inline_functions(func: Function, module: Module) -> int:
    """Inline eligible calls inside ``func``; returns calls inlined."""
    if module is None:
        return 0
    changes = 0
    counter = 0
    progress = True
    while progress and counter < 64:
        progress = False
        for block in func.ordered_blocks():
            for index, op in enumerate(block.ops):
                if not isinstance(op, Call) or op.callee not in module.functions:
                    continue
                callee = module[op.callee]
                if callee is func or not _should_inline(callee):
                    continue
                _inline_call(func, block.name, index, callee, counter)
                counter += 1
                changes += 1
                progress = True
                break
            if progress:
                break
    return changes
