"""HLS middle end: optimization passes over the IR (paper Fig. 2)."""

from .cfgopt import simplify_cfg
from .constprop import constant_propagation
from .cse import common_subexpression_elimination
from .dce import dead_code_elimination, remove_unreachable
from .inline import inline_functions
from .pass_manager import OptReport, PassManager, default_pipeline, optimize
from .simplify import algebraic_simplification, copy_propagation

__all__ = [
    "simplify_cfg", "constant_propagation",
    "common_subexpression_elimination", "dead_code_elimination",
    "remove_unreachable", "inline_functions",
    "OptReport", "PassManager", "default_pipeline", "optimize",
    "algebraic_simplification", "copy_propagation",
]
