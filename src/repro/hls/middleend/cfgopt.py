"""CFG simplification: block merging and empty-block elimination.

Fewer basic blocks means fewer FSM states after scheduling, which directly
reduces controller area — one of the costs the paper's dataflow extension
targets for large designs.
"""

from __future__ import annotations

from typing import Dict

from ..ir import Branch, Function, Jump, Module


def _retarget(func: Function, old: str, new: str) -> int:
    changes = 0
    for block in func.ordered_blocks():
        term = block.terminator
        if isinstance(term, Jump) and term.target == old:
            term.target = new
            changes += 1
        elif isinstance(term, Branch):
            if term.if_true == old:
                term.if_true = new
                changes += 1
            if term.if_false == old:
                term.if_false = new
                changes += 1
    return changes


def simplify_cfg(func: Function, module: Module = None) -> int:
    changes = 0
    changes += func.remove_unreachable_blocks()

    # 1. Skip empty forwarding blocks (no ops, unconditional jump).
    forward: Dict[str, str] = {}
    for block in func.ordered_blocks():
        if not block.ops and isinstance(block.terminator, Jump) \
                and block.name != func.entry \
                and block.terminator.target != block.name:
            forward[block.name] = block.terminator.target
    for old, new in forward.items():
        # Resolve chains of empty blocks.
        seen = {old}
        while new in forward and new not in seen:
            seen.add(new)
            new = forward[new]
        if new != old:
            changes += _retarget(func, old, new)

    changes += func.remove_unreachable_blocks()

    # 2. Merge straight-line pairs: A jumps to B, B has exactly one pred.
    merged = True
    while merged:
        merged = False
        preds = func.predecessors()
        for block in func.ordered_blocks():
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            target_name = term.target
            if target_name == block.name or target_name == func.entry:
                continue
            if len(preds.get(target_name, [])) != 1:
                continue
            target = func.blocks[target_name]
            block.ops.extend(target.ops)
            block.terminator = target.terminator
            del func.blocks[target_name]
            func.block_order.remove(target_name)
            changes += 1
            merged = True
            break
    return changes
