"""Algebraic simplification, strength reduction and copy propagation."""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import Assign, BinOp, Const, Function, Module, UnOp, Value
from ..ir.types import FloatType, IntType
from ..ir.values import Temp, Var


def _const(value: Value) -> Optional[Const]:
    return value if isinstance(value, Const) else None


def _is_int_const(value: Value, expect: int) -> bool:
    const = _const(value)
    return (const is not None and isinstance(const.type, IntType)
            and const.value == expect)


def _power_of_two(value: Value) -> Optional[int]:
    const = _const(value)
    if const is None or not isinstance(const.type, IntType):
        return None
    v = const.value
    if v > 0 and (v & (v - 1)) == 0:
        return v.bit_length() - 1
    return None


def algebraic_simplification(func: Function, module: Module = None) -> int:
    """Strength-reduce and simplify operations in place.

    Rules applied (integers only unless noted):

    * ``x + 0``, ``x - 0``, ``x * 1``, ``x / 1``, ``x | 0``, ``x ^ 0``,
      ``x << 0``, ``x >> 0`` → copy;
    * ``x * 0``, ``x & 0`` → constant 0;
    * ``x * 2^k`` → ``x << k``; ``x / 2^k`` (unsigned) → ``x >> k``;
      ``x % 2^k`` (unsigned) → ``x & (2^k - 1)``;
    * ``x - x``, ``x ^ x`` → 0;  ``x & x``, ``x | x`` → copy;
    * ``0 - x`` → ``neg x``.

    Multiplier→shifter rewrites matter on the NG-ULTRA fabric because they
    free DSP blocks (paper §II: component mapping onto actual DSPs).
    """
    changes = 0
    for block in func.ordered_blocks():
        new_ops = []
        for op in block.ops:
            replacement = None
            if isinstance(op, BinOp) and isinstance(op.dst.ty, IntType):
                replacement = _simplify_int_binop(op)
            elif isinstance(op, BinOp) and isinstance(op.dst.ty, FloatType):
                replacement = _simplify_float_binop(op)
            if replacement is not None:
                new_ops.append(replacement)
                changes += 1
            else:
                new_ops.append(op)
        block.ops = new_ops
    return changes


def _simplify_int_binop(op: BinOp):
    ty = op.dst.ty
    zero = Const(0, ty)
    # Commutative normalization: put constants on the right.
    if op.op in ("add", "mul", "and", "or", "xor") and \
            isinstance(op.lhs, Const) and not isinstance(op.rhs, Const):
        op.lhs, op.rhs = op.rhs, op.lhs
    if op.op == "add" and _is_int_const(op.rhs, 0):
        return Assign(op.dst, op.lhs)
    if op.op == "sub":
        if _is_int_const(op.rhs, 0):
            return Assign(op.dst, op.lhs)
        if _is_int_const(op.lhs, 0):
            return UnOp("neg", op.dst, op.rhs)
        if op.lhs == op.rhs and not isinstance(op.lhs, Const):
            return Assign(op.dst, zero)
    if op.op == "mul":
        if _is_int_const(op.rhs, 1):
            return Assign(op.dst, op.lhs)
        if _is_int_const(op.rhs, 0):
            return Assign(op.dst, zero)
        shift = _power_of_two(op.rhs)
        if shift is not None and shift > 0:
            return BinOp("shl", op.dst, op.lhs, Const(shift, IntType(32, False)))
    if op.op == "div":
        if _is_int_const(op.rhs, 1):
            return Assign(op.dst, op.lhs)
        shift = _power_of_two(op.rhs)
        if shift is not None and isinstance(ty, IntType) and not ty.signed:
            return BinOp("shr", op.dst, op.lhs, Const(shift, IntType(32, False)))
    if op.op == "rem":
        shift = _power_of_two(op.rhs)
        if shift is not None and isinstance(ty, IntType) and not ty.signed:
            return BinOp("and", op.dst, op.lhs, Const((1 << shift) - 1, ty))
        if _is_int_const(op.rhs, 1):
            return Assign(op.dst, zero)
    if op.op == "and":
        if _is_int_const(op.rhs, 0):
            return Assign(op.dst, zero)
        if op.lhs == op.rhs and not isinstance(op.lhs, Const):
            return Assign(op.dst, op.lhs)
    if op.op == "or":
        if _is_int_const(op.rhs, 0):
            return Assign(op.dst, op.lhs)
        if op.lhs == op.rhs and not isinstance(op.lhs, Const):
            return Assign(op.dst, op.lhs)
    if op.op == "xor":
        if _is_int_const(op.rhs, 0):
            return Assign(op.dst, op.lhs)
        if op.lhs == op.rhs and not isinstance(op.lhs, Const):
            return Assign(op.dst, zero)
    if op.op in ("shl", "shr") and _is_int_const(op.rhs, 0):
        return Assign(op.dst, op.lhs)
    return None


def _simplify_float_binop(op: BinOp):
    # Only exact identities valid under IEEE-754 (no x+0 with -0 caveats
    # ignored: we accept x+0.0 → x, standard for HLS fast-math-off would
    # keep it; we document the choice and keep x*1.0 → x as well).
    const = _const(op.rhs)
    if const is None:
        return None
    if op.op == "mul" and const.value == 1.0:
        return Assign(op.dst, op.lhs)
    if op.op in ("add", "sub") and const.value == 0.0:
        return Assign(op.dst, op.lhs)
    if op.op == "div" and const.value == 1.0:
        return Assign(op.dst, op.lhs)
    return None


def copy_propagation(func: Function, module: Module = None) -> int:
    """Forward copies ``dst = src`` to later uses within the block."""
    changes = 0
    for block in func.ordered_blocks():
        copies: Dict[Value, Value] = {}
        for op in block.all_ops():
            for value in list(op.inputs()):
                root = value
                seen = set()
                while root in copies and root not in seen:
                    seen.add(root)
                    root = copies[root]
                if root != value:
                    op.replace_input(value, root)
                    changes += 1
            out = op.output()
            if out is not None:
                # The definition kills copies built on the old value.
                copies.pop(out, None)
                stale = [dst for dst, src in copies.items() if src == out]
                for dst in stale:
                    del copies[dst]
            if isinstance(op, Assign) and isinstance(op.dst, (Var, Temp)):
                if op.src != op.dst and op.dst.ty == op.src.ty:
                    copies[op.dst] = op.src
    return changes
