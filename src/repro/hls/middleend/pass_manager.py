"""Pass manager for the HLS middle end.

Mirrors Bambu's front-end/middle-end organization (paper Fig. 2): a
sequence of analysis and transformation passes runs over each function
until a fixed point, collecting per-pass statistics that the flow report
exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..ir import Function, Module, verify_function

# A pass takes a function plus its enclosing module and returns the
# number of changes it made.
PassFn = Callable[[Function, Module], int]


@dataclass
class PassStats:
    """Cumulative statistics for one pass across the whole run."""

    name: str
    invocations: int = 0
    changes: int = 0


@dataclass
class OptReport:
    """Summary of a middle-end run."""

    passes: List[PassStats] = field(default_factory=list)
    iterations: Dict[str, int] = field(default_factory=dict)
    ops_before: Dict[str, int] = field(default_factory=dict)
    ops_after: Dict[str, int] = field(default_factory=dict)

    def total_changes(self) -> int:
        return sum(p.changes for p in self.passes)

    def reduction(self, func_name: str) -> float:
        before = self.ops_before.get(func_name, 0)
        after = self.ops_after.get(func_name, before)
        if before == 0:
            return 0.0
        return 1.0 - after / before


class PassManager:
    """Runs a pipeline of passes to a fixed point per function."""

    def __init__(self, max_iterations: int = 10) -> None:
        self._pipeline: List[tuple] = []
        self.max_iterations = max_iterations

    def add(self, name: str, pass_fn: PassFn) -> "PassManager":
        self._pipeline.append((name, pass_fn))
        return self

    def run(self, module: Module) -> OptReport:
        report = OptReport()
        stats = {name: PassStats(name) for name, _ in self._pipeline}
        report.passes = [stats[name] for name, _ in self._pipeline]
        for func in module.functions.values():
            report.ops_before[func.name] = func.op_count()
            for iteration in range(self.max_iterations):
                changed = 0
                for name, pass_fn in self._pipeline:
                    delta = pass_fn(func, module)
                    stats[name].invocations += 1
                    stats[name].changes += delta
                    changed += delta
                if changed == 0:
                    report.iterations[func.name] = iteration + 1
                    break
            else:
                report.iterations[func.name] = self.max_iterations
            problems = verify_function(func)
            if problems:
                raise RuntimeError(
                    f"middle end broke {func.name}: {'; '.join(problems)}")
            report.ops_after[func.name] = func.op_count()
        return report


def default_pipeline(level: int = 2) -> PassManager:
    """Standard optimization pipelines.

    * level 0 — cleanup only (unreachable block removal);
    * level 1 — plus constant folding and dead-code elimination;
    * level 2 — plus CSE, algebraic simplification, copy propagation and
      CFG simplification (the default for synthesis);
    * level 3 — plus function inlining.
    """
    from .bitwidth import infer_width_hints
    from .constprop import constant_propagation
    from .cse import common_subexpression_elimination
    from .dce import dead_code_elimination, remove_unreachable
    from .inline import inline_functions
    from .licm import loop_invariant_code_motion
    from .simplify import algebraic_simplification, copy_propagation
    from .cfgopt import simplify_cfg

    manager = PassManager()
    manager.add("remove-unreachable", remove_unreachable)
    if level >= 3:
        manager.add("inline", inline_functions)
    if level >= 1:
        manager.add("constprop", constant_propagation)
        manager.add("dce", dead_code_elimination)
    if level >= 2:
        manager.add("copyprop", copy_propagation)
        manager.add("simplify", algebraic_simplification)
        manager.add("cse", common_subexpression_elimination)
        manager.add("licm", loop_invariant_code_motion)
        manager.add("simplify-cfg", simplify_cfg)
        manager.add("dce2", dead_code_elimination)
        manager.add("bitwidth", infer_width_hints)
    return manager


def optimize(module: Module, level: int = 2) -> OptReport:
    """Run the default pipeline at the given level over a module."""
    return default_pipeline(level).run(module)
