"""Bit-width analysis.

Infers how many bits each compiler temporary actually needs (value-range
reasoning on single-assignment temps) and attaches the result to the
function as ``width_hints``.  The allocator uses the hints to pick
narrower functional units from the characterized library — one of the
"aggressive optimizations" the paper attributes to component
pre-characterization (§II: components specialized "according to the bit
widths of its input and output arguments").

Soundness rules: only ``Temp`` values are narrowed (they have exactly one
definition); ``Var`` values keep their declared width (they may be
redefined around loops).  Hints never exceed the declared type width, and
every rule below over-approximates the value range.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import (
    Assign,
    BinOp,
    Cast,
    Const,
    Function,
    Load,
    Module,
    Select,
    UnOp,
    Value,
)
from ..ir.types import FloatType, IntType
from ..ir.values import Temp

WIDTH_HINTS_KEY = "width_hints"


def _type_width(value: Value) -> int:
    ty = value.ty
    if isinstance(ty, (IntType, FloatType)):
        return ty.width
    return 32


def _const_bits(const: Const) -> int:
    if isinstance(const.type, FloatType):
        return const.type.width
    value = int(const.value)
    if value >= 0:
        bits = max(1, value.bit_length())
        return bits + (1 if const.type.signed else 0)
    return value.bit_length() + 1  # two's complement sign bit


def _width_of(value: Value, hints: Dict[Value, int]) -> int:
    if isinstance(value, Const):
        return min(_const_bits(value), _type_width(value))
    return hints.get(value, _type_width(value))


def infer_width_hints(func: Function, module: Optional[Module] = None) -> int:
    """Compute width hints; attaches them to ``func.pragmas``.

    Returns 0 (analysis pass: never mutates the IR), so it is safe as a
    fixed-point pipeline member.
    """
    hints: Dict[Value, int] = {}
    for block in func.ordered_blocks():
        for op in block.ops:
            out = op.output()
            if not isinstance(out, Temp):
                continue
            if isinstance(out.ty, FloatType):
                continue  # float units are not width-specialized
            declared = _type_width(out)
            width = declared
            if isinstance(op, BinOp):
                lhs = _width_of(op.lhs, hints)
                rhs = _width_of(op.rhs, hints)
                if op.is_comparison:
                    width = 1
                elif op.op in ("add", "sub"):
                    width = max(lhs, rhs) + 1
                elif op.op == "mul":
                    width = lhs + rhs
                elif op.op == "and":
                    width = min(lhs, rhs)
                    if isinstance(op.rhs, Const) and int(op.rhs.value) >= 0:
                        width = min(width,
                                    max(1, int(op.rhs.value).bit_length()))
                elif op.op in ("or", "xor"):
                    width = max(lhs, rhs)
                elif op.op == "shr" and isinstance(op.rhs, Const):
                    width = max(1, lhs - int(op.rhs.value))
                elif op.op == "shl" and isinstance(op.rhs, Const):
                    width = lhs + int(op.rhs.value)
                elif op.op in ("div", "rem"):
                    width = lhs
            elif isinstance(op, UnOp):
                if op.op == "not":
                    width = 1
                elif op.op == "neg":
                    width = _width_of(op.src, hints) + 1
                else:
                    width = _width_of(op.src, hints)
            elif isinstance(op, Assign):
                width = _width_of(op.src, hints)
            elif isinstance(op, Cast):
                width = min(_width_of(op.src, hints), declared)
            elif isinstance(op, Select):
                width = max(_width_of(op.if_true, hints),
                            _width_of(op.if_false, hints))
            elif isinstance(op, Load):
                width = _type_width(out)
            width = max(1, min(width, declared))
            if width < declared:
                hints[out] = width
    func.pragmas[WIDTH_HINTS_KEY] = hints
    return 0


def hinted_width(op, hints: Optional[Dict[Value, int]]) -> int:
    """Widest effective operand width of ``op`` under the hints."""
    from ..ir import operand_width
    if not hints:
        return operand_width(op)
    widths = [1]
    values = list(op.inputs())
    out = op.output()
    if out is not None:
        values.append(out)
    for value in values:
        ty = value.ty
        if isinstance(ty, (IntType, FloatType)):
            widths.append(_width_of(value, hints)
                          if not isinstance(ty, FloatType) else ty.width)
    return max(widths)
