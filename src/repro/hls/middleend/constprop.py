"""Constant folding and block-local constant propagation."""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import (
    Assign,
    BinOp,
    Branch,
    Cast,
    Const,
    Function,
    Jump,
    Module,
    Select,
    UnOp,
    Value,
    eval_binop,
    eval_unop,
)
from ..ir.types import FloatType, IntType


def _as_const(value: Value, env: Dict[Value, Const]) -> Optional[Const]:
    if isinstance(value, Const):
        return value
    return env.get(value)


def _make_const(value, ty) -> Const:
    if isinstance(ty, IntType):
        return Const(ty.wrap(int(value)), ty)
    if isinstance(ty, FloatType):
        return Const(ty.round(float(value)), ty)
    return Const(value, ty)


def constant_propagation(func: Function, module: Module = None) -> int:
    """Fold operations with constant inputs; propagate within blocks.

    ``Var`` bindings are only trusted inside one basic block (they may be
    redefined along other paths); ``Temp`` values are single-assignment by
    construction so their constants hold for the whole block too.
    """
    changes = 0
    for block in func.ordered_blocks():
        env: Dict[Value, Const] = {}
        new_ops = []
        for op in block.ops:
            # First rewrite inputs that are known constants.
            for value in list(op.inputs()):
                const = _as_const(value, env)
                if const is not None and not isinstance(value, Const):
                    op.replace_input(value, const)
                    changes += 1
            if isinstance(op, BinOp):
                lhs = _as_const(op.lhs, env)
                rhs = _as_const(op.rhs, env)
                if lhs is not None and rhs is not None:
                    result_ty = op.lhs.ty if op.is_comparison else op.dst.ty
                    try:
                        folded = eval_binop(op.op, lhs.value, rhs.value,
                                            result_ty)
                    except (ValueError, ZeroDivisionError, OverflowError):
                        new_ops.append(op)
                        continue
                    const = _make_const(folded, op.dst.ty)
                    env[op.dst] = const
                    new_ops.append(Assign(op.dst, const))
                    changes += 1
                    continue
            elif isinstance(op, UnOp):
                src = _as_const(op.src, env)
                if src is not None:
                    folded = eval_unop(op.op, src.value, op.dst.ty)
                    const = _make_const(folded, op.dst.ty)
                    env[op.dst] = const
                    new_ops.append(Assign(op.dst, const))
                    changes += 1
                    continue
            elif isinstance(op, Cast):
                src = _as_const(op.src, env)
                if src is not None:
                    if isinstance(op.dst.ty, FloatType):
                        const = _make_const(float(src.value), op.dst.ty)
                    else:
                        const = _make_const(int(src.value), op.dst.ty)
                    env[op.dst] = const
                    new_ops.append(Assign(op.dst, const))
                    changes += 1
                    continue
            elif isinstance(op, Select):
                cond = _as_const(op.cond, env)
                if cond is not None:
                    chosen = op.if_true if cond.value else op.if_false
                    chosen_const = _as_const(chosen, env)
                    src = chosen_const if chosen_const is not None else chosen
                    if isinstance(src, Const):
                        env[op.dst] = _make_const(src.value, op.dst.ty)
                    new_ops.append(Assign(op.dst, src))
                    changes += 1
                    continue
            elif isinstance(op, Assign):
                src = _as_const(op.src, env)
                if src is not None:
                    const = _make_const(src.value, op.dst.ty)
                    env[op.dst] = const
                    if not isinstance(op.src, Const) or op.src != const:
                        op.src = const
                        changes += 1
                    new_ops.append(op)
                    continue
                # Non-constant assignment invalidates any previous binding.
                env.pop(op.dst, None)
                new_ops.append(op)
                continue
            # Any op that writes a Var/Temp invalidates stale bindings.
            out = op.output()
            if out is not None:
                env.pop(out, None)
            new_ops.append(op)
        block.ops = new_ops
        # Fold constant branches into jumps.
        term = block.terminator
        if isinstance(term, Branch):
            cond = _as_const(term.cond, env)
            if cond is not None:
                target = term.if_true if cond.value else term.if_false
                block.terminator = Jump(target)
                changes += 1
            elif term.if_true == term.if_false:
                block.terminator = Jump(term.if_true)
                changes += 1
        elif term is not None:
            for value in list(term.inputs()):
                const = _as_const(value, env)
                if const is not None and not isinstance(value, Const):
                    term.replace_input(value, const)
                    changes += 1
    return changes
