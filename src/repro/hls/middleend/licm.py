"""Loop-invariant code motion (LICM).

Pure operations whose inputs do not change across a loop's iterations are
hoisted into the block that enters the loop, so the datapath computes
them once instead of every iteration — a direct cycle win for the loop
kernels HLS cares about.

Scope and safety:

* natural loops found via dominator analysis (back edge ``latch → header``
  where the header dominates the latch);
* only pure, ``Temp``-defining operations are hoisted (no side effects,
  single assignment, and our arithmetic is total — division by zero is
  defined — so speculative execution when the loop runs zero times is
  semantically invisible);
* an input is invariant when it is a constant, a value defined outside
  the loop, or the result of an already-hoisted operation; ``Var`` inputs
  additionally require that no operation inside the loop writes them;
* the hoist target is the unique loop predecessor outside the loop (the
  pattern the front end emits for ``for``/``while``); loops with multiple
  entries are left untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import Assign, BinOp, Cast, Function, Module, Select, UnOp
from ..ir.values import Const, Temp, Value, Var

_PURE_OPS = (BinOp, UnOp, Cast, Select, Assign)


def _dominators(func: Function) -> Dict[str, Set[str]]:
    """Classic iterative dominator sets over reachable blocks."""
    blocks = func.reachable_blocks()
    preds = func.predecessors()
    all_blocks = set(blocks)
    dom: Dict[str, Set[str]] = {name: set(all_blocks) for name in blocks}
    dom[func.entry] = {func.entry}
    changed = True
    while changed:
        changed = False
        for name in blocks:
            if name == func.entry:
                continue
            incoming = [dom[p] for p in preds.get(name, [])
                        if p in dom]
            new_set = set.intersection(*incoming) | {name} if incoming \
                else {name}
            if new_set != dom[name]:
                dom[name] = new_set
                changed = True
    return dom


def _natural_loop(func: Function, header: str, latch: str) -> Set[str]:
    """Blocks of the natural loop for back edge latch→header."""
    loop = {header, latch}
    preds = func.predecessors()
    stack = [latch]
    while stack:
        name = stack.pop()
        if name == header:
            continue
        for pred in preds.get(name, []):
            if pred not in loop:
                loop.add(pred)
                stack.append(pred)
    return loop


def find_loops(func: Function) -> List[Tuple[str, Set[str]]]:
    """All (header, blocks) natural loops, innermost-ish first."""
    dom = _dominators(func)
    loops: Dict[str, Set[str]] = {}
    for block in func.ordered_blocks():
        if block.name not in dom:
            continue
        for succ in block.successors():
            if succ in dom.get(block.name, set()):
                # back edge block -> succ (succ dominates block)
                body = _natural_loop(func, succ, block.name)
                loops.setdefault(succ, set()).update(body)
    return sorted(loops.items(), key=lambda kv: len(kv[1]))


def _written_vars(func: Function, loop: Set[str]) -> Set[Value]:
    written: Set[Value] = set()
    for name in loop:
        for op in func.blocks[name].all_ops():
            out = op.output()
            if isinstance(out, Var):
                written.add(out)
    return written


def _defined_temps(func: Function, loop: Set[str]) -> Set[Value]:
    defined: Set[Value] = set()
    for name in loop:
        for op in func.blocks[name].all_ops():
            out = op.output()
            if isinstance(out, Temp):
                defined.add(out)
    return defined


# Assumed iteration weight for the hoist cost model: hoisting pays off
# when (preheader growth) < weight * (body shrinkage).  In spatial HLS a
# chained op is free inside the body, so hoisting is *not* always a win —
# the decision is made on actual schedule lengths (see _loop_cost).
_TRIP_WEIGHT = 8
_COST_CLOCK_NS = 10.0


def _loop_cost(func: Function, loop: Set[str], preheader_name: str) -> int:
    """Schedule-length cost of one loop and its preheader.

    Uses the real list scheduler at a nominal clock so the decision sees
    chaining and resource serialization exactly as the back end will.
    """
    from ..backend.allocation import allocate
    from ..backend.scheduling import schedule_block

    allocation = allocate(func, clock_ns=_COST_CLOCK_NS)
    body = sum(schedule_block(func.blocks[name], allocation,
                              _COST_CLOCK_NS).length
               for name in loop)
    pre = schedule_block(func.blocks[preheader_name], allocation,
                         _COST_CLOCK_NS).length
    return pre + _TRIP_WEIGHT * body


def loop_invariant_code_motion(func: Function,
                               module: Optional[Module] = None) -> int:
    """Hoist invariant pure ops out of every eligible loop.

    Each loop's hoist is accepted only when the scheduled cost
    (preheader + weighted body) improves; otherwise the hoist is
    reverted — in hardware, ops chained for free inside the body must
    not be serialized into the loop entry.
    """
    hoisted_total = 0
    preds = func.predecessors()
    for header, loop in find_loops(func):
        outside_preds = [p for p in preds.get(header, [])
                         if p not in loop]
        if len(outside_preds) != 1:
            continue  # multi-entry or unreachable preheader pattern
        preheader = func.blocks[outside_preds[0]]
        saved_ops = {name: list(func.blocks[name].ops) for name in loop}
        saved_pre = list(preheader.ops)
        cost_before = _loop_cost(func, loop, preheader.name)
        written_vars = _written_vars(func, loop)
        loop_temps = _defined_temps(func, loop)
        invariant: Set[Value] = set()

        def is_invariant_input(value: Value) -> bool:
            if isinstance(value, Const):
                return True
            if isinstance(value, Var):
                return value not in written_vars
            if isinstance(value, Temp):
                return value not in loop_temps or value in invariant
            return False

        hoisted_here = 0
        changed = True
        while changed:
            changed = False
            for name in sorted(loop):
                block = func.blocks[name]
                keep = []
                for op in block.ops:
                    out = op.output()
                    if (isinstance(op, _PURE_OPS)
                            and isinstance(out, Temp)
                            and out not in invariant
                            and all(is_invariant_input(v)
                                    for v in op.inputs())):
                        preheader.ops.append(op)
                        invariant.add(out)
                        loop_temps.discard(out)
                        hoisted_here += 1
                        changed = True
                    else:
                        keep.append(op)
                block.ops = keep
        if hoisted_here == 0:
            continue
        if _loop_cost(func, loop, preheader.name) < cost_before:
            hoisted_total += hoisted_here
        else:
            # The hoist serialized chained work: revert this loop.
            preheader.ops = saved_pre
            for name, ops in saved_ops.items():
                func.blocks[name].ops = ops
    return hoisted_total
