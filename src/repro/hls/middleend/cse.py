"""Block-local common-subexpression elimination.

Pure operations (arithmetic, casts, selects) with identical inputs are
computed once.  Loads participate too, versioned per memory object so a
store to the same memory invalidates prior loads; calls invalidate every
memory they can reach (conservatively: all of them).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir import (
    Assign,
    BinOp,
    Call,
    Cast,
    Function,
    Load,
    Module,
    Select,
    Store,
    UnOp,
    Value,
)

_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "eq", "ne"}


def _key(op, mem_version: Dict[str, int]):
    """Hashable value-numbering key for a pure operation, or None."""
    if isinstance(op, BinOp):
        lhs, rhs = op.lhs, op.rhs
        if op.op in _COMMUTATIVE:
            lhs, rhs = sorted((lhs, rhs), key=repr)
        return ("bin", op.op, lhs, rhs, op.dst.ty)
    if isinstance(op, UnOp):
        return ("un", op.op, op.src, op.dst.ty)
    if isinstance(op, Cast):
        return ("cast", op.src, op.dst.ty)
    if isinstance(op, Select):
        return ("sel", op.cond, op.if_true, op.if_false, op.dst.ty)
    if isinstance(op, Load):
        return ("load", op.mem.name, mem_version[op.mem.name], op.index)
    return None


def common_subexpression_elimination(func: Function,
                                     module: Module = None) -> int:
    changes = 0
    for block in func.ordered_blocks():
        available: Dict[Tuple, Value] = {}
        mem_version: Dict[str, int] = {name: 0 for name in func.mems}
        new_ops = []
        for op in block.ops:
            if isinstance(op, Store):
                mem_version[op.mem.name] += 1
                new_ops.append(op)
                continue
            if isinstance(op, Call):
                for name in mem_version:
                    mem_version[name] += 1
                new_ops.append(op)
                continue
            key = _key(op, mem_version)
            out = op.output()
            inserted_key = None
            if key is not None and out is not None and key in available \
                    and available[key] != out:
                new_ops.append(Assign(out, available[key]))
                changes += 1
            else:
                if key is not None and out is not None:
                    available[key] = out
                    inserted_key = key
                new_ops.append(op)
            if out is not None:
                # Redefining `out` invalidates (a) expressions computed from
                # its old value and (b) table entries whose cached result is
                # the old value — except the entry we just inserted.
                stale = [k for k, v in available.items()
                         if _uses(k, out) or (v == out and k != inserted_key)]
                for k in stale:
                    available.pop(k, None)
        block.ops = new_ops
    return changes


def _uses(key: Tuple, value: Value) -> bool:
    """Does a value-numbering key reference ``value`` as an input?"""
    return any(part == value for part in key[1:])
