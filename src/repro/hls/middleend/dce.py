"""Dead-code elimination and unreachable-block removal."""

from __future__ import annotations

from typing import Dict, Set

from ..ir import Function, Module, Value
from ..ir.values import Temp, Var


def remove_unreachable(func: Function, module: Module = None) -> int:
    """Drop blocks not reachable from the entry."""
    return func.remove_unreachable_blocks()


def _block_liveness(func: Function) -> Dict[str, Set[Value]]:
    """Backward liveness of Var/Temp values at each block's exit."""
    use: Dict[str, Set[Value]] = {}
    define: Dict[str, Set[Value]] = {}
    for block in func.ordered_blocks():
        used: Set[Value] = set()
        defined: Set[Value] = set()
        for op in block.all_ops():
            for value in op.inputs():
                if isinstance(value, (Var, Temp)) and value not in defined:
                    used.add(value)
            out = op.output()
            if isinstance(out, (Var, Temp)):
                defined.add(out)
        use[block.name] = used
        define[block.name] = defined

    live_in: Dict[str, Set[Value]] = {name: set() for name in func.blocks}
    live_out: Dict[str, Set[Value]] = {name: set() for name in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.ordered_blocks()):
            out_set: Set[Value] = set()
            for succ in block.successors():
                out_set |= live_in[succ]
            in_set = use[block.name] | (out_set - define[block.name])
            if out_set != live_out[block.name] or in_set != live_in[block.name]:
                live_out[block.name] = out_set
                live_in[block.name] = in_set
                changed = True
    return live_out


def dead_code_elimination(func: Function, module: Module = None) -> int:
    """Remove operations whose results are never used.

    Temps are block-local single-assignment values, so a temp is dead when
    nothing later in its block reads it.  Vars need the inter-block
    liveness computed by :func:`_block_liveness`.
    """
    changes = 0
    live_out = _block_liveness(func)
    for block in func.ordered_blocks():
        # Walk backwards tracking what is needed.
        needed: Set[Value] = set(live_out[block.name])
        if block.terminator is not None:
            needed.update(v for v in block.terminator.inputs()
                          if isinstance(v, (Var, Temp)))
        kept = []
        for op in reversed(block.ops):
            out = op.output()
            if op.has_side_effects or out is None or out in needed:
                if out is not None:
                    needed.discard(out)
                needed.update(v for v in op.inputs()
                              if isinstance(v, (Var, Temp)))
                kept.append(op)
            else:
                changes += 1
        kept.reverse()
        block.ops = kept
    return changes
