"""The HERMES HLS flow facade (the "Bambu" of the reproduction).

``synthesize()`` runs the complete front-end → middle-end → back-end
pipeline of paper Fig. 2 over a HermesC source and returns an
:class:`HlsProject` exposing, per function:

* the optimized IR and its schedule/binding/FSM,
* resource and timing reports (the §V evaluation metrics),
* generated Verilog (and VHDL via ``vhdl.py``),
* cycle-accurate simulation and C-vs-RTL co-simulation.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cache import FlowCache, content_key, library_fingerprint
from ..telemetry import Tracer
from .characterization.library import ComponentLibrary, default_library
from .frontend import compile_to_ir
from .backend.allocation import Allocation, allocate
from .backend.binding import Binding, bind
from .backend.datapath import DatapathReport, build_datapath_report
from .backend.fsm import FSM, build_fsm
from .backend.scheduling import FunctionSchedule, schedule_function
from .backend.simulate import CALL_HANDSHAKE_CYCLES, FsmdSimulator
from .backend.verify import verify_schedule
from .backend.verilog import generate_fp_support_library, generate_verilog
from .ir import Call, Module
from .ir.interp import Interpreter
from .middleend import optimize


class HlsFlowError(Exception):
    pass


@dataclass
class HlsDesign:
    """Synthesis artifacts for one function."""

    name: str
    schedule: FunctionSchedule
    allocation: Allocation
    binding: Binding
    fsm: FSM
    report: DatapathReport
    verilog: str

    @property
    def state_count(self) -> int:
        return self.fsm.state_count

    def static_latency(self) -> Optional[int]:
        return self.schedule.static_latency()


@dataclass
class CosimResult:
    """Outcome of a C-vs-FSMD co-simulation run."""

    match: bool
    expected: object
    actual: object
    cycles: int
    mem_mismatches: List[str] = field(default_factory=list)


class HlsProject:
    """A synthesized module: all designs plus simulation entry points."""

    def __init__(self, module: Module, designs: Dict[str, HlsDesign],
                 top: str, library: ComponentLibrary,
                 clock_ns: float, opt_report) -> None:
        self.module = module
        self.designs = designs
        self.top = top
        self.library = library
        self.clock_ns = clock_ns
        self.opt_report = opt_report

    def __getitem__(self, name: str) -> HlsDesign:
        return self.designs[name]

    @property
    def top_design(self) -> HlsDesign:
        return self.designs[self.top]

    def simulate(self, args: Sequence = (), mems: Optional[Dict] = None,
                 func: Optional[str] = None, engine: str = "dbt"):
        """Cycle-accurate FSMD simulation; returns (result, trace, mems).

        ``engine`` selects the block-compiled simulator (``"dbt"``,
        default) or the reference decode-per-step walker (``"interp"``),
        kept as the bit-identity oracle.
        """
        from .backend.dbt import make_simulator
        name = func or self.top
        simulator = make_simulator(
            engine, self.module,
            {k: d.schedule for k, d in self.designs.items()},
            {k: d.allocation for k, d in self.designs.items()})
        return simulator.run(name, args, mems)

    def cosimulate(self, args: Sequence = (), mems: Optional[Dict] = None,
                   func: Optional[str] = None) -> CosimResult:
        """Run the IR interpreter (C semantics) against the FSMD design.

        This is the testbench flow of paper §II: the generated design is
        exercised with the same stimuli as the C model and every output
        (return value and output memories) is compared.
        """
        name = func or self.top
        mems = mems or {}
        golden_mems = {k: list(v) for k, v in mems.items()}
        rtl_mems = {k: list(v) for k, v in mems.items()}
        interp = Interpreter(self.module)
        expected, expected_mem = interp.run(name, args, golden_mems)
        actual, trace, actual_mem = self.simulate(args, rtl_mems, func=name)
        mismatches = []
        for mem_name, golden in expected_mem.items():
            rtl = actual_mem.get(mem_name)
            if rtl is None or rtl.data != golden.data:
                mismatches.append(mem_name)
        match = (expected == actual or _float_close(expected, actual)) \
            and not mismatches
        return CosimResult(match=match, expected=expected, actual=actual,
                           cycles=trace.cycles, mem_mismatches=mismatches)

    def profile(self, args: Sequence = (), mems: Optional[Dict] = None,
                func: Optional[str] = None, top_blocks: int = 8) -> str:
        """Run and report where the cycles go (hot-block profile).

        The HLS analogue of a profiler: identifies the loop bodies that
        dominate latency so the user knows where to apply unrolling,
        allocation or dataflow pragmas (the tool-usability metric of the
        paper's §V evaluation).
        """
        _result, trace, _m = self.simulate(args, mems, func=func)
        lines = [f"profile — {func or self.top}: {trace.cycles} cycles, "
                 f"{trace.mem_reads} reads, {trace.mem_writes} writes"]
        for fn, block, cycles, visits in trace.hot_blocks(top_blocks):
            share = cycles / max(1, trace.cycles)
            lines.append(f"  {share:6.1%}  {fn}/{block:<16} "
                         f"{cycles:>8} cycles in {visits} visits")
        return "\n".join(lines)

    def verilog_files(self) -> Dict[str, str]:
        """All generated RTL, keyed by file name."""
        files = {f"{name}.v": design.verilog
                 for name, design in self.designs.items()}
        files["hermes_fp_lib.vh"] = generate_fp_support_library()
        return files

    def resource_summary(self) -> Dict[str, Dict[str, int]]:
        summary = {}
        for name, design in self.designs.items():
            area = design.report.area
            summary[name] = {"luts": area.luts, "ffs": area.ffs,
                             "dsps": area.dsps, "brams": area.brams,
                             "states": design.state_count}
        return summary


def _float_close(a, b) -> bool:
    try:
        return abs(float(a) - float(b)) <= 1e-5 * max(1.0, abs(float(a)))
    except (TypeError, ValueError):
        return False


def _call_order(module: Module, top: str) -> List[str]:
    """Callees before callers (reverse topological over the call graph)."""
    order: List[str] = []
    visiting: Dict[str, int] = {}

    def visit(name: str) -> None:
        state = visiting.get(name, 0)
        if state == 2:
            return
        if state == 1:
            raise HlsFlowError(f"recursive call cycle through {name!r}")
        visiting[name] = 1
        for op in module[name].all_ops():
            if isinstance(op, Call) and op.callee in module.functions:
                visit(op.callee)
        visiting[name] = 2
        order.append(name)

    visit(top)
    # Any functions not reachable from top still get synthesized last.
    for name in module.functions:
        if visiting.get(name, 0) != 2:
            visit(name)
    return order


def synthesize(source: str, top: str, clock_ns: float = 10.0,
               opt_level: int = 2,
               library: Optional[ComponentLibrary] = None,
               scheduling: str = "list",
               axi_read_latency: Optional[int] = None,
               tracer: Optional[Tracer] = None,
               cache: Optional[FlowCache] = None) -> HlsProject:
    """Run the full HLS flow on HermesC source text.

    Thin shim over the unified job facade (:func:`repro.api.submit`,
    kind ``"hls"``): the spec carries the source/options (with the
    component library reduced to its content fingerprint), while the
    live library object travels through the context's resources.  The
    pipeline itself lives in :func:`synthesize_pipeline`.
    """
    from ..api import JobSpec, submit
    spec = JobSpec(kind="hls", params={
        "source": source, "top": top, "clock_ns": clock_ns,
        "opt_level": opt_level, "scheduling": scheduling,
        "axi_read_latency": axi_read_latency,
        "library": (library_fingerprint(library)
                    if library is not None else None)})
    resources = {"library": library} if library is not None else {}
    result = submit(spec, tracer=tracer, cache=cache, resources=resources)
    return result.artifact


def synthesize_pipeline(source: str, top: str, clock_ns: float = 10.0,
                        opt_level: int = 2,
                        library: Optional[ComponentLibrary] = None,
                        scheduling: str = "list",
                        axi_read_latency: Optional[int] = None,
                        tracer: Optional[Tracer] = None,
                        cache: Optional[FlowCache] = None) -> HlsProject:
    """The HLS pipeline body (frontend → middle-end → per-function backend).

    ``axi_read_latency`` overrides the characterized AXI round-trip cycles
    (paper §II: "memory delay estimates can also be configured to assess
    the performance of the application").  ``tracer`` records one span per
    pipeline stage (frontend, middle-end, per-function backend steps).
    ``cache`` short-circuits the whole pipeline when the same source has
    already been synthesized with the same options: the key covers the
    source text, top name, clock, optimization level, scheduler, AXI
    latency override and the component library's content.  HLS projects
    carry live IR objects with no JSON codec, so this layer only uses the
    in-memory tier — a warm process skips re-synthesis, a fresh process
    re-runs the (deterministic) flow.
    """
    key = None
    if cache is not None:
        key = content_key("hls", {
            "source": source, "top": top, "clock_ns": clock_ns,
            "opt_level": opt_level, "scheduling": scheduling,
            "axi_read_latency": axi_read_latency,
            "library": (library_fingerprint(library)
                        if library is not None else None)})
        hit, project = cache.get("hls", key)
        if hit:
            return project

    def stage(name: str, **attributes):
        if tracer is None:
            return nullcontext(None)
        return tracer.span(name, "hls", **attributes)

    with stage("frontend") as span:
        module = compile_to_ir(source)
        if span is not None:
            span.attributes["functions"] = len(module.functions)
    if top not in module.functions:
        raise HlsFlowError(f"top function {top!r} not found")
    with stage("optimize", level=opt_level):
        opt_report = optimize(module, level=opt_level)
    library = library or default_library()
    if axi_read_latency is not None:
        library = _with_axi_latency(library, axi_read_latency)

    designs: Dict[str, HlsDesign] = {}
    call_latency: Dict[str, int] = {}
    for name in _call_order(module, top):
        func = module[name]
        with stage(f"backend:{name}") as backend_span:
            with stage("allocate"):
                allocation = allocate(func, library=library,
                                      clock_ns=clock_ns,
                                      call_latency=call_latency)
            with stage("schedule", algorithm=scheduling):
                schedule = schedule_function(func, allocation,
                                             algorithm=scheduling)
            problems = verify_schedule(schedule, allocation)
            if problems:
                raise HlsFlowError(
                    f"illegal schedule for {name}: "
                    f"{'; '.join(problems[:5])}")
            with stage("bind"):
                binding = bind(schedule, allocation)
            with stage("fsm"):
                fsm = build_fsm(schedule)
            report = build_datapath_report(func, schedule, binding,
                                           allocation, fsm, library)
            with stage("verilog"):
                verilog = generate_verilog(func, schedule, binding, fsm,
                                           module)
            if backend_span is not None:
                backend_span.attributes.update(
                    states=fsm.state_count, luts=report.area.luts,
                    ffs=report.area.ffs, dsps=report.area.dsps,
                    latency=schedule.static_latency())
        designs[name] = HlsDesign(name=name, schedule=schedule,
                                  allocation=allocation, binding=binding,
                                  fsm=fsm, report=report, verilog=verilog)
        static = schedule.static_latency()
        estimate = static if static is not None else schedule.total_states
        call_latency[name] = max(1, estimate + CALL_HANDSHAKE_CYCLES)
    project = HlsProject(module=module, designs=designs, top=top,
                         library=library, clock_ns=clock_ns,
                         opt_report=opt_report)
    if cache is not None and key is not None:
        cache.put("hls", key, project)
    return project


def _with_axi_latency(library: ComponentLibrary,
                      cycles: int) -> ComponentLibrary:
    """Clone a library, overriding the mem_axi round-trip latency."""
    from .characterization.library import ComponentRecord
    clone = ComponentLibrary(name=f"{library.name}-axi{cycles}")
    for record in library.records():
        if record.resource_class == "mem_axi":
            clone.add(ComponentRecord(
                resource_class="mem_axi", width=record.width,
                stages=max(1, cycles), delay_ns=record.delay_ns,
                luts=record.luts, ffs=record.ffs, dsps=record.dsps,
                brams=record.brams))
        else:
            clone.add(record)
    return clone
