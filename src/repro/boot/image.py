"""Boot image and load-list formats.

Every deployable object (BL1, BL2, application software, eFPGA bitstream)
is wrapped in a header carrying its kind, load address, entry point and a
CRC32 over the payload — the integrity management of paper §IV.  The load
list is itself a CRC-protected table "describing a set of application
software to be deployed to memory, and bitstream to be programmed in the
eFPGA matrix".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Sequence

MAGIC = 0x4E47424C  # "NGBL"


class ImageError(Exception):
    pass


class ImageKind(IntEnum):
    BL1 = 1
    BL2 = 2
    APPLICATION = 3
    BITSTREAM = 4
    HYPERVISOR = 5


def _crc_words(words: Sequence[int]) -> int:
    raw = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
    return zlib.crc32(raw) & 0xFFFFFFFF


@dataclass
class BootImage:
    kind: ImageKind
    load_address: int
    entry_point: int
    payload: List[int]
    version: int = 1
    name: str = ""

    HEADER_WORDS = 7

    def to_words(self) -> List[int]:
        """Serialize: magic, kind, version, load, entry, length, crc, body."""
        body = [w & 0xFFFFFFFF for w in self.payload]
        return [
            MAGIC,
            int(self.kind),
            self.version,
            self.load_address & 0xFFFFFFFF,
            self.entry_point & 0xFFFFFFFF,
            len(body),
            _crc_words(body),
        ] + body

    @property
    def total_words(self) -> int:
        return self.HEADER_WORDS + len(self.payload)

    @classmethod
    def parse(cls, words: Sequence[int], name: str = "") -> "BootImage":
        if len(words) < cls.HEADER_WORDS:
            raise ImageError("image truncated (no header)")
        if words[0] != MAGIC:
            raise ImageError(f"bad magic 0x{words[0]:08x}")
        try:
            kind = ImageKind(words[1])
        except ValueError:
            raise ImageError(f"unknown image kind {words[1]}") from None
        length = words[5]
        if len(words) < cls.HEADER_WORDS + length:
            raise ImageError("image truncated (payload)")
        payload = list(words[cls.HEADER_WORDS:cls.HEADER_WORDS + length])
        if _crc_words(payload) != words[6]:
            raise ImageError("payload CRC mismatch")
        return cls(kind=kind, version=words[2], load_address=words[3],
                   entry_point=words[4], payload=payload, name=name)


class LoadSource(IntEnum):
    FLASH = 0
    SPACEWIRE = 1


@dataclass
class LoadEntry:
    """One load-list row."""

    kind: ImageKind
    source: LoadSource
    # Flash: word offset of the image; SpaceWire: object id.
    locator: int
    copies: int = 1            # redundant sequential copies in flash
    stride: int = 0            # word distance between copies

    def to_words(self) -> List[int]:
        return [int(self.kind), int(self.source), self.locator,
                self.copies, self.stride]


@dataclass
class LoadList:
    entries: List[LoadEntry] = field(default_factory=list)

    LIST_MAGIC = 0x4E474C4C  # "NGLL"
    ENTRY_WORDS = 5

    def add(self, entry: LoadEntry) -> None:
        self.entries.append(entry)

    def to_words(self) -> List[int]:
        body: List[int] = []
        for entry in self.entries:
            body.extend(entry.to_words())
        return [self.LIST_MAGIC, len(self.entries), _crc_words(body)] + body

    @classmethod
    def parse(cls, words: Sequence[int]) -> "LoadList":
        if len(words) < 3 or words[0] != cls.LIST_MAGIC:
            raise ImageError("bad load list header")
        count = words[1]
        body = list(words[3:3 + count * cls.ENTRY_WORDS])
        if len(body) < count * cls.ENTRY_WORDS:
            raise ImageError("load list truncated")
        if _crc_words(body) != words[2]:
            raise ImageError("load list CRC mismatch")
        entries = []
        for index in range(count):
            row = body[index * cls.ENTRY_WORDS:(index + 1) * cls.ENTRY_WORDS]
            entries.append(LoadEntry(
                kind=ImageKind(row[0]), source=LoadSource(row[1]),
                locator=row[2], copies=row[3], stride=row[4]))
        return cls(entries=entries)


def crc_words(words: Sequence[int]) -> int:
    """Public helper (same CRC the images use)."""
    return _crc_words(words)
