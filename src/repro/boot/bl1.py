"""BL1: the Generic Level 1 Boot loader (the HERMES deliverable, §IV).

Implements every common functionality the paper lists:

* initialization of the master CPU#0 registers/caches/exceptions;
* initialization of clock PLLs, DDR controller, flash controller,
  SpaceWire controller and tightly coupled memories;
* MPU configuration for TCM / embedded RAM / external DDR;
* load-list management, stored in flash or received over SpaceWire;
* integrity management of deployed software and eFPGA programming;
* flash redundancy via TMR voting or sequential copy fallback;
* generation of a boot report for next-stage software.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..radhard.tmr import vote_bitwise
from ..soc.memory import default_mpu_regions
from ..soc.peripherals import REG_BOOT_REPORT
from ..soc.soc import NgUltraSoc
from ..soc.spacewire import SpaceWireError
from .image import (
    BootImage,
    ImageError,
    ImageKind,
    LoadEntry,
    LoadList,
    LoadSource,
)
from .report import BootReport, StepStatus

# Cycle-cost model.
CYCLES_CPU_INIT = 1_200
CYCLES_PLL_POLL = 400
CYCLES_DDR_POLL = 6_000
CYCLES_FLASH_INIT = 800
CYCLES_SPW_INIT = 1_500
CYCLES_TCM_INIT_WORD = 1
CYCLES_MPU_REGION = 60
CYCLES_FLASH_READ_WORD = 4
CYCLES_SPW_READ_WORD = 20
CYCLES_CRC_WORD = 2
CYCLES_COPY_WORD = 2
CYCLES_EFPGA_WORD = 1
CYCLES_REPORT = 500

LOADLIST_FLASH_OFFSET = 0x8000
LOADLIST_SPACEWIRE_OBJECT = 2
LOADLIST_MAX_WORDS = 512
IMAGE_MAX_WORDS = 64 * 1024


class Bl1Error(Exception):
    pass


class RedundancyMode(Enum):
    SEQUENTIAL = "sequential"   # try copy 0, then copy 1, ...
    TMR = "tmr"                 # bitwise vote over three copies


@dataclass
class Bl1Config:
    loadlist_source: LoadSource = LoadSource.FLASH
    loadlist_flash_offset: int = LOADLIST_FLASH_OFFSET
    loadlist_spacewire_object: int = LOADLIST_SPACEWIRE_OBJECT
    redundancy: RedundancyMode = RedundancyMode.SEQUENTIAL
    zero_tcm: bool = False        # BL1 itself lives there; default off
    watchdog_timeout: int = 5_000_000


@dataclass
class DeployedObject:
    kind: ImageKind
    load_address: int
    entry_point: int
    words: int
    name: str


@dataclass
class Bl1Result:
    report: BootReport
    deployed: List[DeployedObject]
    next_entry: Optional[int]
    next_kind: Optional[ImageKind]


class Bl1:
    """One BL1 execution over a platform instance."""

    def __init__(self, soc: NgUltraSoc,
                 config: Optional[Bl1Config] = None) -> None:
        self.soc = soc
        self.config = config or Bl1Config()
        self.report = BootReport(stage="BL1")
        self.deployed: List[DeployedObject] = []
        self._wd_cycles = 0

    # -- top level ----------------------------------------------------------

    def run(self) -> Bl1Result:
        # BL1 runs under watchdog supervision: each completed step kicks
        # the dog; a stuck step (counted in modelled cycles) trips it.
        self.soc.watchdog.enable(self.config.watchdog_timeout)
        self._wd_cycles = 0
        for step in (self._init_cpu, self._init_pll, self._init_ddr,
                     self._init_flash, self._init_spacewire,
                     self._init_tcm, self._init_mpu):
            step()
            self._watchdog_check()
        load_list = self._fetch_load_list()
        self._watchdog_check()
        next_entry: Optional[int] = None
        next_kind: Optional[ImageKind] = None
        for index, entry in enumerate(load_list.entries):
            deployed = self._deploy_entry(index, entry)
            self._watchdog_check()
            if deployed is None:
                continue
            if deployed.kind in (ImageKind.BL2, ImageKind.APPLICATION,
                                 ImageKind.HYPERVISOR) and next_entry is None:
                next_entry = deployed.entry_point
                next_kind = deployed.kind
        self._write_report_mailbox()
        if self.report.failed_objects:
            raise Bl1Error("boot failed: "
                           + ", ".join(self.report.failed_objects))
        return Bl1Result(report=self.report, deployed=self.deployed,
                         next_entry=next_entry, next_kind=next_kind)

    def _watchdog_check(self) -> None:
        """Charge the cycles since the last kick; trip on expiry.

        Models the windowed watchdog a qualified boot loader runs under:
        any single step exceeding the window resets the system (here: a
        diagnosed :class:`Bl1Error`).
        """
        delta = self.report.total_cycles - self._wd_cycles
        self._wd_cycles = self.report.total_cycles
        if self.soc.watchdog.tick(delta):
            self.report.failed_objects.append("watchdog")
            raise Bl1Error(
                f"watchdog expired during boot (step cost {delta} cycles, "
                f"window {self.soc.watchdog.timeout})")
        self.soc.watchdog.kick()

    # -- hardware initialization steps --------------------------------------

    def _init_cpu(self) -> None:
        core = self.soc.master_core()
        core.privileged = True
        self.report.record("cpu0-init", StepStatus.OK, CYCLES_CPU_INIT,
                           "registers, caches, exceptions @EL1")

    def _init_pll(self) -> None:
        self.soc.pll.enable()
        polls = 0
        while not self.soc.pll.poll():
            polls += 1
            if polls > 1000:
                self.report.record("pll-lock", StepStatus.FAILED,
                                   polls * CYCLES_PLL_POLL, "no lock")
                raise Bl1Error("PLL failed to lock")
        self.report.record("pll-lock", StepStatus.OK,
                           (polls + 1) * CYCLES_PLL_POLL,
                           f"locked after {polls + 1} polls")

    def _init_ddr(self) -> None:
        controller = self.soc.ddr_controller
        controller.start_training()
        polls = 0
        while not controller.poll():
            polls += 1
            if polls > 1000:
                self.report.record("ddr-training", StepStatus.FAILED,
                                   polls * CYCLES_DDR_POLL, "stuck")
                raise Bl1Error("DDR training failed")
        self.report.record("ddr-training", StepStatus.OK,
                           (polls + 1) * CYCLES_DDR_POLL,
                           f"trained after {polls + 1} polls")

    def _init_flash(self) -> None:
        self.soc.flash_controller.enabled = True
        self.report.record("flash-controller", StepStatus.OK,
                           CYCLES_FLASH_INIT)

    def _init_spacewire(self) -> None:
        status = self.soc.spacewire.status_word()
        if status & 1:
            self.report.record("spacewire-link", StepStatus.OK,
                               CYCLES_SPW_INIT, "link up")
        else:
            self.report.record("spacewire-link", StepStatus.SKIPPED,
                               CYCLES_SPW_INIT, "link down")

    def _init_tcm(self) -> None:
        if self.config.zero_tcm:
            words = len(self.soc.tcm)
            for index in range(words):
                self.soc.tcm.write(index, 0)
            self.report.record("tcm-init", StepStatus.OK,
                               words * CYCLES_TCM_INIT_WORD, "zeroed")
        else:
            self.report.record("tcm-init", StepStatus.SKIPPED, 0,
                               "BL1 resident")

    def _init_mpu(self) -> None:
        regions = default_mpu_regions()
        self.soc.bus.mpu.configure(regions)
        self.report.record("mpu-config", StepStatus.OK,
                           len(regions) * CYCLES_MPU_REGION,
                           f"{len(regions)} regions")

    # -- load list -----------------------------------------------------------

    def _fetch_load_list(self) -> LoadList:
        if self.config.loadlist_source is LoadSource.SPACEWIRE:
            return self._fetch_load_list_spacewire()
        return self._fetch_load_list_flash()

    def _fetch_load_list_flash(self) -> LoadList:
        offset = self.config.loadlist_flash_offset
        for bank in (0, 1):
            words = [self.soc.flash_controller.read(bank, offset + i)
                     for i in range(LOADLIST_MAX_WORDS)]
            cycles = LOADLIST_MAX_WORDS * CYCLES_FLASH_READ_WORD
            try:
                load_list = LoadList.parse(words)
            except ImageError as error:
                self.report.record(f"loadlist-bank{bank}",
                                   StepStatus.FAILED, cycles, str(error))
                continue
            status = StepStatus.OK if bank == 0 else StepStatus.RECOVERED
            if bank == 1:
                self.report.recovered_objects.append("loadlist via bank B")
            self.report.record(f"loadlist-bank{bank}", status, cycles,
                               f"{len(load_list.entries)} entries")
            self.report.boot_source = f"flash-bank-{chr(ord('A') + bank)}"
            return load_list
        self.report.failed_objects.append("loadlist")
        raise Bl1Error("no valid load list in either flash bank")

    def _fetch_load_list_spacewire(self) -> LoadList:
        link = self.soc.spacewire
        try:
            payload = link.request_object(
                self.config.loadlist_spacewire_object, retries=1)
        except SpaceWireError as error:
            self.report.failed_objects.append("loadlist")
            self.report.record("loadlist-spacewire", StepStatus.FAILED,
                               1_000, str(error))
            raise Bl1Error(f"load list over SpaceWire failed: {error}")
        cycles = len(payload) * CYCLES_SPW_READ_WORD
        load_list = LoadList.parse(payload)
        self.report.record("loadlist-spacewire", StepStatus.OK, cycles,
                           f"{len(load_list.entries)} entries")
        self.report.boot_source = "spacewire"
        return load_list

    # -- object deployment ----------------------------------------------------

    def _deploy_entry(self, index: int,
                      entry: LoadEntry) -> Optional[DeployedObject]:
        label = f"object{index}-{entry.kind.name.lower()}"
        image, cycles, recovered = self._load_image(entry, label)
        if image is None:
            self.report.failed_objects.append(label)
            self.report.record(label, StepStatus.FAILED, cycles,
                               "no valid copy")
            return None
        if image.kind is ImageKind.BITSTREAM:
            ok, program_cycles = self._program_bitstream(image)
            cycles += program_cycles
            if not ok:
                self.report.failed_objects.append(label)
                self.report.record(label, StepStatus.FAILED, cycles,
                                   self.soc.efpga.error or "program failed")
                return None
            detail = f"eFPGA programmed ({len(image.payload)} words)"
        else:
            for offset, word in enumerate(image.payload):
                self.soc.bus.write_word(image.load_address + offset * 4,
                                        word)
            cycles += len(image.payload) * CYCLES_COPY_WORD
            # Integrity re-check of the deployed copy.
            cycles += len(image.payload) * CYCLES_CRC_WORD
            readback = [self.soc.bus.read_word(image.load_address + i * 4)
                        for i in range(len(image.payload))]
            if readback != image.payload:
                self.report.failed_objects.append(label)
                self.report.record(label, StepStatus.FAILED, cycles,
                                   "deployed image readback mismatch")
                return None
            detail = (f"{len(image.payload)} words @ "
                      f"0x{image.load_address:08x}")
        status = StepStatus.RECOVERED if recovered else StepStatus.OK
        if recovered:
            self.report.recovered_objects.append(label)
        self.report.record(label, status, cycles, detail)
        deployed = DeployedObject(
            kind=image.kind, load_address=image.load_address,
            entry_point=image.entry_point, words=len(image.payload),
            name=label)
        self.deployed.append(deployed)
        return deployed

    def _load_image(self, entry: LoadEntry,
                    label: str) -> Tuple[Optional[BootImage], int, bool]:
        """Returns (image or None, cycles spent, used-redundancy flag)."""
        if entry.source is LoadSource.SPACEWIRE:
            return self._load_image_spacewire(entry)
        if self.config.redundancy is RedundancyMode.TMR and \
                entry.copies >= 3:
            return self._load_image_tmr(entry)
        return self._load_image_sequential(entry)

    def _read_copy(self, entry: LoadEntry, copy: int) -> List[int]:
        """Header-then-payload flash read of one stored image copy."""
        from .image import MAGIC
        base = entry.locator + copy * entry.stride
        flash = self.soc.flash_controller
        flash_words = len(flash.banks[0])
        if base + BootImage.HEADER_WORDS > flash_words:
            return []
        header = [flash.read(0, base + i)
                  for i in range(BootImage.HEADER_WORDS)]
        length = header[5] if header[0] == MAGIC else 0
        length = min(length, IMAGE_MAX_WORDS,
                     max(0, flash_words - base - BootImage.HEADER_WORDS))
        payload = [flash.read(0, base + BootImage.HEADER_WORDS + i)
                   for i in range(length)]
        return header + payload

    def _load_image_sequential(self, entry: LoadEntry
                               ) -> Tuple[Optional[BootImage], int, bool]:
        cycles = 0
        for copy in range(max(1, entry.copies)):
            words = self._read_copy(entry, copy)
            cycles += len(words) * CYCLES_FLASH_READ_WORD
            try:
                image = BootImage.parse(words)
                cycles += image.total_words * CYCLES_CRC_WORD
                return image, cycles, copy > 0
            except ImageError:
                continue
        return None, cycles, False

    def _load_image_tmr(self, entry: LoadEntry
                        ) -> Tuple[Optional[BootImage], int, bool]:
        copies = [self._read_copy(entry, c) for c in range(3)]
        cycles = sum(len(c) for c in copies) * CYCLES_FLASH_READ_WORD
        voted = [vote_bitwise(a, b, c) for a, b, c in zip(*copies)]
        cycles += len(voted)  # voter cost
        disagreements = sum(1 for a, b, c in zip(*copies)
                            if not (a == b == c))
        try:
            image = BootImage.parse(voted)
            cycles += image.total_words * CYCLES_CRC_WORD
            return image, cycles, disagreements > 0
        except ImageError:
            return None, cycles, False

    def _load_image_spacewire(self, entry: LoadEntry
                              ) -> Tuple[Optional[BootImage], int, bool]:
        link = self.soc.spacewire
        try:
            payload = link.request_object(entry.locator, retries=1)
        except SpaceWireError:
            return None, 1_000, False
        cycles = len(payload) * CYCLES_SPW_READ_WORD
        try:
            image = BootImage.parse(payload)
            cycles += image.total_words * CYCLES_CRC_WORD
            return image, cycles, False
        except ImageError:
            return None, cycles, False

    def _program_bitstream(self, image: BootImage) -> Tuple[bool, int]:
        port = self.soc.efpga
        port.begin()
        for word in image.payload:
            port.push_word(word)
        ok = port.finish()
        return ok, len(image.payload) * CYCLES_EFPGA_WORD

    # -- boot report ----------------------------------------------------------

    def _write_report_mailbox(self) -> None:
        words = self.report.to_words()
        for offset, word in enumerate(words):
            self.soc.peripheral_file.mailbox[REG_BOOT_REPORT + offset] = word
        self.report.record("boot-report", StepStatus.OK, CYCLES_REPORT,
                           f"{len(words)} words to mailbox")


def run_bl1(soc: NgUltraSoc, config: Optional[Bl1Config] = None) -> Bl1Result:
    return Bl1(soc, config).run()
