"""BL0/BL1/BL2 boot chain (paper §IV, Fig. 5)."""

from .bl0 import BL1_FLASH_OFFSET, Bl0Error, Bl0Result, run_bl0
from .bl1 import (
    Bl1,
    Bl1Config,
    Bl1Error,
    Bl1Result,
    DeployedObject,
    RedundancyMode,
    run_bl1,
)
from .bl2 import Bl2Error, Bl2Result, run_bl2
from .chain import (
    BootChainResult,
    make_bl1_image,
    provision_flash,
    run_boot_chain,
)
from .image import (
    BootImage,
    ImageError,
    ImageKind,
    LoadEntry,
    LoadList,
    LoadSource,
    crc_words,
)
from .report import BootReport, BootStep, StepStatus

__all__ = [
    "BL1_FLASH_OFFSET", "Bl0Error", "Bl0Result", "run_bl0",
    "Bl1", "Bl1Config", "Bl1Error", "Bl1Result", "DeployedObject",
    "RedundancyMode", "run_bl1",
    "Bl2Error", "Bl2Result", "run_bl2",
    "BootChainResult", "make_bl1_image", "provision_flash",
    "run_boot_chain",
    "BootImage", "ImageError", "ImageKind", "LoadEntry", "LoadList",
    "LoadSource", "crc_words",
    "BootReport", "BootStep", "StepStatus",
]
