"""BL2 / application hand-off: the final boot stage.

Paper §IV: "An additional BL2 stage or the final application-dependent
software finalizes the hardware configuration and can deploy itself on
all the available processor cores."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..soc.cpu import CoreState
from ..soc.soc import NgUltraSoc
from .report import BootReport, StepStatus

CYCLES_FINALIZE = 900
CYCLES_CORE_RELEASE = 300


class Bl2Error(Exception):
    pass


@dataclass
class Bl2Result:
    report: BootReport
    released_cores: List[int]
    entry_point: int


def run_bl2(soc: NgUltraSoc, entry_point: int,
            multicore: bool = True,
            run_application: bool = False,
            max_steps: int = 200_000) -> Bl2Result:
    """Finalize configuration and start the application on the cores.

    With ``run_application`` the cores actually execute the loaded binary
    (R52-lite instructions) until HALT — demonstrating the complete
    ROM-to-application chain of paper Fig. 5.
    """
    report = BootReport(stage="BL2")
    report.record("finalize-config", StepStatus.OK, CYCLES_FINALIZE,
                  "clock gates, cache maintenance")
    master = soc.master_core()
    master.reset(entry_point)
    released = [0]
    cycles = CYCLES_CORE_RELEASE
    if multicore:
        soc.release_secondaries(entry_point)
        released = [core.core_id for core in soc.cores]
        cycles = CYCLES_CORE_RELEASE * len(soc.cores)
    report.record("core-release", StepStatus.OK, cycles,
                  f"cores {released} -> 0x{entry_point:08x}")
    if run_application:
        steps = soc.run_all(max_steps=max_steps)
        faulted = [core.core_id for core in soc.cores
                   if core.state is CoreState.FAULTED]
        if faulted:
            report.record("application", StepStatus.FAILED,
                          sum(steps.values()),
                          f"cores {faulted} faulted")
            raise Bl2Error(
                f"application faulted on cores {faulted}: "
                + "; ".join(soc.cores[i].fault_reason or "?"
                            for i in faulted))
        report.record("application", StepStatus.OK, sum(steps.values()),
                      f"steps per core: {steps}")
    return Bl2Result(report=report, released_cores=released,
                     entry_point=entry_point)
