"""Boot report generation.

Paper §IV: BL1 generates "a BL1 boot report made available for next-stage
software".  The report records, per boot step: status, cycle cost and any
recovery actions (redundant-copy fallbacks, retries).  A compact word
serialization is written to the peripheral mailbox so next-stage software
(BL2 / the hypervisor) can read it from the platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional


class StepStatus(IntEnum):
    OK = 0
    RECOVERED = 1       # succeeded after redundancy/retry
    FAILED = 2
    SKIPPED = 3


@dataclass
class BootStep:
    name: str
    status: StepStatus
    cycles: int
    detail: str = ""


@dataclass
class BootReport:
    stage: str
    steps: List[BootStep] = field(default_factory=list)
    boot_source: str = ""
    recovered_objects: List[str] = field(default_factory=list)
    failed_objects: List[str] = field(default_factory=list)

    def record(self, name: str, status: StepStatus, cycles: int,
               detail: str = "") -> BootStep:
        step = BootStep(name=name, status=status, cycles=cycles,
                        detail=detail)
        self.steps.append(step)
        return step

    @property
    def total_cycles(self) -> int:
        return sum(step.cycles for step in self.steps)

    @property
    def success(self) -> bool:
        return all(step.status in (StepStatus.OK, StepStatus.RECOVERED,
                                   StepStatus.SKIPPED)
                   for step in self.steps)

    @property
    def had_recovery(self) -> bool:
        return any(step.status is StepStatus.RECOVERED for step in self.steps)

    def step(self, name: str) -> Optional[BootStep]:
        for step in self.steps:
            if step.name == name:
                return step
        return None

    def cycles_of(self, name: str) -> int:
        step = self.step(name)
        return step.cycles if step else 0

    def to_json(self) -> dict:
        return {
            "stage": self.stage,
            "boot_source": self.boot_source,
            "steps": [{"name": s.name, "status": s.status.name,
                       "cycles": s.cycles, "detail": s.detail}
                      for s in self.steps],
            "total_cycles": self.total_cycles,
            "success": self.success,
            "recovered_objects": list(self.recovered_objects),
            "failed_objects": list(self.failed_objects),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BootReport":
        report = cls(stage=payload["stage"],
                     boot_source=payload["boot_source"],
                     recovered_objects=list(payload["recovered_objects"]),
                     failed_objects=list(payload["failed_objects"]))
        for step in payload["steps"]:
            report.record(step["name"], StepStatus[step["status"]],
                          step["cycles"], step["detail"])
        return report

    def summary(self) -> str:
        status = "OK" if self.success else "FAILED"
        if self.success and self.had_recovery:
            status = "RECOVERED"
        return (f"{self.stage} boot {status}: {len(self.steps)} steps, "
                f"{self.total_cycles} cycles "
                f"(source: {self.boot_source or 'n/a'})")

    def to_words(self) -> List[int]:
        """Mailbox serialization: count then (status, cycles) per step."""
        words = [len(self.steps)]
        for step in self.steps:
            words.append(int(step.status))
            words.append(step.cycles & 0xFFFFFFFF)
        return words

    def render(self) -> str:
        lines = [f"==== {self.stage} boot report ====",
                 f"source: {self.boot_source or 'n/a'}"]
        for step in self.steps:
            detail = f"  ({step.detail})" if step.detail else ""
            lines.append(f"  {step.name:<28} {step.status.name:<10} "
                         f"{step.cycles:>10} cycles{detail}")
        lines.append(f"  {'TOTAL':<28} {'':<10} "
                     f"{self.total_cycles:>10} cycles")
        if self.recovered_objects:
            lines.append(f"  recovered: {', '.join(self.recovered_objects)}")
        if self.failed_objects:
            lines.append(f"  FAILED: {', '.join(self.failed_objects)}")
        return "\n".join(lines)
