"""Complete boot chain orchestration and flash provisioning.

``provision_flash`` plays the ground-segment role: it writes the BL1
image, the load list and every deployable object into the boot flash
(with the requested redundancy layout).  ``run_boot_chain`` then executes
BL0 → BL1 → BL2 on a platform instance, reproducing the power-up sequence
of paper Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..soc.memory import TCM_BASE
from ..soc.soc import NgUltraSoc
from .bl0 import BL1_FLASH_OFFSET, Bl0Result, run_bl0
from .bl1 import LOADLIST_FLASH_OFFSET, Bl1Config, Bl1Result, run_bl1
from .bl2 import Bl2Result, run_bl2
from .image import BootImage, ImageKind, LoadEntry, LoadList, LoadSource
from .report import BootReport

# Default flash layout (word offsets).
OBJECT_AREA_OFFSET = 0x9000
DEFAULT_COPY_STRIDE = 0x8000

# BL1 is "field loadable" firmware; in the model its flash image carries a
# small resident stub (the Python Bl1 class is the behavioural model).
_BL1_STUB_PAYLOAD = [0xB1000000 + i for i in range(32)]


@dataclass
class ProvisionedObject:
    image: BootImage
    entry: LoadEntry


@dataclass
class BootChainResult:
    bl0: Bl0Result
    bl1: Bl1Result
    bl2: Optional[Bl2Result]

    @property
    def reports(self) -> List[BootReport]:
        reports = [self.bl0.report, self.bl1.report]
        if self.bl2 is not None:
            reports.append(self.bl2.report)
        return reports

    @property
    def total_cycles(self) -> int:
        return sum(report.total_cycles for report in self.reports)

    def render(self) -> str:
        return "\n\n".join(report.render() for report in self.reports)


def make_bl1_image() -> BootImage:
    return BootImage(kind=ImageKind.BL1, load_address=TCM_BASE + 0x8000,
                     entry_point=TCM_BASE + 0x8000,
                     payload=list(_BL1_STUB_PAYLOAD), name="bl1")


def provision_flash(soc: NgUltraSoc, objects: List[BootImage],
                    copies: int = 2,
                    stride: int = DEFAULT_COPY_STRIDE,
                    mirror_bank_b: bool = True) -> List[ProvisionedObject]:
    """Write BL1 + load list + objects into the boot flash.

    Each object is stored ``copies`` times at ``stride`` spacing (the
    sequential/TMR redundancy source material).  Bank B mirrors bank A
    when ``mirror_bank_b`` (BL0's fallback source).
    """
    flash = soc.flash_controller
    bl1_image = make_bl1_image()
    flash.program(0, BL1_FLASH_OFFSET, bl1_image.to_words())

    provisioned: List[ProvisionedObject] = []
    load_list = LoadList()
    cursor = OBJECT_AREA_OFFSET
    for image in objects:
        words = image.to_words()
        if len(words) > stride:
            raise ValueError(
                f"object {image.name or image.kind.name} larger than the "
                f"copy stride ({len(words)} > {stride})")
        end = cursor + (copies - 1) * stride + len(words)
        if end > len(flash.banks[0]):
            raise ValueError(
                f"flash overflow provisioning "
                f"{image.name or image.kind.name}: needs {end} words, "
                f"bank holds {len(flash.banks[0])}")
        for copy in range(copies):
            flash.program(0, cursor + copy * stride, words)
        entry = LoadEntry(kind=image.kind, source=LoadSource.FLASH,
                          locator=cursor, copies=copies, stride=stride)
        load_list.add(entry)
        provisioned.append(ProvisionedObject(image=image, entry=entry))
        cursor += copies * stride
    flash.program(0, LOADLIST_FLASH_OFFSET, load_list.to_words())
    if mirror_bank_b:
        flash.program(1, 0, flash.banks[0].data)
    return provisioned


def run_boot_chain(soc: NgUltraSoc,
                   config: Optional[Bl1Config] = None,
                   multicore: bool = True,
                   run_application: bool = False) -> BootChainResult:
    """Execute the full BL0 → BL1 → BL2 power-up sequence."""
    bl0_result = run_bl0(soc)
    bl1_result = run_bl1(soc, config)
    bl2_result = None
    if bl1_result.next_entry is not None:
        bl2_result = run_bl2(soc, bl1_result.next_entry,
                             multicore=multicore,
                             run_application=run_application)
    return BootChainResult(bl0=bl0_result, bl1=bl1_result, bl2=bl2_result)
