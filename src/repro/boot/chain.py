"""Complete boot chain orchestration and flash provisioning.

``provision_flash`` plays the ground-segment role: it writes the BL1
image, the load list and every deployable object into the boot flash
(with the requested redundancy layout).  ``run_boot_chain`` then executes
BL0 → BL1 → BL2 on a platform instance, reproducing the power-up sequence
of paper Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..soc.memory import TCM_BASE
from ..soc.soc import NgUltraSoc
from ..telemetry import Tracer
from .bl0 import BL1_FLASH_OFFSET, Bl0Result, run_bl0
from .bl1 import LOADLIST_FLASH_OFFSET, Bl1Config, Bl1Result, run_bl1
from .bl2 import Bl2Result, run_bl2
from .image import BootImage, ImageKind, LoadEntry, LoadList, LoadSource
from .report import BootReport

# Default flash layout (word offsets).
OBJECT_AREA_OFFSET = 0x9000
DEFAULT_COPY_STRIDE = 0x8000

# BL1 is "field loadable" firmware; in the model its flash image carries a
# small resident stub (the Python Bl1 class is the behavioural model).
_BL1_STUB_PAYLOAD = [0xB1000000 + i for i in range(32)]

# Boot cycle costs are quoted at the NG-Ultra reference clock; traces use
# microseconds so boot stages share a timeline with the hypervisor.
CYCLES_PER_US = 600.0


@dataclass
class ProvisionedObject:
    image: BootImage
    entry: LoadEntry


@dataclass
class BootChainResult:
    bl0: Bl0Result
    bl1: Bl1Result
    bl2: Optional[Bl2Result]

    @property
    def reports(self) -> List[BootReport]:
        reports = [self.bl0.report, self.bl1.report]
        if self.bl2 is not None:
            reports.append(self.bl2.report)
        return reports

    @property
    def total_cycles(self) -> int:
        return sum(report.total_cycles for report in self.reports)

    def render(self) -> str:
        return "\n\n".join(report.render() for report in self.reports)


def make_bl1_image() -> BootImage:
    return BootImage(kind=ImageKind.BL1, load_address=TCM_BASE + 0x8000,
                     entry_point=TCM_BASE + 0x8000,
                     payload=list(_BL1_STUB_PAYLOAD), name="bl1")


def provision_flash(soc: NgUltraSoc, objects: List[BootImage],
                    copies: int = 2,
                    stride: int = DEFAULT_COPY_STRIDE,
                    mirror_bank_b: bool = True) -> List[ProvisionedObject]:
    """Write BL1 + load list + objects into the boot flash.

    Each object is stored ``copies`` times at ``stride`` spacing (the
    sequential/TMR redundancy source material).  Bank B mirrors bank A
    when ``mirror_bank_b`` (BL0's fallback source).
    """
    flash = soc.flash_controller
    bl1_image = make_bl1_image()
    flash.program(0, BL1_FLASH_OFFSET, bl1_image.to_words())

    provisioned: List[ProvisionedObject] = []
    load_list = LoadList()
    cursor = OBJECT_AREA_OFFSET
    for image in objects:
        words = image.to_words()
        if len(words) > stride:
            raise ValueError(
                f"object {image.name or image.kind.name} larger than the "
                f"copy stride ({len(words)} > {stride})")
        end = cursor + (copies - 1) * stride + len(words)
        if end > len(flash.banks[0]):
            raise ValueError(
                f"flash overflow provisioning "
                f"{image.name or image.kind.name}: needs {end} words, "
                f"bank holds {len(flash.banks[0])}")
        for copy in range(copies):
            flash.program(0, cursor + copy * stride, words)
        entry = LoadEntry(kind=image.kind, source=LoadSource.FLASH,
                          locator=cursor, copies=copies, stride=stride)
        load_list.add(entry)
        provisioned.append(ProvisionedObject(image=image, entry=entry))
        cursor += copies * stride
    flash.program(0, LOADLIST_FLASH_OFFSET, load_list.to_words())
    if mirror_bank_b:
        flash.program(1, 0, flash.banks[0].data)
    return provisioned


def run_boot_chain(soc: NgUltraSoc,
                   config: Optional[Bl1Config] = None,
                   multicore: bool = True,
                   run_application: bool = False,
                   tracer: Optional[Tracer] = None) -> BootChainResult:
    """Execute the full BL0 → BL1 → BL2 power-up sequence.

    ``tracer`` records one span per boot step on a cycle-derived
    microsecond timeline plus SpaceWire transfer counters (retries,
    NAKs, CRC errors) accumulated across the whole chain.
    """
    if tracer is not None:
        soc.spacewire.tracer = tracer
    spw_before = _spw_snapshot(soc)
    bl0_result = run_bl0(soc)
    bl1_result = run_bl1(soc, config)
    bl2_result = None
    if bl1_result.next_entry is not None:
        bl2_result = run_bl2(soc, bl1_result.next_entry,
                             multicore=multicore,
                             run_application=run_application)
    result = BootChainResult(bl0=bl0_result, bl1=bl1_result, bl2=bl2_result)
    if tracer is not None:
        _trace_boot_chain(tracer, soc, result, spw_before)
    return result


def _spw_snapshot(soc: NgUltraSoc) -> dict:
    link = soc.spacewire
    return {"spacewire.naks": link.nak_count,
            "spacewire.crc_errors": link.crc_error_count,
            "spacewire.timeouts": link.timeout_count}


def _trace_boot_chain(tracer: Tracer, soc: NgUltraSoc,
                      result: BootChainResult, spw_before: dict) -> None:
    """Emit per-step spans and chain-level SpaceWire/recovery counters."""
    t = 0.0
    for report in result.reports:
        t = _trace_report(tracer, report, t)
        tracer.counter("boot.recovered_objects", "boot").add(
            len(report.recovered_objects))
        tracer.counter("boot.failed_objects", "boot").add(
            len(report.failed_objects))
    after = _spw_snapshot(soc)
    for name, value in after.items():
        delta = value - spw_before[name]
        if delta:
            tracer.counter(name, "boot").add(delta)


def _trace_report(tracer: Tracer, report: BootReport,
                  start_us: float) -> float:
    """One span per boot step, tiled cumulatively from ``start_us``."""
    t = start_us
    for step in report.steps:
        duration_us = step.cycles / CYCLES_PER_US
        tracer.add_span(step.name, "boot", t, t + duration_us,
                        stage=report.stage, status=step.status.name,
                        cycles=step.cycles,
                        **({"detail": step.detail} if step.detail else {}))
        t += duration_us
    tracer.add_span(f"stage:{report.stage}", "boot", start_us, t,
                    source=report.boot_source or "n/a",
                    success=report.success,
                    recovered=len(report.recovered_objects),
                    failed=len(report.failed_objects),
                    cycles=report.total_cycles)
    return t
