"""BL0: the ROM-resident first boot stage.

Paper §IV: "BL0 ... is a small application hard-coded into the SoC
internal ROM that fetches a binary executable (called BL1 ...) from either
local boot FLASH memory or remotely from the SpaceWire bus."  BL0 was
developed in the DAHLIA project and is fixed in the eROM; this model
reproduces its observable behaviour: locate a valid BL1 image (flash bank
A, then bank B, then SpaceWire), load it into the TCM and hand over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..soc.soc import NgUltraSoc
from ..soc.spacewire import SpaceWireError
from .image import BootImage, ImageError, ImageKind
from .report import BootReport, StepStatus

# Cycle-cost model (600 MHz core).
CYCLES_ROM_STARTUP = 2_000
CYCLES_FLASH_READ_WORD = 4
CYCLES_SPW_READ_WORD = 20
CYCLES_CRC_WORD = 2
CYCLES_COPY_WORD = 2

# Fixed locations known to the ROM code.
BL1_FLASH_OFFSET = 0
BL1_SPACEWIRE_OBJECT = 1
BL1_MAX_WORDS = 16 * 1024


class Bl0Error(Exception):
    pass


@dataclass
class Bl0Result:
    entry_point: int
    image: BootImage
    report: BootReport


def _read_flash_words(soc: NgUltraSoc, bank: int, offset: int,
                      count: int) -> List[int]:
    controller = soc.flash_controller
    controller.enabled = True
    return [controller.read(bank, offset + i) for i in range(count)]


def _try_flash_bank(soc: NgUltraSoc, bank: int,
                    report: BootReport) -> Optional[BootImage]:
    from .image import MAGIC
    name = f"bl1-probe-bank-{chr(ord('A') + bank)}"
    header = _read_flash_words(soc, bank, BL1_FLASH_OFFSET,
                               BootImage.HEADER_WORDS)
    length = header[5] if header[0] == MAGIC else 0
    length = min(length, BL1_MAX_WORDS)
    words = header + _read_flash_words(
        soc, bank, BL1_FLASH_OFFSET + BootImage.HEADER_WORDS, length)
    cycles = len(words) * CYCLES_FLASH_READ_WORD
    try:
        image = BootImage.parse(words, name=f"bl1@bank{bank}")
    except ImageError as error:
        report.record(name, StepStatus.FAILED, cycles, str(error))
        return None
    if image.kind is not ImageKind.BL1:
        report.record(name, StepStatus.FAILED, cycles,
                      f"unexpected image kind {image.kind.name}")
        return None
    cycles += image.total_words * CYCLES_CRC_WORD
    report.record(name, StepStatus.OK, cycles)
    return image


def _try_spacewire(soc: NgUltraSoc,
                   report: BootReport) -> Optional[BootImage]:
    try:
        payload = soc.spacewire.request_object(BL1_SPACEWIRE_OBJECT,
                                               retries=1)
    except SpaceWireError as error:
        report.record("bl1-probe-spacewire", StepStatus.FAILED, 1_000,
                      str(error))
        return None
    cycles = len(payload) * CYCLES_SPW_READ_WORD
    try:
        image = BootImage.parse(payload, name="bl1@spacewire")
    except ImageError as error:
        report.record("bl1-probe-spacewire", StepStatus.FAILED, cycles,
                      str(error))
        return None
    report.record("bl1-probe-spacewire", StepStatus.OK, cycles)
    return image


def run_bl0(soc: NgUltraSoc) -> Bl0Result:
    """Execute the BL0 stage; returns the loaded BL1 entry point."""
    report = BootReport(stage="BL0")
    report.record("rom-startup", StepStatus.OK, CYCLES_ROM_STARTUP)
    image = _try_flash_bank(soc, 0, report)
    source = "flash-bank-A"
    if image is None:
        image = _try_flash_bank(soc, 1, report)
        source = "flash-bank-B"
    if image is None:
        image = _try_spacewire(soc, report)
        source = "spacewire"
    if image is None:
        report.boot_source = "none"
        raise Bl0Error("no valid BL1 image found "
                       "(flash A, flash B, SpaceWire all failed)")
    if source != "flash-bank-A":
        report.recovered_objects.append(f"bl1 via {source}")
    report.boot_source = source
    # Copy BL1 payload to its TCM load address.
    for index, word in enumerate(image.payload):
        soc.bus.write_word(image.load_address + index * 4, word)
    report.record("load-bl1", StepStatus.OK,
                  len(image.payload) * CYCLES_COPY_WORD,
                  f"{len(image.payload)} words @0x{image.load_address:08x}")
    return Bl0Result(entry_point=image.entry_point, image=image,
                     report=report)
