"""End-to-end accelerator delivery: Sobel IP core onto NG-ULTRA.

Covers the full HERMES chain of the paper: Bambu-style HLS (§II), the
NXmap backend integration with generated synthesis script (Fig. 3), the
configuration bitstream, and deployment through the BL1 boot loader
(§IV) which programs the eFPGA matrix at power-up.

Run:  python examples/hls_accelerator.py
"""


from repro.apps import image
from repro.core import HermesProject


def main() -> None:
    print("HERMES accelerator delivery — Sobel edge detector IP")
    print("=" * 64)

    project = HermesProject(clock_ns=8.0)

    # 1. HLS + backend flow.
    accelerator = project.build_accelerator(image.SOBEL_C, "sobel")
    flow = accelerator.flow
    print("\nNXmap flow report:")
    print(f"  device       : {flow.device}")
    print(f"  LUT/FF/DSP/BRAM: {flow.stats['luts']}/{flow.stats['ffs']}/"
          f"{flow.stats['dsps']}/{flow.stats['brams']}")
    print(f"  placed HPWL  : {flow.placement.hpwl:.0f} "
          f"(improved {flow.placement.improvement:.0%})")
    print(f"  routed wires : {flow.routing.wirelength} segments, "
          f"congestion max {flow.routing.max_congestion}")
    print(f"  Fmax         : {flow.timing.fmax_mhz:.1f} MHz "
          f"(critical path {flow.timing.critical_path_ns:.2f} ns)")
    print(f"  power        : {flow.power.total_mw:.1f} mW")
    print(f"  bitstream    : {flow.bitstream_bits} bits "
          f"({flow.essential_bits} essential)")

    # 2. Functional check of the IP: C-vs-RTL co-simulation.
    frame = image.synthetic_frame(seed=3)
    cosim = accelerator.hls.cosimulate(
        (), {"src": frame.flatten().tolist(), "dst": [0] * frame.size})
    print("\nIP functional verification:")
    print(f"  C-vs-RTL co-simulation match: {cosim.match} "
          f"({cosim.cycles} cycles/frame)")

    # 3. The generated NXmap backend script (Bambu integration artifact).
    print("\nGenerated NXmap backend script:")
    for line in accelerator.backend_script.splitlines()[:8]:
        print("   ", line)
    print("    ...")

    # 4. Boot deployment: BL1 programs the eFPGA from flash.
    boot = project.deploy_and_boot(accelerator)
    soc = project.last_soc
    print("\nBoot deployment:")
    print(f"  boot chain   : {boot.total_cycles} cycles "
          f"({soc.cycles_to_us(boot.total_cycles):.0f} us @600MHz)")
    print(f"  eFPGA status : programmed={soc.efpga.programmed} "
          f"crc_ok={soc.efpga.crc_ok}")
    print()
    print(boot.bl1.report.render())


if __name__ == "__main__":
    main()
