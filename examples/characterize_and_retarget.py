"""Eucalyptus characterization and library-driven retargeting (paper §II).

Runs the Eucalyptus tool over the NG-ULTRA fabric model, exports the
measured XML component library, and then synthesizes the same kernel with
(a) the analytic default library and (b) the measured one — showing how
the pre-characterization drives the HLS scheduler's decisions.

Run:  python examples/characterize_and_retarget.py
"""

from repro.fabric import NG_ULTRA, scaled_device
from repro.hls import synthesize
from repro.hls.characterization import ComponentLibrary, default_library
from repro.hls.characterization.eucalyptus import Eucalyptus

KERNEL = """
int energy(const int *x, int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc += (x[i] * x[i]) >> 4;
  }
  return acc;
}
"""


def main() -> None:
    print("Eucalyptus characterization on NG-ULTRA (paper §II)")
    print("=" * 64)

    device = scaled_device(NG_ULTRA, "NG-ULTRA-DEMO", luts=4096)
    tool = Eucalyptus(device=device, effort=0.2)
    tool.sweep(components=["addsub", "mult", "logic", "shifter",
                           "comparator", "mux", "divider", "mem_bram"],
               widths=(8, 16, 32), stages=(0, 2))
    print(f"\ncharacterized {len(tool.runs)} configurations "
          f"(component x width x stages), e.g.:")
    for run in tool.runs[:6]:
        print(f"  {run.component:<10} w{run.width:<3} s{run.stages}  "
              f"delay {run.delay_ns:5.2f} ns  "
              f"LUT {run.luts:<4} FF {run.ffs:<4} DSP {run.dsps}")

    library = tool.build_library()
    # Keep the interface classes the sweep does not cover.
    for record in default_library().records():
        if record.resource_class in ("wire", "mem_axi", "faddsub", "fmult",
                                     "fdivider", "fsqrt", "fcomparator",
                                     "fconvert", "flogic"):
            library.add(record)
    xml_text = library.to_xml()
    print(f"\nXML library: {len(xml_text)} bytes, "
          f"{len(library.records())} records (paper: 'collect the "
          f"resulting latency and resource consumption metrics as XML "
          f"files in the Bambu library')")

    data = list(range(32))
    for name, lib in (("analytic default", default_library()),
                      ("Eucalyptus-measured", library)):
        project = synthesize(KERNEL, "energy", clock_ns=6.0, library=lib)
        result = project.cosimulate((len(data),), {"x": data})
        design = project["energy"]
        print(f"\n{name} library:")
        print(f"  cosim match : {result.match}")
        print(f"  cycles      : {result.cycles}")
        print(f"  {design.report.summary()}")

    # Round-trip proof: the XML is the exchange format.
    reloaded = ComponentLibrary.from_xml(xml_text)
    print(f"\nXML round-trip: {len(reloaded.records())} records reloaded")


if __name__ == "__main__":
    main()
