"""Quickstart: C kernel -> HLS -> reports -> RTL -> co-simulation.

Run:  python examples/quickstart.py
"""

from repro.hls import synthesize

SOURCE = """
// Weighted moving average over an 8-sample window.
void wavg(const int *x, int *y, int n) {
  const int w[8] = {1, 2, 4, 8, 8, 4, 2, 1};
  for (int i = 7; i < n; i++) {
    int acc = 0;
    for (int t = 0; t < 8; t++) {
      acc += x[i - t] * w[t];
    }
    y[i] = acc >> 5;
  }
}
"""


def main() -> None:
    print("HERMES HLS quickstart — Bambu-equivalent flow (paper Fig. 2)")
    print("=" * 64)

    # 1. Synthesize at a 600 MHz-class clock target.
    project = synthesize(SOURCE, top="wavg", clock_ns=5.0, opt_level=2)
    design = project["wavg"]

    # 2. Reports: the metrics the paper's use-case evaluation collects.
    print("\nResource / timing report:")
    print(" ", design.report.summary())
    print(f"  FSM states: {design.state_count}")
    print(f"  optimization: {project.opt_report.reduction('wavg'):.0%} "
          f"of operations removed by the middle end")

    # 3. Cycle-accurate simulation with real data.
    data = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120]
    result = project.cosimulate((len(data),),
                                {"x": data, "y": [0] * len(data)})
    print("\nC-vs-RTL co-simulation:")
    print(f"  match: {result.match}   cycles: {result.cycles}")

    # 4. The generated Verilog (first lines).
    print("\nGenerated Verilog (head):")
    for line in design.verilog.splitlines()[:12]:
        print("   ", line)
    print("    ...")


if __name__ == "__main__":
    main()
