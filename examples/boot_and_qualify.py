"""BL1 qualification: boot robustness, SEU campaigns, ECSS datapack.

Reproduces the qualification story of paper §IV: the boot chain is
exercised nominally and under flash corruption, SEU campaigns measure the
hardening of ECC/TMR-protected storage, and the evidence is compiled into
the mandatory ECSS document set (SRS, SUITP/SUITR, SVTS, SValP/SValR,
SUM) with a TRL assessment.

Run:  python examples/boot_and_qualify.py
"""


from repro.boot import (
    Bl1Config,
    BootImage,
    ImageKind,
    RedundancyMode,
    provision_flash,
    run_boot_chain,
)
from repro.boot.chain import OBJECT_AREA_OFFSET
from repro.core import (
    Level,
    QualificationCampaign,
    assess_trl,
    generate_datapack,
)
from repro.radhard import (
    Campaign,
    EccError,
    EccMemory,
    EccMemoryTarget,
    SeuInjector,
)
from repro.soc import DDR_BASE, NgUltraSoc, assemble


def fresh_soc(corrupt_first_copy=False):
    soc = NgUltraSoc()
    program = assemble("MOVI r0, #7\nHALT", base_address=DDR_BASE)
    app = BootImage(kind=ImageKind.APPLICATION, load_address=DDR_BASE,
                    entry_point=DDR_BASE, payload=program, name="app")
    provision_flash(soc, [app], copies=3)
    if corrupt_first_copy:
        soc.flash_controller.corrupt_word(
            0, OBJECT_AREA_OFFSET + BootImage.HEADER_WORDS, 0xFFFF)
    return soc


def main() -> None:
    print("HERMES BL1 qualification run (paper §IV)")
    print("=" * 64)

    # --- boot robustness evidence ---------------------------------------
    nominal = run_boot_chain(fresh_soc(), run_application=True)
    print(f"\nNominal boot: {nominal.total_cycles} cycles, "
          f"success={nominal.bl1.report.success}")

    recovered = run_boot_chain(fresh_soc(corrupt_first_copy=True),
                               config=Bl1Config(
                                   redundancy=RedundancyMode.SEQUENTIAL))
    print(f"Corrupted-copy boot: recovered="
          f"{recovered.bl1.report.had_recovery}, "
          f"{recovered.total_cycles} cycles "
          f"(+{recovered.total_cycles - nominal.total_cycles} recovery cost)")

    # --- SEU campaign on protected vs raw memory --------------------------
    def protected_setup():
        memory = EccMemory(64)
        for address in range(64):
            memory.write(address, address * 3)
        return memory

    def protected_inject(memory, rng):
        injector = SeuInjector(EccMemoryTarget(memory),
                               seed=rng.randrange(1 << 30))
        return injector.inject_random().description

    def protected_evaluate(memory):
        try:
            values = [memory.read(a) for a in range(64)]
        except EccError:
            return "detected"
        if values != [a * 3 for a in range(64)]:
            return "sdc"
        return "corrected" if memory.stats.corrected else "masked"

    campaign = Campaign("ecc-sram", protected_setup, protected_inject,
                        protected_evaluate)
    seu_report = campaign.run(runs=300, seed=9)
    print("\nSEU campaign (300 upsets into ECC-protected SRAM):")
    print(" ", seu_report.summary_row())

    # --- ECSS qualification campaign ---------------------------------------
    qual = QualificationCampaign("HERMES-BL1")
    qual.add_requirement("BL1-REQ-010", "BL1 shall initialize PLL, DDR, "
                         "flash, SpaceWire and TCM before loading software")
    qual.add_requirement("BL1-REQ-020", "BL1 shall verify the integrity of "
                         "every deployed object (CRC32)")
    qual.add_requirement("BL1-REQ-030", "BL1 shall recover from single "
                         "corrupted flash copies via redundancy",
                         category="safety")
    qual.add_requirement("BL1-REQ-040", "BL1 shall produce a boot report "
                         "for next-stage software")
    qual.add_requirement("BL1-REQ-050", "Protected memories shall correct "
                         "single-bit upsets", category="safety")

    qual.add_test("UT-PLL", Level.UNIT, ["BL1-REQ-010"],
                  lambda: run_boot_chain(fresh_soc()).bl1.report
                  .cycles_of("pll-lock") > 0,
                  "PLL lock step present and accounted")
    qual.add_test("UT-CRC", Level.UNIT, ["BL1-REQ-020"],
                  lambda: nominal.bl1.report.success,
                  "nominal integrity pass")
    qual.add_test("IT-BOOT", Level.INTEGRATION,
                  ["BL1-REQ-010", "BL1-REQ-020", "BL1-REQ-040"],
                  lambda: nominal.bl2 is not None,
                  "full BL0->BL1->BL2 chain")
    qual.add_test("VT-REDUNDANCY", Level.VALIDATION, ["BL1-REQ-030"],
                  lambda: recovered.bl1.report.had_recovery,
                  "boot with injected flash corruption")
    qual.add_test("VT-SEU", Level.VALIDATION, ["BL1-REQ-050"],
                  lambda: seu_report.counts.get("sdc", 0) == 0,
                  "SEU campaign: zero silent corruption")

    report = qual.run()
    trl = assess_trl(report, validated_in_relevant_environment=True)
    print(f"\nQualification: {report.passed()}/{report.total()} tests "
          f"passed, requirement coverage "
          f"{report.requirement_coverage():.0%}")
    print(f"TRL assessment: TRL {trl.level}")
    for line in trl.justification:
        print(f"  - {line}")

    # --- ECSS datapack ---------------------------------------------------
    pack = generate_datapack("HERMES-BL1", qual, report)
    print(f"\nDatapack complete: {pack.complete} "
          f"({', '.join(sorted(pack.documents))})")
    print("\nSValR excerpt:")
    for line in pack.documents["SValR"].splitlines()[:14]:
        print("   ", line)


if __name__ == "__main__":
    main()
