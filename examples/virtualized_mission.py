"""The SELENE-derived virtualized mission under XtratuM (paper §V).

Four partitions share the quad-core NG-ULTRA under time-and-space
partitioning: AOCS (attitude control), VBN (visual navigation image
processing), EOR (electric orbit raising) and a telemetry system
partition.  The second half demonstrates the key TSP property: a
crashing VBN partition never disturbs the AOCS control loop.

Run:  python examples/virtualized_mission.py
"""

from repro.apps import mission


def main() -> None:
    print("XtratuM NG virtualized mission — AOCS + VBN + EOR (paper §V)")
    print("=" * 64)

    # Nominal mission: 50 major frames of 10 ms.
    nominal = mission.run_mission(frames=50)
    print("\nNominal run:")
    print(nominal.hypervisor.summary(nominal.metrics))

    last = nominal.telemetry[-1]
    print("\nLast telemetry sample:")
    print(f"  AOCS pointing error : "
          f"{last['aocs']['pointing_error_rad']:.4f} rad")
    print(f"  VBN solution offset : ({last['vbn']['offset'][0]:.1f}, "
          f"{last['vbn']['offset'][1]:.1f}) px")
    if last["eor"]:
        print(f"  EOR revolution      : {last['eor']['revolution']} "
              f"(dv {last['eor']['delta_v_ms']:.2f} m/s)")

    # Fault-injected mission: VBN crashes every 3rd activation.
    faulty = mission.run_mission(frames=50, faulty_vbn=True)
    print("\nFault-injected run (VBN crashes periodically):")
    print(faulty.hypervisor.summary(faulty.metrics))
    hm = faulty.hypervisor.health
    print(f"\nHealth monitor: {len(hm.log)} events, "
          f"VBN restarts: "
          f"{faulty.metrics.partitions[mission.VBN_PID].restarts}")

    aocs_nominal = nominal.metrics.partitions[mission.AOCS_PID]
    aocs_faulty = faulty.metrics.partitions[mission.AOCS_PID]
    print("\nTemporal isolation check (the TSP guarantee, paper §III):")
    print(f"  AOCS worst response, nominal : "
          f"{aocs_nominal.worst_response_us:.1f} us")
    print(f"  AOCS worst response, faulty  : "
          f"{aocs_faulty.worst_response_us:.1f} us")
    print(f"  AOCS deadline misses         : "
          f"{aocs_faulty.deadline_misses} (must stay 0)")


if __name__ == "__main__":
    main()
